"""Version-history queries over an FT2 chain (lazy evaluation).

The paper motivates the chain topology with temporal databases: "each
fragment can represent an XMark site at a point in time; then FT2
represents the version history".  Asking "did X ever happen?" rarely
needs the whole history -- LazyParBoX descends the chain only until the
Boolean equation system resolves, trading latency for total site load.

What to watch in the output: the fraction of ``node x |QList|``
operations LazyParBoX *saves* against eager ParBoX depends on where the
answer lives.  A fact from the recent past resolves after one or two
depth steps (large savings); a fact that never happened forces the full
descent (no savings, extra round trips).  That is exactly the paper's
Fig. 9-11 trade-off, reproduced by the ``fig9``-``fig11`` benchmarks.
Both engines accept ``executor="threads"``/``"process"`` to run each
depth step's per-site work concurrently.

Run:  python examples/temporal_versions.py
"""

from repro import LazyParBoXEngine, ParBoXEngine
from repro.workloads.queries import seal_query
from repro.workloads.topologies import chain_ft2


def probe(cluster, label, qlist) -> None:
    lazy = LazyParBoXEngine(cluster).evaluate(qlist)
    eager = ParBoXEngine(cluster).evaluate(qlist)
    saved = 100 * (1 - lazy.metrics.qlist_ops / eager.metrics.qlist_ops)
    print(
        f"  {label:22s} answer={str(lazy.answer):5s} "
        f"versions touched={lazy.details['fragments_evaluated']:2d}/{cluster.card()}  "
        f"work saved vs eager: {saved:5.1f}%"
    )


def main() -> None:
    # Ten snapshots of one data source, newest (F0) to oldest (F9), each
    # archived on its own machine.
    versions = 10
    cluster = chain_ft2(versions, 20.0, seed=7)
    print(
        f"version history: {versions} snapshots, {cluster.total_size()} nodes total, "
        "newest first\n"
    )

    # Each snapshot carries a unique seal; asking for a seal stands in
    # for "a fact recorded only in that snapshot".
    print("How far back must we look?")
    probe(cluster, "fact in newest (F0)", seal_query("F0"))
    probe(cluster, "fact in recent (F2)", seal_query("F2"))
    probe(cluster, "fact mid-history (F5)", seal_query("F5"))
    probe(cluster, "fact in oldest (F9)", seal_query("F9"))
    probe(cluster, "fact never recorded", seal_query("F99"))

    print(
        "\nLazyParBoX touches exactly the prefix of history needed to decide;"
        "\nnegative answers still require the full scan (as they must)."
    )


if __name__ == "__main__":
    main()
