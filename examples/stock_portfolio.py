"""The full stock-portfolio scenario: querying, selecting, maintaining.

Walks the paper's running example end to end:

1. every engine answers the paper's queries identically;
2. the Section 8 extension *selects* the matching stock positions
   (not just true/false) with at most two visits per site;
3. a materialized view watches for "GOOG reaches $376" and is maintained
   incrementally as NASDAQ updates a sell price -- only the updated
   fragment's site recomputes.

Together the three parts exercise most of the public API: the engine
registry and agreement (``repro.core``), the Section 8 selection
extension (``SelectionEngine``), and the Section 5 maintenance story
(``repro.views``).  Every engine shown here also accepts
``executor="threads"`` or ``"process"`` to run its per-site work truly
concurrently -- see ``examples/parallel_sites.py`` for that comparison.

Run:  python examples/stock_portfolio.py
"""

from repro import ALL_ENGINES, compile_query
from repro.core import SelectionEngine
from repro.views import MaterializedView
from repro.workloads.portfolio import PORTFOLIO_QUERIES, build_portfolio_cluster


def run_all_engines(cluster) -> None:
    print("=== 1. Six algorithms, one answer ===")
    for name, text in PORTFOLIO_QUERIES.items():
        qlist = compile_query(text)
        answers = {}
        traffic = {}
        for engine_cls in ALL_ENGINES:
            result = engine_cls(cluster).evaluate(qlist)
            answers[engine_cls.name] = result.answer
            traffic[engine_cls.name] = result.metrics.bytes_total
        assert len(set(answers.values())) == 1
        print(f"  {name:15s} -> {answers['ParBoX']}   " f"traffic(bytes)={traffic}")


def run_selection(cluster) -> None:
    print("\n=== 2. Which positions? (data selection, <=2 visits/site) ===")
    query = compile_query('[//market[name = "NASDAQ"]/stock/code]')
    selection = SelectionEngine(cluster).select(query)
    print(f"  NASDAQ-traded codes: {len(selection.paths)} nodes")
    for path in selection.paths:
        node = _node_at(cluster, path)
        print(f"    {'/'.join(map(str, path)):12s} -> <{node.label}> {node.text}")
    print(f"  visits: {dict(selection.result.metrics.visits)}")


def _node_at(cluster, path):
    """Follow a child-index path through the stitched document."""
    node = cluster.fragmented_tree.stitch().root
    for index in path:
        node = node.children[index]
    return node


def run_view_maintenance(cluster) -> None:
    print("\n=== 3. Watching for GOOG @ $376 (incremental maintenance) ===")
    query = compile_query('[//stock[code = "GOOG" and sell = "376"]]')
    view = MaterializedView.create(cluster, query)
    print(f"  initial answer: {view.ans}")

    # NASDAQ updates the sell price of the GOOG position in fragment F2.
    f2 = cluster.fragment("F2")
    sell = next(n for n in f2.root.iter_subtree() if n.label == "sell")
    print(f"  F2 sell price: {sell.text} -> 376")
    sell.text = "376"
    report = view.refresh_fragment("F2")
    print(f"  maintained answer: {view.ans} (changed: {report.answer_changed})")
    print(
        f"  cost: visited {list(report.sites_visited)}, "
        f"recomputed {report.nodes_recomputed} nodes, "
        f"{report.traffic_bytes} bytes on the wire"
    )

    # An unrelated update elsewhere does not even reach evalST.
    f0 = cluster.fragment("F0")
    report = view.insert_node("F0", f0.root, "note", text="unrelated")
    print(
        f"  unrelated insert in F0: triplet changed = {report.triplet_changed}, "
        f"answer recomputation skipped"
    )


def main() -> None:
    cluster = build_portfolio_cluster()
    run_all_engines(cluster)
    run_selection(cluster)
    run_view_maintenance(cluster)


if __name__ == "__main__":
    main()
