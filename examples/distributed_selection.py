"""The Section 8 extension: distributed node *selection*.

Boolean answers are only half the story; the conclusions of the paper
sketch an extension to data-selection XPath "with the performance
guarantee that each site is visited at most twice".  This example
selects nodes across a federated document and verifies both the answer
(against a centralized oracle) and the two-visit guarantee.

How it works (``repro.core.selection``): visit 1 is ParBoX stage 2 --
every site partially evaluates the query over its fragments (dispatched
through the site executor, so it parallelizes like any other engine) --
after which the coordinator solves the *full* equation system, not just
the root's answer.  Visit 2 sends each site the solved values of its
sub-fragment variables; the site replies with a per-fragment selection
table, and the coordinator composes the tables into concrete node
paths.  Two visits per site, query-sized traffic, no data shipping.

Run:  python examples/distributed_selection.py
"""

from repro import compile_query
from repro.core import SelectionEngine, select_centralized
from repro.workloads.topologies import chain_ft2

QUERIES = [
    "[//seal]",
    "[//person/name]",
    '[//address[city = "lagos"]]',
    "[//open_auction/bidder/increase]",
    '[//profile[education = "college"]/interest]',
]


def main() -> None:
    cluster = chain_ft2(5, 5.0, seed=3)
    whole = cluster.fragmented_tree.stitch()  # oracle only; engines never do this
    engine = SelectionEngine(cluster)
    print(
        f"document: {cluster.total_size()} nodes over {len(cluster.sites())} sites "
        "(chained fragments)\n"
    )

    for text in QUERIES:
        qlist = compile_query(text)
        selection = engine.select(qlist)
        oracle = select_centralized(whole, qlist)
        status = "OK" if selection.paths == oracle else "MISMATCH"
        worst = selection.result.metrics.max_visits_per_site()
        print(
            f"  {text:45s} {len(selection.paths):4d} nodes  "
            f"max visits/site = {worst}  [{status}]"
        )
        assert selection.paths == oracle
        assert worst <= 2

    # Show a few concrete results for the first query.
    qlist = compile_query("[//person/name]")
    selection = engine.select(qlist)
    root = whole.root
    print("\nfirst selected <name> nodes:")
    for path in selection.paths[:5]:
        node = root
        for index in path:
            node = node.children[index]
        print(f"  /{'/'.join(map(str, path))} -> {node.text}")


if __name__ == "__main__":
    main()
