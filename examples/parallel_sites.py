"""True concurrent site execution: ``serial`` vs ``threads`` vs ``process``.

The paper's ParBoX evaluates every site's fragments "in parallel".
This repository makes that real through interchangeable site executors
(see ``docs/ARCHITECTURE.md``): the same engine, the same cluster and
the same query run under all three strategies, and two clocks are
reported side by side --

* **simulated elapsed** -- the critical path the cost model derives
  (request transfer + site busy time + reply transfer, max over sites,
  plus the coordinator's combine).  Identical across executors by
  construction: it describes the *algorithm*, not the host machine.
* **real wall clock** -- how long the computation phases actually took
  end to end.  ``serial`` pays the sum of all site busy times;
  ``threads`` overlaps them in one process (bounded by the GIL for this
  pure-Python workload); ``process`` runs them on separate CPUs and
  pays a wire-serialization toll per batch instead.

The demo uses the paper's FT1 star topology: one XMark-style fragment
per site, constant cumulative data, so every site does comparable work
and the critical path is a fair race.

Run:  python examples/parallel_sites.py [sites] [scaled_mb]
"""

import sys

from repro import ParBoXEngine, compile_query
from repro.distsim import resolve_executor
from repro.workloads.topologies import star_ft1

QUERY = '[//site[//item and not(//seal = "no-such-seal")]]'


def main() -> None:
    sites = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    scaled_mb = float(sys.argv[2]) if len(sys.argv) > 2 else 24.0
    cluster = star_ft1(sites, scaled_mb, seed=2006)
    qlist = compile_query(QUERY)
    print(
        f"FT1 star: {cluster.total_size()} nodes over {len(cluster.sites())} sites, "
        f"|QList| = {len(qlist)}\n"
    )

    print(f"{'executor':10s} {'answer':7s} {'simulated':>11s} {'wall':>11s} "
          f"{'busy(sum)':>11s} {'speedup':>8s}  critical")
    baseline = None
    for name in ("serial", "threads", "process"):
        # Executors are context managers; `process` forks a worker pool
        # that this reaps promptly instead of waiting for interpreter exit.
        with resolve_executor(name) as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            result = engine.evaluate(qlist)
        metrics = result.metrics
        if baseline is None:
            baseline = result
        # The simulated ledger must not depend on the execution strategy.
        assert result.answer == baseline.answer
        assert metrics.bytes_total == baseline.metrics.bytes_total
        assert dict(metrics.visits) == dict(baseline.metrics.visits)
        print(
            f"{name:10s} {str(result.answer):7s} "
            f"{metrics.elapsed_seconds * 1000:9.2f}ms "
            f"{metrics.wall_seconds * 1000:9.2f}ms "
            f"{metrics.compute_seconds_total * 1000:9.2f}ms "
            f"{metrics.parallel_speedup():7.2f}x  {metrics.critical_site}"
        )

    breakdown = baseline.metrics.critical_path_breakdown()
    print(
        f"\ncritical path: site {breakdown['critical_site']} bounded the run "
        f"({breakdown['critical_path_seconds'] * 1000:.2f}ms); the other sites "
        f"accumulated {breakdown['slack_seconds'] * 1000:.2f}ms of busy time "
        f"in its shadow -- that slack is what the parallel executors overlap."
    )
    print(
        "\nSame answer, same visits, same traffic under every strategy: the\n"
        "executor changes how the work runs, never what the algorithm does."
    )


if __name__ == "__main__":
    main()
