"""Quickstart: distributed Boolean XPath in five steps.

The scenario from the paper's introduction: a stock portfolio is
conceptually one XML tree, but its pieces live where the brokers and
markets keep them.  The owner asks "does my GOOG stock reach a selling
price of $376?" without shipping anyone's data anywhere.

The five steps below are the whole API surface most users need:

1. build a :class:`~repro.distsim.cluster.Cluster` (fragments placed on
   simulated sites);
2. compile the query once with :func:`repro.compile_query`;
3. evaluate with an engine -- here ParBoX, the paper's contribution;
4. read the measured guarantees off the returned cost ledger;
5. grow the data and watch ParBoX's traffic stay constant while the
   data-shipping baseline's grows linearly.

Where to go next: ``parallel_sites.py`` runs the per-site work truly
concurrently (``executor="threads"``/``"process"``),
``stock_portfolio.py`` continues this scenario into node selection and
incremental view maintenance, and ``docs/ARCHITECTURE.md`` maps every
paper section to its module.

Run:  python examples/quickstart.py
"""

from repro import ParBoXEngine, NaiveCentralizedEngine, compile_query
from repro.workloads.portfolio import build_portfolio_cluster


def main() -> None:
    # 1. A cluster: the Fig. 2 fragmentation -- the root fragment F0 on
    #    the owner's desktop S0, Merill Lynch's data F1 on its server S1,
    #    and the two NASDAQ fragments F2, F3 on the exchange's server S2.
    cluster = build_portfolio_cluster()
    print("sites:", [site.site_id for site in cluster.sites()])
    print("fragments:", {s.site_id: s.fragment_ids() for s in cluster.sites()})

    # 2. A Boolean XPath query, compiled to its QList once.
    query = compile_query('[//stock[code = "GOOG" and sell = "376"]]')
    print(f"\nquery compiled to |QList| = {len(query)} sub-queries:")
    print(query.pretty())

    # 3. Evaluate with ParBoX: each site partially evaluates the whole
    #    query over its fragments in parallel and returns small Boolean
    #    formulas; the coordinator solves the resulting equation system.
    result = ParBoXEngine(cluster).evaluate(query)
    print(f"\nGOOG reached $376?  {result.answer}")

    # 4. The guarantees, measured:
    summary = result.metrics.summary()
    print(f"visits per site      : {dict(result.metrics.visits)} (always 1)")
    print(f"network traffic      : {summary['bytes_total']} bytes")
    print(f"simulated elapsed    : {summary['elapsed_seconds'] * 1000:.2f} ms")

    # 5. The headline guarantee: ParBoX's traffic depends on the query,
    #    not on the data.  Grow the NASDAQ fragment 200 positions and
    #    compare against shipping the data to the owner's desktop.
    from repro.xmltree import element

    f3_market = cluster.fragment("F3").root
    for index in range(200):
        f3_market.add_child(
            element(
                "stock",
                element("code", text=f"TICK{index}"),
                element("buy", text="10"),
                element("sell", text="11"),
            )
        )
    grown = ParBoXEngine(cluster).evaluate(query)
    baseline = NaiveCentralizedEngine(cluster).evaluate(query)
    print(
        f"\nafter adding 200 positions at NASDAQ "
        f"(|T| = {cluster.total_size()} nodes):"
    )
    print(f"ParBoX traffic       : {grown.metrics.bytes_total} bytes (unchanged)")
    print(
        f"NaiveCentralized     : ships {baseline.details['shipped_bytes']} bytes "
        f"of broker data for the same answer ({baseline.answer})"
    )


if __name__ == "__main__":
    main()
