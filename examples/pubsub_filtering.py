"""Publish/subscribe content filtering over a distributed document.

Boolean XPath is the subscription language of XML dissemination systems
(the paper cites Altinel & Franklin's XFilter).  Here a federated
auction document is spread over four sites and a broker evaluates a
whole *book* of subscriptions against it through the batched
:class:`~repro.core.session.QuerySession` API: the session compiles
each subscription text once, plans the book as one combined query
(duplicate subscriptions collapse onto a shared slice) and broadcasts
it in a single ParBoX round -- every site is visited once for the whole
book, and the per-query ledger shows the amortized traffic.

``examples/parallel_sites.py`` compares the three execution strategies
head to head; pass ``executor="threads"`` to the session to overlap the
per-site work here too.

Run:  python examples/pubsub_filtering.py
"""

from repro import QuerySession
from repro.workloads.topologies import star_ft1

SUBSCRIPTIONS = {
    "college-sellers": '[//person[profile/education = "college"]]',
    "big-bids": '[//bidder[increase = "7"]]',
    "lagos-or-perth": '[//address[city = "lagos" or city = "perth"]]',
    "no-worldwide-shipping": "[not(//item[shipping])]",
    # XMark wraps item descriptions in a <text> element, so this path
    # names the element and then compares its content.
    "gold-items": '[//item/description/text/text() = "gold gold gold gold"]',
    "category-1-interest": '[//profile[interest = "category-1"]]',
    "auctions-with-annotations": "[//open_auction[annotation/description]]",
    "root-is-a-site": "[label() = site and regions]",
    # A second subscriber watches the big bids too: the planner
    # deduplicates the repeated query inside the batch.
    "big-bids-mirror": '[//bidder[increase = "7"]]',
}


def main() -> None:
    # Four federated XMark sites, one per machine.
    cluster = star_ft1(4, 8.0, seed=42)
    print(
        f"document: {cluster.total_size()} nodes over "
        f"{len(cluster.sites())} sites, {cluster.card()} fragments\n"
    )

    names = list(SUBSCRIPTIONS)
    with QuerySession(cluster, engine="parbox") as session:
        outcome = session.evaluate_many([SUBSCRIPTIONS[name] for name in names])
        cache = session.cache_stats()

    batch = outcome.batches[0]
    matched = [name for name, answer in zip(names, outcome.answers) if answer]
    print(f"{'subscription':28s} {'match':6s} {'bytes/q':>8s} {'ops/q':>8s}")
    for name, answer, cost in zip(names, outcome.answers, outcome.per_query):
        shared = f" (dedup x{cost.shared_with + 1})" if cost.shared_with else ""
        print(
            f"{name:28s} {str(answer):6s} {cost.bytes_sent:8.0f} "
            f"{cost.qlist_ops:8.0f}{shared}"
        )

    print(f"\n{len(matched)}/{len(SUBSCRIPTIONS)} subscriptions fired: {matched}")
    print(
        f"whole book in one round: {batch.metrics.total_visits()} site visits "
        f"({batch.metrics.max_visits_per_site()} per site), "
        f"{outcome.bytes_total} bytes total = {outcome.bytes_per_query:.0f} per query; "
        f"compiled {cache['misses']} unique texts ({cache['hits']} cache hits); "
        "the document itself never moved"
    )

    # ---- Standing subscriptions kept live (the watch API) --------------
    # A real broker doesn't re-run the book per update: `watch` keeps
    # the whole book standing on a StreamMaintainer.  Publisher edits
    # arrive as typed update ops; only the dirty fragment's site
    # re-runs bottomUp (one combined traversal for the whole book),
    # only the changed triplet slices cross the network, and answer
    # flips surface on the changefeed.
    from repro.stream import InsNode

    names = list(SUBSCRIPTIONS)
    with QuerySession(cluster, engine="parbox") as session:
        watch = session.watch(
            [SUBSCRIPTIONS[name] for name in names], names=names
        )
        print(
            f"\nwatching: {len(watch)} standing subscriptions "
            f"({watch.duplicate_subscriptions()} deduplicated), combined "
            f"|QList| = {watch.combined_size()}"
        )

        # A publisher at site S2 lists a gold item -- the one
        # subscription that had not fired yet.  The nested structure is
        # built with insNode ops against the typed update log.
        f2_root = cluster.fragment("F2").root
        round_ = watch.apply(
            [InsNode("F2", f2_root.node_id, "item", text=None)]
        )
        item_node = f2_root.children[-1]
        round_ = watch.apply(
            [
                InsNode("F2", item_node.node_id, "name", text="gold-bar"),
                InsNode("F2", item_node.node_id, "description"),
            ]
        )
        description = item_node.children[-1]
        round_ = watch.apply(
            [
                InsNode(
                    "F2", description.node_id, "text", text="gold gold gold gold"
                )
            ]
        )
        print(
            f"update in F2: dirty sites {list(round_.sites_visited)} only, "
            f"{round_.nodes_recomputed} nodes retraversed, "
            f"{round_.traffic_bytes} delta bytes, "
            f"{round_.segments_resolved} of {watch.index.segment_count} "
            f"segments re-solved"
        )
        for event in watch.changefeed.drain():
            print(
                f"  changefeed: {event.name} "
                f"{event.old_answer} -> {event.new_answer}"
            )
        watch.close()


if __name__ == "__main__":
    main()
