"""Publish/subscribe content filtering over a distributed document.

Boolean XPath is the subscription language of XML dissemination systems
(the paper cites Altinel & Franklin's XFilter).  Here a federated
auction document is spread over four sites and a broker evaluates a
whole *book* of subscriptions against it -- each subscription is one
ParBoX round whose traffic is bytes-per-query, never data shipping.

``evaluate_threaded`` (the compatibility alias for
``ParBoXEngine(cluster, executor="threads")``) runs the per-site work
truly concurrently on a thread pool, one worker per site; the
subscription loop therefore overlaps each round's site evaluations
while the visit/traffic ledger stays identical to the serial baseline.
``examples/parallel_sites.py`` compares all three execution strategies
head to head.

Run:  python examples/pubsub_filtering.py
"""

from repro import ParBoXEngine, compile_query
from repro.workloads.topologies import star_ft1

SUBSCRIPTIONS = {
    "college-sellers": '[//person[profile/education = "college"]]',
    "big-bids": '[//bidder[increase = "7"]]',
    "lagos-or-perth": '[//address[city = "lagos" or city = "perth"]]',
    "no-worldwide-shipping": "[not(//item[shipping])]",
    # XMark wraps item descriptions in a <text> element, so this path
    # names the element and then compares its content.
    "gold-items": '[//item/description/text/text() = "gold gold gold gold"]',
    "category-1-interest": '[//profile[interest = "category-1"]]',
    "auctions-with-annotations": "[//open_auction[annotation/description]]",
    "root-is-a-site": "[label() = site and regions]",
}


def main() -> None:
    # Four federated XMark sites, one per machine.
    cluster = star_ft1(4, 8.0, seed=42)
    print(
        f"document: {cluster.total_size()} nodes over "
        f"{len(cluster.sites())} sites, {cluster.card()} fragments\n"
    )

    engine = ParBoXEngine(cluster)
    total_bytes = 0
    matched = []
    print(f"{'subscription':28s} {'match':6s} {'bytes':>6s} {'elapsed':>10s}")
    for name, text in SUBSCRIPTIONS.items():
        qlist = compile_query(text)
        result = engine.evaluate_threaded(qlist)
        total_bytes += result.metrics.bytes_total
        if result.answer:
            matched.append(name)
        print(
            f"{name:28s} {str(result.answer):6s} "
            f"{result.metrics.bytes_total:6d} "
            f"{result.elapsed_seconds * 1000:8.2f}ms"
        )

    print(f"\n{len(matched)}/{len(SUBSCRIPTIONS)} subscriptions fired: {matched}")
    print(
        f"total network traffic for the whole book: {total_bytes} bytes "
        "(the document itself never moved)"
    )

    # ---- Standing subscriptions with shared maintenance ----------------
    # A real broker doesn't re-run the book per update: the registry
    # concatenates all QLists and maintains every subscription with a
    # single traversal of whichever fragment changed.
    from repro.views import SubscriptionRegistry
    from repro.xmltree import element

    registry = SubscriptionRegistry(cluster)
    for name, text in SUBSCRIPTIONS.items():
        registry.subscribe(name, compile_query(text))
    print(
        f"\nregistry: {len(registry)} standing subscriptions, combined "
        f"|QList| = {registry.combined_size()}"
    )

    # A publisher at site S2 lists a gold item -- the one subscription
    # that had not fired yet.
    target = cluster.fragment("F2")
    item = element(
        "item",
        element("name", text="gold-bar"),
        element("description", element("text", text="gold gold gold gold")),
    )
    target.root.add_child(item)
    report = registry.notify_fragment_updated("F2")
    print(
        f"update in F2: one traversal of {report.nodes_recomputed} nodes, "
        f"{report.traffic_bytes} bytes; flipped: {list(report.changed) or 'nothing'}"
    )


if __name__ == "__main__":
    main()
