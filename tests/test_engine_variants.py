"""Behavioural tests for the Section 3-4 baselines and variants."""

import pytest

from repro.core import (
    FullDistParBoXEngine,
    HybridParBoXEngine,
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    ParBoXEngine,
)
from repro.core.engine import MSG_FRAGMENT_DATA, MSG_GROUND_TRIPLET, MSG_TRIPLET
from repro.distsim import Cluster
from repro.fragments import fragment_per_node
from repro.workloads.portfolio import build_portfolio_cluster, build_portfolio_tree
from repro.workloads.queries import query_of_size, seal_query
from repro.workloads.topologies import chain_ft2, star_ft1
from repro.xpath import compile_query


class TestNaiveCentralized:
    def test_ships_all_remote_data(self):
        cluster = star_ft1(4, 2.0, seed=20)
        result = NaiveCentralizedEngine(cluster).evaluate(query_of_size(8))
        expected = sum(
            cluster.fragment(fid).wire_bytes()
            for fid in cluster.fragmented_tree.fragments
            if cluster.site_of(fid) != cluster.coordinator_site
        )
        assert result.details["shipped_bytes"] == expected
        assert result.metrics.bytes_by_kind[MSG_FRAGMENT_DATA] == expected

    def test_traffic_scales_with_tree_size(self):
        qlist = query_of_size(8)
        small = NaiveCentralizedEngine(star_ft1(4, 1.0, seed=21)).evaluate(qlist)
        large = NaiveCentralizedEngine(star_ft1(4, 4.0, seed=21)).evaluate(qlist)
        assert large.metrics.bytes_total > 2 * small.metrics.bytes_total

    def test_one_visit_per_remote_site(self):
        cluster = build_portfolio_cluster()
        result = NaiveCentralizedEngine(cluster).evaluate(compile_query("[//stock]"))
        assert dict(result.metrics.visits) == {"S1": 1, "S2": 1}

    def test_single_site_no_shipping(self):
        cluster = Cluster.single_site(star_ft1(3, 1.0, seed=22).fragmented_tree)
        result = NaiveCentralizedEngine(cluster).evaluate(query_of_size(8))
        assert result.metrics.bytes_total == 0


class TestNaiveDistributed:
    def test_visits_once_per_fragment(self):
        # S2 holds two fragments -> visited twice (the paper's complaint).
        cluster = build_portfolio_cluster()
        result = NaiveDistributedEngine(cluster).evaluate(compile_query("[//stock]"))
        assert result.metrics.visits["S2"] == 2
        assert result.metrics.visits["S0"] == 1
        assert result.metrics.visits["S1"] == 1

    def test_sequential_elapsed_is_sum(self):
        cluster = star_ft1(5, 5.0, seed=23)
        parallel = ParBoXEngine(cluster).evaluate(query_of_size(8))
        sequential = NaiveDistributedEngine(cluster).evaluate(query_of_size(8))
        assert sequential.elapsed_seconds > parallel.elapsed_seconds

    def test_no_data_shipping(self):
        cluster = star_ft1(4, 2.0, seed=24)
        result = NaiveDistributedEngine(cluster).evaluate(query_of_size(8))
        assert MSG_FRAGMENT_DATA not in result.metrics.bytes_by_kind


class TestFullDist:
    def test_no_variables_cross_the_network(self):
        cluster = chain_ft2(5, 2.5, seed=25)
        result = FullDistParBoXEngine(cluster).evaluate(seal_query("F4"))
        # Only ground triplets in stage 3; no variable-carrying replies.
        assert MSG_TRIPLET not in result.metrics.bytes_by_kind
        assert result.metrics.bytes_by_kind[MSG_GROUND_TRIPLET] > 0

    def test_reply_traffic_not_above_parbox(self):
        # "FullDistParBoX still results in at most half the traffic of
        # ParBoX" (reply side; requests also carry the source tree).
        cluster = chain_ft2(8, 4.0, seed=26)
        qlist = seal_query("F7")
        parbox = ParBoXEngine(cluster).evaluate(qlist)
        fulldist = FullDistParBoXEngine(cluster).evaluate(qlist)
        assert (
            fulldist.metrics.bytes_by_kind[MSG_GROUND_TRIPLET]
            <= parbox.metrics.bytes_by_kind[MSG_TRIPLET]
        )

    def test_elapsed_close_to_parbox_on_chain(self):
        # Figs. 9-10: ParBoX and FullDistParBoX nearly coincide.
        cluster = chain_ft2(6, 6.0, seed=27)
        qlist = seal_query("F5")
        parbox = ParBoXEngine(cluster).evaluate(qlist)
        fulldist = FullDistParBoXEngine(cluster).evaluate(qlist)
        assert fulldist.elapsed_seconds < parbox.elapsed_seconds * 3


class TestLazy:
    def test_stops_at_satisfying_depth(self):
        # "in LazyParBoX only 2 machines evaluate qF0 while all the
        # other machines are idle" -- the first step covers the
        # coordinator and depth 1, then the answer resolves.
        cluster = chain_ft2(8, 4.0, seed=28)
        result = LazyParBoXEngine(cluster).evaluate(seal_query("F0"))
        assert result.answer is True
        assert result.details["steps_evaluated"] == 1
        assert result.details["fragments_evaluated"] == 2

    def test_descends_to_target(self):
        cluster = chain_ft2(8, 4.0, seed=28)
        result = LazyParBoXEngine(cluster).evaluate(seal_query("F5"))
        assert result.answer is True
        assert result.details["fragments_evaluated"] == 6  # F0..F5 resolve it

    def test_negative_answer_evaluates_everything(self):
        cluster = chain_ft2(6, 3.0, seed=29)
        result = LazyParBoXEngine(cluster).evaluate(seal_query("NOWHERE"))
        assert result.answer is False
        assert result.details["fragments_evaluated"] == 6

    def test_saves_computation_vs_parbox(self):
        cluster = chain_ft2(8, 4.0, seed=30)
        qlist = seal_query("F0")
        lazy = LazyParBoXEngine(cluster).evaluate(qlist)
        eager = ParBoXEngine(cluster).evaluate(qlist)
        assert lazy.metrics.qlist_ops < eager.metrics.qlist_ops

    def test_sequential_depths_cost_elapsed_time(self):
        # Fig. 10: when the satisfying fragment is deepest, Lazy's
        # elapsed exceeds ParBoX's (sequential tail).
        cluster = chain_ft2(8, 8.0, seed=31)
        qlist = seal_query("F7")
        lazy = LazyParBoXEngine(cluster).evaluate(qlist)
        eager = ParBoXEngine(cluster).evaluate(qlist)
        assert lazy.elapsed_seconds > eager.elapsed_seconds


class TestHybrid:
    def test_normal_regime_uses_parbox(self):
        cluster = star_ft1(4, 4.0, seed=32)
        engine = HybridParBoXEngine(cluster)
        qlist = query_of_size(8)
        assert engine.choose_strategy(qlist) == "parbox"
        result = engine.evaluate(qlist)
        assert result.details["strategy"] == "parbox"
        assert MSG_FRAGMENT_DATA not in result.metrics.bytes_by_kind

    def test_pathological_regime_falls_back(self):
        tree = build_portfolio_tree()
        cluster = Cluster.one_site_per_fragment(fragment_per_node(tree))
        engine = HybridParBoXEngine(cluster)
        qlist = compile_query("[//stock]")
        # card(F) = |T| >= |T|/|q|: switch to centralized.
        assert engine.choose_strategy(qlist) == "centralized"
        result = engine.evaluate(qlist)
        assert result.details["strategy"] == "centralized"
        assert result.answer is True

    def test_tipping_point_rule(self):
        cluster = star_ft1(4, 2.0, seed=33)
        engine = HybridParBoXEngine(cluster)
        qlist = query_of_size(8)
        card, size = cluster.card(), cluster.total_size()
        expected = "parbox" if card < size / len(qlist) else "centralized"
        assert engine.choose_strategy(qlist) == expected
