"""Unit tests for the XMLTree document wrapper."""

import pytest

from repro.xmltree import XMLNode, XMLTree, element


@pytest.fixture
def tree():
    return XMLTree(element("a", element("b", element("c")), element("d")))


class TestLookup:
    def test_node_by_id(self, tree):
        node = tree.root.children[0]
        assert tree.node_by_id(node.node_id) is node

    def test_node_by_id_missing(self, tree):
        with pytest.raises(KeyError):
            tree.node_by_id(-1)

    def test_contains_node(self, tree):
        assert tree.contains_node(tree.root.children[1])
        assert not tree.contains_node(XMLNode("other"))

    def test_root_must_be_detached(self):
        parent = element("a", element("b"))
        with pytest.raises(ValueError):
            XMLTree(parent.children[0])


class TestMutation:
    def test_insert_node(self, tree):
        node = tree.insert_node("x", tree.root, text="hello")
        assert node.parent is tree.root
        assert tree.contains_node(node)
        assert tree.size() == 5

    def test_insert_node_at_index(self, tree):
        tree.insert_node("x", tree.root, index=0)
        assert tree.root.children[0].label == "x"

    def test_insert_rejects_foreign_parent(self, tree):
        with pytest.raises(ValueError):
            tree.insert_node("x", XMLNode("foreign"))

    def test_delete_node(self, tree):
        target = tree.root.children[0]  # subtree of 2 nodes
        tree.delete_node(target)
        assert tree.size() == 2
        assert not tree.contains_node(target)

    def test_delete_root_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.delete_node(tree.root)

    def test_delete_foreign_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.delete_node(XMLNode("foreign"))

    def test_version_bumps_on_mutation(self, tree):
        before = tree.version
        tree.insert_node("x", tree.root)
        assert tree.version > before

    def test_index_refreshes_after_out_of_band_mutation(self, tree):
        tree.node_by_id(tree.root.node_id)  # populate the id index
        node = XMLNode("manual")
        tree.root.add_child(node)
        assert not tree.contains_node(node)  # stale cache
        tree.touch()
        assert tree.contains_node(node)


class TestMeasurements:
    def test_size_counts_non_virtual(self, tree):
        assert tree.size() == 4
        tree.root.add_child(XMLNode.virtual("F1"))
        tree.touch()
        assert tree.size() == 4

    def test_size_is_cached(self, tree):
        assert tree.size() == tree.size()

    def test_height(self, tree):
        assert tree.height() == 2


class TestCopyEquality:
    def test_deep_copy(self, tree):
        copy = tree.deep_copy()
        assert tree.structurally_equal(copy)
        copy.insert_node("x", copy.root)
        assert not tree.structurally_equal(copy)
