"""Integration: every distributed engine agrees with the centralized oracle.

The grid crosses documents x fragmentations x queries; the oracle is the
optimal centralized evaluator run on the stitched (whole) document.
"""

import pytest

from repro.core import ALL_ENGINES, evaluate_tree
from repro.distsim import Cluster
from repro.fragments import fragment_at, fragment_balanced, fragment_per_node
from repro.workloads.portfolio import PORTFOLIO_QUERIES, build_portfolio_cluster, build_portfolio_tree
from repro.workloads.queries import QUERY_SIZES, query_of_size, seal_query
from repro.workloads.topologies import bushy_ft3, chain_ft2, co_located, star_ft1
from repro.xpath import compile_query

QUERIES = [
    "[//stock]",
    '[//stock[code = "GOOG" and sell = "376"]]',
    '[//broker[//stock/code/text() = "GOOG" and not(//stock/code/text() = "YHOO")]]',
    '[//stock[code/text() = "YHOO"]]',
    '[/portofolio/broker/name = "Merill Lynch"]',
    "[not //market]",
    "[label() = portofolio and //sell]",
    "[broker/market/stock or //zzz]",
    "[//zzz]",
    "[*]",
]


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
@pytest.mark.parametrize("query", QUERIES)
class TestPortfolioGrid:
    def test_agrees_with_oracle(self, engine_cls, query):
        cluster = build_portfolio_cluster()
        qlist = compile_query(query)
        oracle, _ = evaluate_tree(build_portfolio_tree(), qlist)
        result = engine_cls(cluster).evaluate(qlist)
        assert result.answer == oracle
        assert result.engine == engine_cls.name


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
class TestFragmentationShapes:
    """One document, many decompositions: answers must be invariant."""

    @pytest.fixture(scope="class")
    def tree(self):
        return build_portfolio_tree()

    @pytest.fixture(scope="class")
    def qlists(self):
        return [compile_query(q) for q in PORTFOLIO_QUERIES.values()]

    def _check(self, engine_cls, ftree, tree, qlists):
        cluster = Cluster.one_site_per_fragment(ftree)
        for qlist in qlists:
            oracle, _ = evaluate_tree(tree, qlist)
            assert engine_cls(cluster).evaluate(qlist).answer == oracle

    def test_single_fragment(self, engine_cls, tree, qlists):
        self._check(engine_cls, fragment_balanced(tree, 1), tree, qlists)

    def test_balanced_fragments(self, engine_cls, tree, qlists):
        for count in (2, 4, 6):
            self._check(engine_cls, fragment_balanced(tree, count), tree, qlists)

    def test_per_node_fragmentation(self, engine_cls, tree, qlists):
        self._check(engine_cls, fragment_per_node(tree), tree, qlists)

    def test_deep_nested_cuts(self, engine_cls, tree, qlists):
        # Cut each market, and a stock inside one of them (nested).
        markets = tree.root.find_by_label("market")
        stock = markets[1].find_by_label("stock")[0]
        ftree = fragment_at(tree, markets + [stock])
        self._check(engine_cls, ftree, tree, qlists)

    def test_everything_on_one_site(self, engine_cls, tree, qlists):
        ftree = fragment_balanced(tree, 4)
        cluster = Cluster.single_site(ftree)
        for qlist in qlists:
            oracle, _ = evaluate_tree(tree, qlist)
            assert engine_cls(cluster).evaluate(qlist).answer == oracle


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
class TestXMarkTopologies:
    """The benchmark topologies at miniature scale."""

    def test_star(self, engine_cls):
        cluster = star_ft1(4, 2.0, seed=11)
        qlist = query_of_size(8)
        oracle, _ = evaluate_tree(cluster.fragmented_tree.stitch(), qlist)
        assert engine_cls(cluster).evaluate(qlist).answer == oracle

    def test_chain_with_seal_queries(self, engine_cls):
        cluster = chain_ft2(5, 2.5, seed=12)
        for target in ("F0", "F2", "F4"):
            qlist = seal_query(target)
            assert engine_cls(cluster).evaluate(qlist).answer is True
        assert engine_cls(cluster).evaluate(seal_query("F9")).answer is False

    def test_bushy(self, engine_cls):
        cluster = bushy_ft3(0, seed=13, nodes_per_mb=12)
        for size in QUERY_SIZES:
            qlist = query_of_size(size)
            oracle, _ = evaluate_tree(cluster.fragmented_tree.stitch(), qlist)
            assert engine_cls(cluster).evaluate(qlist).answer == oracle

    def test_co_located(self, engine_cls):
        cluster = co_located(3, 1.5, seed=14)
        qlist = query_of_size(8)
        oracle, _ = evaluate_tree(cluster.fragmented_tree.stitch(), qlist)
        assert engine_cls(cluster).evaluate(qlist).answer == oracle
