"""Unit tests for the Boolean equation system solver."""

import pytest

from repro.boolexpr import (
    FALSE,
    TRUE,
    BooleanEquationSystem,
    CyclicDefinitionError,
    UnboundVariableError,
    Var,
    make_and,
    make_not,
    make_or,
)


def v(name, index=0):
    return Var(name, "V", index)


class TestDefinitions:
    def test_define_and_lookup(self):
        system = BooleanEquationSystem()
        system.define(v("a"), TRUE)
        assert system.is_defined(v("a"))
        assert system.definition_of(v("a")) is TRUE
        assert len(system) == 1

    def test_redefinition_rejected(self):
        system = BooleanEquationSystem()
        system.define(v("a"), TRUE)
        with pytest.raises(ValueError):
            system.define(v("a"), FALSE)

    def test_missing_definition(self):
        system = BooleanEquationSystem()
        with pytest.raises(UnboundVariableError):
            system.definition_of(v("a"))

    def test_define_many(self):
        system = BooleanEquationSystem()
        system.define_many([(v("a"), TRUE), (v("b"), FALSE)])
        assert len(system) == 2


class TestSolving:
    def test_ground_values(self):
        system = BooleanEquationSystem()
        system.define(v("a"), TRUE)
        system.define(v("b"), FALSE)
        assert system.value_of(v("a")) is True
        assert system.value_of(v("b")) is False

    def test_chain_resolution(self):
        # The paper's Example 3.3: dx8 -> 1, dy8 -> dx8, dz8 -> 0,
        # answer = dy8 OR dz8 -> true.
        system = BooleanEquationSystem()
        dx8 = Var("F2", "DV", 7)
        dy8 = Var("F1", "DV", 7)
        dz8 = Var("F3", "DV", 7)
        system.define(dx8, TRUE)
        system.define(dy8, dx8)
        system.define(dz8, FALSE)
        assert system.evaluate(make_or(dy8, dz8)) is True

    def test_deep_chain_is_iterative(self):
        system = BooleanEquationSystem()
        previous = None
        for index in range(5000):
            var = v("f", index)
            system.define(var, TRUE if previous is None else previous)
            previous = var
        assert system.value_of(v("f", 4999)) is True

    def test_diamond_dependencies(self):
        system = BooleanEquationSystem()
        system.define(v("d"), TRUE)
        system.define(v("b"), v("d"))
        system.define(v("c"), make_not(v("d")))
        system.define(v("a"), make_and(v("b"), make_or(v("c"), v("d"))))
        assert system.value_of(v("a")) is True

    def test_unbound_raises(self):
        system = BooleanEquationSystem()
        system.define(v("a"), v("missing"))
        with pytest.raises(UnboundVariableError):
            system.value_of(v("a"))

    def test_cycle_detection(self):
        system = BooleanEquationSystem()
        system.define(v("a"), v("b"))
        system.define(v("b"), v("a"))
        with pytest.raises(CyclicDefinitionError):
            system.value_of(v("a"))

    def test_self_cycle_detection(self):
        # Note make_or(a, TRUE) would canonicalize to TRUE and hide the
        # cycle; negation keeps the self-reference alive.
        system = BooleanEquationSystem()
        system.define(v("a"), make_not(v("a")))
        with pytest.raises(CyclicDefinitionError):
            system.value_of(v("a"))

    def test_solve_all(self):
        system = BooleanEquationSystem()
        system.define(v("a"), TRUE)
        system.define(v("b"), make_not(v("a")))
        solution = system.solve_all()
        assert solution == {v("a"): True, v("b"): False}


class TestPartialEvaluation:
    """Kleene semantics used by LazyParBoX."""

    def test_undefined_is_unknown(self):
        system = BooleanEquationSystem()
        assert system.partial_value_of(v("missing")) is None

    def test_known_value_resolves(self):
        system = BooleanEquationSystem()
        system.define(v("a"), TRUE)
        assert system.partial_value_of(v("a")) is True

    def test_or_short_circuits_unknown(self):
        system = BooleanEquationSystem()
        system.define(v("a"), make_or(v("missing"), TRUE))
        assert system.partial_value_of(v("a")) is True

    def test_and_short_circuits_unknown(self):
        system = BooleanEquationSystem()
        system.define(v("a"), make_and(v("missing"), FALSE))
        assert system.partial_value_of(v("a")) is False

    def test_unknown_propagates(self):
        system = BooleanEquationSystem()
        system.define(v("a"), make_or(v("missing"), FALSE))
        assert system.partial_value_of(v("a")) is None

    def test_not_of_unknown(self):
        system = BooleanEquationSystem()
        system.define(v("a"), make_not(v("missing")))
        assert system.partial_value_of(v("a")) is None

    def test_try_evaluate_formula(self):
        system = BooleanEquationSystem()
        system.define(v("a"), TRUE)
        assert system.try_evaluate(make_or(v("a"), v("missing"))) is True
        assert system.try_evaluate(make_and(v("a"), v("missing"))) is None

    def test_nested_partial_resolution(self):
        # a depends on b which depends on an unknown, but b's known
        # disjunct decides it -- resolution must see through the chain.
        system = BooleanEquationSystem()
        system.define(v("b"), make_or(v("missing"), TRUE))
        system.define(v("a"), v("b"))
        assert system.partial_value_of(v("a")) is True

    def test_partial_cache_invalidated_by_new_definition(self):
        system = BooleanEquationSystem()
        system.define(v("a"), v("late"))
        assert system.partial_value_of(v("a")) is None
        system.define(v("late"), TRUE)
        assert system.partial_value_of(v("a")) is True
