"""Tests for the Section 8 extension: data-selection queries."""

import pytest

from repro.core import SelectionEngine, select_centralized
from repro.core.selection import path_entry_indices, selection_table
from repro.fragments import Fragment
from repro.workloads.portfolio import build_portfolio_cluster, build_portfolio_tree
from repro.workloads.queries import seal_query
from repro.workloads.topologies import chain_ft2, star_ft1
from repro.xmltree import parse_xml
from repro.xpath import compile_query

SELECTION_QUERIES = [
    "[//stock]",
    "[//stock/code]",
    "[broker/market]",
    '[//stock[code = "GOOG"]]',
    '[//market[name = "NASDAQ"]/stock]',
    "[//name]",
    "[*]",
    "[.]",
    "[//zzz]",
    "[/portofolio/broker]",
]


class TestAgainstOracle:
    @pytest.mark.parametrize("query", SELECTION_QUERIES)
    def test_portfolio(self, query):
        cluster = build_portfolio_cluster()
        tree = build_portfolio_tree()
        qlist = compile_query(query)
        assert SelectionEngine(cluster).select(qlist).paths == select_centralized(tree, qlist)

    @pytest.mark.parametrize("query", ["[//seal]", "[//person/name]", "[//open_auction/bidder]"])
    def test_xmark_star(self, query):
        cluster = star_ft1(4, 1.0, seed=40)
        whole = cluster.fragmented_tree.stitch()
        qlist = compile_query(query)
        assert SelectionEngine(cluster).select(qlist).paths == select_centralized(whole, qlist)

    def test_xmark_chain(self):
        cluster = chain_ft2(4, 1.0, seed=41)
        whole = cluster.fragmented_tree.stitch()
        qlist = compile_query("[//seal]")
        paths = SelectionEngine(cluster).select(qlist).paths
        assert paths == select_centralized(whole, qlist)
        assert len(paths) == 4  # one seal per fragment


class TestVisitGuarantee:
    def test_at_most_two_visits_per_site(self):
        cluster = build_portfolio_cluster()  # S2 holds two fragments
        result = SelectionEngine(cluster).select(compile_query("[//stock]")).result
        assert result.metrics.max_visits_per_site() == 2
        assert set(result.metrics.visits) == {"S0", "S1", "S2"}

    def test_chain_two_visits(self):
        cluster = chain_ft2(5, 1.0, seed=42)
        result = SelectionEngine(cluster).select(compile_query("[//seal]")).result
        assert result.metrics.max_visits_per_site() == 2


class TestSemantics:
    def test_paths_are_document_positions(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[/portofolio]")
        (path,) = SelectionEngine(cluster).select(qlist).paths
        assert path == ()  # the root itself

    def test_selection_spanning_fragments(self):
        # //stock has matches in F0 (IBM, HPQ), F1 (AAPL), F2 (GOOG) and
        # F3 (YHOO, GOOG).
        cluster = build_portfolio_cluster()
        result = SelectionEngine(cluster).select(compile_query("[//stock]"))
        assert len(result.paths) == 6

    def test_boolean_answer_consistent(self):
        cluster = build_portfolio_cluster()
        positive = SelectionEngine(cluster).select(compile_query("[//stock]"))
        negative = SelectionEngine(cluster).select(compile_query("[//zzz]"))
        assert positive.result.answer is True
        assert negative.result.answer is False
        assert negative.paths == ()

    def test_non_path_query_rejected(self):
        cluster = build_portfolio_cluster()
        with pytest.raises(ValueError):
            SelectionEngine(cluster).select(compile_query("[//a and //b]"))
        with pytest.raises(ValueError):
            select_centralized(build_portfolio_tree(), compile_query("[not //a]"))


class TestSelectionTable:
    def test_exit_states_for_descendant(self):
        # //b crossing into a sub-fragment: the DESC state must flow out.
        root = parse_xml('<a><frag:ref id="K"/></a>').root
        fragment = Fragment("F", root)
        qlist = compile_query("[//b]")
        table = selection_table(fragment, qlist, _all_false_env(qlist, "K"))
        answer = qlist.answer_index
        assert "K" in table.exits[answer]
        assert answer in table.exits[answer]["K"]

    def test_child_state_crosses_to_fragment_root(self):
        # b with the sub-fragment as the candidate child: the
        # continuation state activates at the sub-fragment's root.
        root = parse_xml('<a><frag:ref id="K"/></a>').root
        fragment = Fragment("F", root)
        qlist = compile_query("[b]")
        table = selection_table(fragment, qlist, _all_false_env(qlist, "K"))
        answer = qlist.answer_index  # the */q entry
        exits = table.exits[answer]["K"]
        # The exit state is the ε[label()=b] continuation, not the child
        # entry itself.
        assert exits and all(qlist[j].op == "self" for j in exits)

    def test_path_entry_indices(self):
        qlist = compile_query("[//a[x]/b]")
        indices = path_entry_indices(qlist)
        assert indices
        assert all(qlist[i].op in ("eps", "self", "selfseq", "child", "desc") for i in indices)


def _all_false_env(qlist, fragment_id):
    from repro.boolexpr import Var

    env = {}
    for kind in ("V", "CV", "DV"):
        for index in range(len(qlist)):
            env[Var(fragment_id, kind, index)] = False
    return env
