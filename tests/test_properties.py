"""Property-based tests (hypothesis) on the core invariants.

Strategy: generate random labelled trees, random fragmentations of them,
and random XBL queries; assert that

* every distributed engine agrees with the centralized oracle;
* ParBoX visits each site exactly once;
* fragmentation round-trips (stitch inverts cutting);
* formula canonicalization preserves semantics;
* selection agrees with its oracle.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.boolexpr import FALSE, TRUE, PaperAlgebra, Var, make_and, make_not, make_or
from repro.core import (
    FullDistParBoXEngine,
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    ParBoXEngine,
    SelectionEngine,
    evaluate_tree,
    select_centralized,
)
from repro.distsim import Cluster
from repro.fragments import fragment_at
from repro.workloads.queries import random_query
from repro.xmltree import XMLNode, XMLTree
from repro.xpath import compile_query, parse_query
from repro.xpath.parser import QueryParseError

LABELS = ("a", "b", "c", "d", "seal")
TEXTS = (None, "x", "y", "7")


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def build_random_tree(rng: random.Random, max_nodes: int = 30) -> XMLTree:
    root = XMLNode(rng.choice(LABELS), text=rng.choice(TEXTS))
    nodes = [root]
    for _ in range(rng.randint(0, max_nodes - 1)):
        parent = rng.choice(nodes)
        child = XMLNode(rng.choice(LABELS), text=rng.choice(TEXTS))
        parent.add_child(child)
        nodes.append(child)
    return XMLTree(root)


def random_fragmentation(rng: random.Random, tree: XMLTree):
    candidates = [n for n in tree.root.iter_subtree() if n is not tree.root]
    rng.shuffle(candidates)
    cut_count = rng.randint(0, min(len(candidates), 6))
    chosen: list[XMLNode] = []
    for node in candidates:
        if len(chosen) == cut_count:
            break
        chosen.append(node)
    return fragment_at(tree, chosen)


def random_placement(rng: random.Random, ftree) -> Cluster:
    n_sites = rng.randint(1, max(1, ftree.card()))
    assignment = {}
    ids = list(ftree.iter_depth_first())
    for index, fid in enumerate(ids):
        # Root fragment on S0; others anywhere.
        assignment[fid] = "S0" if index == 0 else f"S{rng.randint(0, n_sites - 1)}"
    from repro.fragments import Placement

    return Cluster(ftree, Placement(assignment))


def valid_random_query(rng: random.Random) -> str:
    while True:
        text = random_query(rng, max_depth=2, labels=LABELS, texts=("x", "y", "7"))
        try:
            parse_query(text)
            return text
        except QueryParseError:  # pragma: no cover - generator is well-formed
            continue


# ---------------------------------------------------------------------------
# Engine agreement
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_all_engines_agree_with_oracle(seed):
    rng = random.Random(seed)
    tree = build_random_tree(rng)
    ftree = random_fragmentation(rng, tree)
    cluster = random_placement(rng, ftree)
    qlist = compile_query(valid_random_query(rng))
    oracle, _ = evaluate_tree(tree, qlist)
    for engine_cls in (
        ParBoXEngine,
        NaiveCentralizedEngine,
        NaiveDistributedEngine,
        FullDistParBoXEngine,
        LazyParBoXEngine,
    ):
        result = engine_cls(cluster).evaluate(qlist)
        assert result.answer == oracle, (engine_cls.name, qlist.source or qlist.pretty())


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parbox_visit_invariant(seed):
    rng = random.Random(seed)
    tree = build_random_tree(rng)
    cluster = random_placement(rng, random_fragmentation(rng, tree))
    result = ParBoXEngine(cluster).evaluate(compile_query("[//a and not //b]"))
    assert result.metrics.max_visits_per_site() == 1
    assert set(result.metrics.visits) == set(cluster.source_tree().sites())


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_paper_algebra_agrees(seed):
    rng = random.Random(seed)
    tree = build_random_tree(rng)
    cluster = random_placement(rng, random_fragmentation(rng, tree))
    qlist = compile_query(valid_random_query(rng))
    canonical = ParBoXEngine(cluster).evaluate(qlist)
    paper = ParBoXEngine(cluster, algebra=PaperAlgebra()).evaluate(qlist)
    assert canonical.answer == paper.answer


# ---------------------------------------------------------------------------
# Fragmentation
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_stitch_inverts_fragmentation(seed):
    rng = random.Random(seed)
    tree = build_random_tree(rng)
    ftree = random_fragmentation(rng, tree)
    assert ftree.stitch().structurally_equal(tree)
    assert ftree.total_size() == tree.size()


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def _random_path_query(rng: random.Random) -> str:
    depth = rng.randint(1, 3)
    pieces = []
    for index in range(depth):
        sep = rng.choice(["/", "//"]) if index else rng.choice(["", "//"])
        pieces.append(sep + rng.choice(LABELS + ("*",)))
    return "[" + "".join(pieces) + "]"


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_selection_agrees_with_oracle(seed):
    rng = random.Random(seed)
    tree = build_random_tree(rng)
    cluster = random_placement(rng, random_fragmentation(rng, tree))
    qlist = compile_query(_random_path_query(rng))
    assert SelectionEngine(cluster).select(qlist).paths == select_centralized(tree, qlist)


# ---------------------------------------------------------------------------
# Formula algebra
# ---------------------------------------------------------------------------


_vars = [Var(f"F{i}", "V", 0) for i in range(4)]


@st.composite
def formulas(draw, depth=3):
    if depth == 0:
        return draw(st.sampled_from([TRUE, FALSE] + _vars))
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return draw(st.sampled_from([TRUE, FALSE] + _vars))
    if kind == 1:
        return make_not(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return make_and(left, right) if kind == 2 else make_or(left, right)


@settings(max_examples=200, deadline=None)
@given(formula=formulas(), bits=st.integers(min_value=0, max_value=15))
def test_substitution_preserves_semantics(formula, bits):
    env = {var: bool(bits >> i & 1) for i, var in enumerate(_vars)}
    from repro.boolexpr.formula import const

    substituted = formula.substitute({v: const(env[v]) for v in formula.variables()})
    assert substituted.is_ground()
    assert substituted.evaluate({}) == formula.evaluate(env)


@settings(max_examples=200, deadline=None)
@given(left=formulas(), right=formulas(), bits=st.integers(min_value=0, max_value=15))
def test_connectives_sound(left, right, bits):
    env = {var: bool(bits >> i & 1) for i, var in enumerate(_vars)}
    assert make_and(left, right).evaluate(env) == (left.evaluate(env) and right.evaluate(env))
    assert make_or(left, right).evaluate(env) == (left.evaluate(env) or right.evaluate(env))
    assert make_not(left).evaluate(env) == (not left.evaluate(env))


@settings(max_examples=100, deadline=None)
@given(formula=formulas())
def test_wire_round_trip_preserves_semantics(formula):
    from repro.boolexpr import formula_from_obj

    restored = formula_from_obj(formula.to_obj())
    for bits in range(16):
        env = {var: bool(bits >> i & 1) for i, var in enumerate(_vars)}
        assert restored.evaluate(env) == formula.evaluate(env)
