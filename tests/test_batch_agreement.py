"""Acceptance: batching changes costs, never answers or visit bounds.

For a batch of N distinct queries on any engine:

* per-query answers are identical to sequential ``evaluate()`` calls,
  under all three site executors;
* the per-site visit count equals the single-query visit count (not
  N x) -- for LazyParBoX, the count of its deepest-resolving member,
  since the batch descends exactly that far.
"""

import pytest

from repro.core import ALL_ENGINES, SelectionEngine, select_centralized
from repro.distsim.executors import EXECUTOR_REGISTRY, resolve_executor
from repro.workloads.portfolio import build_portfolio_cluster, build_portfolio_tree
from repro.workloads.queries import seal_query
from repro.workloads.topologies import chain_ft2, co_located
from repro.xpath import compile_query

BATCH_TEXTS = [
    "[//stock]",
    '[//stock[code = "GOOG" and sell = "376"]]',
    "[//zzz]",
    '[not(//market)]',
    "[//stock]",  # duplicate on purpose
    "[label() = portofolio and //sell]",
]


@pytest.fixture(scope="module")
def qlists():
    return [compile_query(text) for text in BATCH_TEXTS]


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
@pytest.mark.parametrize("executor_name", sorted(EXECUTOR_REGISTRY))
class TestBatchMatchesSequentialEverywhere:
    """The engines x executors grid of the satellite task."""

    def test_answers_bitwise_identical(self, engine_cls, executor_name, qlists):
        cluster = build_portfolio_cluster()
        with resolve_executor(executor_name) as executor:
            engine = engine_cls(cluster, executor=executor)
            sequential = [engine.evaluate(qlist).answer for qlist in qlists]
            batch = engine.evaluate_many(qlists)
        assert list(batch.answers) == sequential
        assert batch.engine == engine_cls.name
        assert batch.details["executor"] == executor_name
        assert batch.details["batch_size"] == len(qlists)
        assert batch.details["unique_queries"] == len(qlists) - 1  # one duplicate


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
class TestVisitBound:
    """One batch costs one set of site visits, regardless of N."""

    def test_batch_visits_equal_single_query_visits(self, engine_cls, qlists):
        cluster = build_portfolio_cluster()
        engine = engine_cls(cluster)
        singles = [engine.evaluate(qlist) for qlist in qlists]
        batch = engine.evaluate_many(qlists)
        # The batch visit pattern equals that of its most-demanding
        # member (for every non-lazy engine all members tie, so this is
        # simply *the* single-query visit count) -- and is therefore
        # far below the N x of a sequential loop.  Hybrid may cross the
        # |T|/|q| tipping point on the *combined* query and switch
        # delegates, so its pattern is checked per-site-bound only.
        if engine_cls.name == "HybridParBoX":
            assert batch.metrics.max_visits_per_site() == 1
        else:
            heaviest = max(singles, key=lambda r: r.metrics.total_visits())
            assert dict(batch.metrics.visits) == dict(heaviest.metrics.visits)
        assert batch.metrics.total_visits() < sum(
            result.metrics.total_visits() for result in singles
        )

    def test_visits_on_multi_fragment_sites(self, engine_cls):
        # Two fragments per site: the per-fragment engines visit twice
        # per site -- per *batch*, not per query.
        cluster = co_located(3, 1.0, seed=5)
        queries = [compile_query("[//seal]"), compile_query("[//zzz]"), compile_query("[*]")]
        engine = engine_cls(cluster)
        singles = [engine.evaluate(qlist) for qlist in queries]
        batch = engine.evaluate_many(queries)
        heaviest = max(singles, key=lambda r: r.metrics.total_visits())
        assert batch.metrics.max_visits_per_site() == heaviest.metrics.max_visits_per_site()


class TestLazyBatchDescent:
    def test_batch_descends_like_deepest_member(self):
        from repro.core import LazyParBoXEngine

        cluster = chain_ft2(5, 2.5, seed=12)
        shallow = seal_query("F0")
        deep = seal_query("F4")
        engine = LazyParBoXEngine(cluster)
        shallow_only = engine.evaluate(shallow)
        deep_only = engine.evaluate(deep)
        batch = engine.evaluate_many([shallow, deep])
        assert list(batch.answers) == [True, True]
        # The batch evaluates exactly the fragments its deepest member
        # needs -- more than the shallow query alone, never more than
        # the deep one.
        assert batch.details["fragments_evaluated"] == deep_only.details["fragments_evaluated"]
        assert batch.details["fragments_evaluated"] >= shallow_only.details["fragments_evaluated"]
        assert dict(batch.metrics.visits) == dict(deep_only.metrics.visits)


class TestPerQueryAttribution:
    def test_ops_sum_to_ledger_total(self, qlists):
        from repro.core import ParBoXEngine

        cluster = build_portfolio_cluster()
        batch = ParBoXEngine(cluster).evaluate_many(qlists)
        attributed = sum(cost.qlist_ops for cost in batch.per_query)
        assert attributed == pytest.approx(batch.metrics.qlist_ops)

    def test_bytes_and_visits_shares_sum_to_totals(self, qlists):
        from repro.core import ParBoXEngine

        cluster = build_portfolio_cluster()
        batch = ParBoXEngine(cluster).evaluate_many(qlists)
        assert sum(c.bytes_sent for c in batch.per_query) == pytest.approx(
            batch.metrics.bytes_total
        )
        assert sum(c.visits for c in batch.per_query) == pytest.approx(
            batch.metrics.total_visits()
        )

    def test_duplicate_queries_split_shared_ops(self, qlists):
        from repro.core import ParBoXEngine

        cluster = build_portfolio_cluster()
        batch = ParBoXEngine(cluster).evaluate_many(qlists)
        stock_costs = [
            cost for cost, text in zip(batch.per_query, BATCH_TEXTS) if text == "[//stock]"
        ]
        assert len(stock_costs) == 2
        assert stock_costs[0].shared_with == 1
        assert stock_costs[0].qlist_ops == pytest.approx(stock_costs[1].qlist_ops)


class TestSelectionBatch:
    PATHS = ["//stock/code", "//broker/name", "//stock/code", "//market"]

    def test_batched_selection_matches_singles_and_oracle(self):
        cluster = build_portfolio_cluster()
        tree = build_portfolio_tree()
        engine = SelectionEngine(cluster)
        qlists = [compile_query(path) for path in self.PATHS]
        singles = [engine.select(qlist).paths for qlist in qlists]
        batch = engine.select_many(qlists)
        assert list(batch.selections) == singles
        for qlist, paths in zip(qlists, batch.selections):
            assert paths == select_centralized(tree, qlist)
        # Still the Section 8 bound: at most two visits per site.
        assert batch.result.metrics.max_visits_per_site() == 2
        # The duplicate path composed once: 'selected' counts unique work.
        assert batch.result.details["unique_queries"] == 3
        assert batch.result.details["selected"] == sum(
            len(paths) for paths, text in zip(singles, self.PATHS)
            if text != "//stock/code"
        ) + len(singles[0])

    def test_select_is_batch_of_one(self):
        cluster = build_portfolio_cluster()
        engine = SelectionEngine(cluster)
        qlist = compile_query("//stock/code")
        selection = engine.select(qlist)
        assert selection.paths
        assert selection.result.metrics.max_visits_per_site() == 2

    def test_invalid_member_rejected_before_any_visit(self):
        cluster = build_portfolio_cluster()
        engine = SelectionEngine(cluster)
        good = compile_query("//stock/code")
        bad = compile_query("[//stock and //market]")
        with pytest.raises(ValueError, match="path or a union"):
            engine.select_many([good, bad])
