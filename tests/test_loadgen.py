"""The open-loop load harness: determinism, open-loop property, typed
outcomes, differential agreement with the in-process oracle, collector
artifacts and the analysis gate.

The timing-sensitive tests (open-loop, shed) use deliberately coarse
margins: site delays of hundreds of milliseconds against schedule spans
of tens, so a pass/fail flip requires the scheduler to be off by an
order of magnitude, not a noisy CI beat.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from netfixtures import hard_deadline, leak_check

from repro.core.session import QuerySession
from repro.loadgen import (
    OUTCOMES,
    RUN_TABLE_COLUMNS,
    OpenLoopClient,
    build_baseline_entry,
    build_cluster,
    check_baseline_format,
    derive_seed,
    execute_run,
    execute_table,
    factor_deltas,
    gate_against_baseline,
    latency_percentiles_ms,
    load_run_table,
    plan_arrivals,
    plan_batches,
    plan_for_spec,
    quick_table,
    summarize_run,
)
from repro.loadgen.runtable import RunTable, default_table, spec_from_row
from repro.serving.cluster import ServingCluster


def tiny_table(**overrides) -> RunTable:
    """A one-run table small enough for unit tests that drive real load."""
    params = dict(
        requests=5, arrival_rates=(80.0,), topologies=("star",), coordinators=(1,)
    )
    params.update(overrides)
    return quick_table(**params)


# ---------------------------------------------------------------------------
# Run table: factorial structure, stable ids, deterministic seeds
# ---------------------------------------------------------------------------


def test_run_table_is_the_declared_factorial():
    table = quick_table()
    specs = list(table.specs())
    assert len(specs) == len(table) == 2 * 1 * 1 * 1 * 2 * 1 * 2 * 1
    assert len({spec.run_id for spec in specs}) == len(specs)
    # Ids encode every factor level (including the coordinator pool).
    assert "star-f3-parbox-inline-c1-b2-r30-poisson-rep0" in {s.run_id for s in specs}
    assert "star-f3-parbox-inline-c2-b2-r30-poisson-rep0" in {s.run_id for s in specs}
    # Default scale covers every axis of the ROADMAP factorial.
    default = default_table()
    assert len(default) == 2 * 2 * 2 * 2 * 2 * 2 * 1 * 1
    assert {spec.executor for spec in default.specs()} == {"inline", "process"}
    assert {spec.coordinators for spec in default.specs()} == {1, 2}


def test_run_table_rejects_unknown_levels():
    with pytest.raises(ValueError):
        quick_table(topologies=("moebius",))
    with pytest.raises(ValueError):
        quick_table(executors=("serial",))  # in-process executors don't apply
    with pytest.raises(ValueError):
        quick_table(arrival="closed-loop")
    with pytest.raises(ValueError):
        quick_table(arrival_rates=(0.0,))
    with pytest.raises(ValueError):
        quick_table(coordinators=(0,))


def test_same_run_id_plans_identical_schedules_and_query_mix():
    """The determinism satellite: seeds thread from the run table, so two
    executions of one run id plan byte-identical request sequences."""
    first = {spec.run_id: spec for spec in quick_table().specs()}
    second = {spec.run_id: spec for spec in quick_table().specs()}
    assert first.keys() == second.keys()
    for run_id, spec in first.items():
        twin = second[run_id]
        assert spec.seed == twin.seed == derive_seed(run_id, 7)
        schedule_a, batches_a = plan_for_spec(spec)
        schedule_b, batches_b = plan_for_spec(twin)
        assert schedule_a == schedule_b  # arrival schedule equality
        assert batches_a == batches_b  # query-mix equality
    # Different run ids get different seeds (CRC32 spreads them).
    seeds = {spec.seed for spec in first.values()}
    assert len(seeds) == len(first)


def test_arrival_plans_shapes():
    fixed = plan_arrivals(8, 40.0, "fixed", seed=3)
    assert len(fixed) == 8 and fixed[0] == 0.0
    assert all(b - a == pytest.approx(1 / 40.0) for a, b in zip(fixed, fixed[1:]))
    poisson = plan_arrivals(200, 40.0, "poisson", seed=3)
    assert len(poisson) == 200 and poisson[0] == 0.0
    assert all(b >= a for a, b in zip(poisson, poisson[1:]))
    # Mean gap converges on 1/rate (deterministic draw, generous margin).
    mean_gap = poisson[-1] / (len(poisson) - 1)
    assert 0.5 / 40.0 < mean_gap < 2.0 / 40.0
    with pytest.raises(ValueError):
        plan_arrivals(5, 10.0, "uniform")


def test_batches_draw_from_the_subscription_pool():
    batches = plan_batches(6, 3, seed=11)
    assert len(batches) == 6 and all(len(batch) == 3 for batch in batches)
    assert batches == plan_batches(6, 3, seed=11)
    assert batches != plan_batches(6, 3, seed=12)


def test_spec_row_round_trip():
    spec = next(iter(quick_table().specs()))
    row = summarize_run(spec, [])
    # summarize_run counts observed records in "requests"; restore the
    # planned count before rebuilding the spec.
    row["requests"] = spec.requests
    assert spec_from_row(row) == spec


# ---------------------------------------------------------------------------
# The open-loop property: arrivals are schedule-driven
# ---------------------------------------------------------------------------


def test_arrivals_are_schedule_driven_not_response_driven():
    """Slow responses must not slow the arrival sequence.

    Six requests arrive 50ms apart while every site takes 400ms to
    answer: a closed-loop client would need >= 2.4s to *send* them all;
    the open-loop client must dispatch the whole schedule in ~0.25s
    while the first response is still in flight.
    """
    spec = next(
        iter(tiny_table(requests=6, arrival_rates=(20.0,), arrival="fixed").specs())
    )
    schedule, batches = plan_for_spec(spec)
    with hard_deadline(60), leak_check() as clusters:
        with ServingCluster(build_cluster(spec), max_inflight=8, max_queue=8) as tier:
            clusters.append(tier)
            tier.set_site_delay(0.4)
            with OpenLoopClient(tier.gateway.host, tier.gateway.port) as load:
                records = load.run(schedule, batches)
    assert [record.status for record in records] == ["ok"] * 6
    # Every response was slow...
    assert all(record.latency_s >= 0.35 for record in records)
    # ...yet every dispatch stayed on its scheduled time: the last send
    # happens before the *first* response can have arrived.
    assert all(record.lag_s < 0.3 for record in records)
    last_send = max(record.sent_s for record in records)
    assert last_send < 0.35, (
        f"arrival sequence stretched to {last_send:.2f}s; "
        "a closed-loop client would need >2.4s"
    )


# ---------------------------------------------------------------------------
# Shed sanity: typed outcomes under overload, never exceptions or hangs
# ---------------------------------------------------------------------------


def test_overload_sheds_are_typed_and_excluded_from_percentiles():
    """Drive arrivals past max_inflight+max_queue: the harness must
    record typed shed outcomes (no exceptions, no hang) and keep shed
    requests out of the latency percentiles."""
    spec = next(iter(tiny_table(requests=10, arrival_rates=(200.0,)).specs()))
    schedule, batches = plan_for_spec(spec)
    with hard_deadline(120):
        with ServingCluster(build_cluster(spec), max_inflight=1, max_queue=0) as tier:
            tier.set_site_delay(0.5)
            with OpenLoopClient(
                tier.gateway.host, tier.gateway.port, timeout=30.0
            ) as load:
                records = load.run(schedule, batches)
    assert len(records) == 10
    assert all(record.status in OUTCOMES for record in records)
    statuses = {record.status for record in records}
    assert "shed" in statuses, f"no sheds at 200 req/s over a 2/s server: {statuses}"
    assert "error" not in statuses and "unavailable" not in statuses
    served = [record for record in records if record.served]
    sheds = [record for record in records if record.status == "shed"]
    assert served and sheds
    # Sheds return in microseconds; served requests took >= the site
    # delay.  If sheds leaked into the percentile estimate, p50 would
    # collapse below the service floor (sub-millisecond).
    row = summarize_run(spec, records)
    assert row["shed"] == len(sheds) and row["shed_rate"] == pytest.approx(
        len(sheds) / 10, abs=1e-3
    )
    assert row["p50_ms"] is not None and row["p50_ms"] >= 200.0
    assert row["bytes_on_wire"] == sum(record.ledger_bytes for record in served)
    # All-shed runs report no percentiles rather than garbage.
    all_shed = summarize_run(spec, sheds)
    assert all_shed["p50_ms"] is None and all_shed["throughput_rps"] == 0.0


# ---------------------------------------------------------------------------
# Differential: the harness's answers vs the in-process oracle
# ---------------------------------------------------------------------------


def test_quick_table_answers_match_in_process_oracle():
    """Every request the networked harness served must answer bitwise
    like the same batch evaluated in process on the same cluster."""
    table = quick_table(requests=4)
    with hard_deadline(300), leak_check() as clusters:
        for spec in table.specs():
            schedule, batches = plan_for_spec(spec)
            cluster = build_cluster(spec)
            with ServingCluster(
                cluster, default_engine=spec.engine, coordinators=spec.coordinators
            ) as tier:
                clusters.append(tier)
                with OpenLoopClient(
                    tier.gateway.host, tier.gateway.port, engine=spec.engine
                ) as load:
                    records = load.run(schedule, batches)
            assert [record.status for record in records] == ["ok"] * spec.requests
            with QuerySession(cluster, engine=spec.engine) as session:
                for record, batch in zip(records, batches):
                    expected = session.evaluate_batch(list(batch))
                    assert record.answers == tuple(expected.answers), (
                        f"{spec.run_id} request {record.index} diverged from oracle"
                    )
                    assert record.ledger_bytes == expected.metrics.bytes_total


# ---------------------------------------------------------------------------
# Collector: artifacts + aggregate CSV
# ---------------------------------------------------------------------------


def test_execute_run_writes_raw_artifacts(tmp_path):
    spec = next(iter(tiny_table().specs()))
    with hard_deadline(120):
        row = execute_run(spec, tmp_path, trace_every=2)
    run_dir = tmp_path / spec.run_id
    lines = (run_dir / "requests.jsonl").read_text().splitlines()
    assert len(lines) == spec.requests
    parsed = [json.loads(line) for line in lines]
    assert [record["index"] for record in parsed] == list(range(spec.requests))
    assert all(
        {"scheduled_s", "sent_s", "latency_s", "status", "lag_s"} <= record.keys()
        for record in parsed
    )
    before = json.loads((run_dir / "metrics_before.json").read_text())
    after = json.loads((run_dir / "metrics_after.json").read_text())
    served = lambda snap: sum(  # noqa: E731 - tiny local accessor
        snap["gateway_requests_total"]["values"].values()
    )
    assert served(after) - served(before) == spec.requests
    spans = json.loads((run_dir / "spans.json").read_text())
    assert spans["spans"], "trace_every=2 must sample span trees"
    assert row["requests"] == spec.requests


def test_execute_run_fills_per_coordinator_columns(tmp_path):
    """A two-coordinator run attributes its served requests to pool
    members by name, straight from the gateway's own metric deltas."""
    spec = next(iter(tiny_table(coordinators=(2,)).specs()))
    assert spec.coordinators == 2 and "-c2-" in spec.run_id
    with hard_deadline(120):
        row = execute_run(spec, tmp_path, trace_every=0)
    handled = {
        cell.split("=")[0]: float(cell.split("=")[1])
        for cell in str(row["coordinator_requests"]).split(";")
        if cell
    }
    assert handled and set(handled) <= {"c0", "c1"}
    # Every served request is attributed to exactly one coordinator.
    assert sum(handled.values()) == row["ok"] + row["retried"]
    for cell in str(row["coordinator_rps"]).split(";"):
        if cell:
            name, _, rate = cell.partition("=")
            assert name in {"c0", "c1"} and float(rate) > 0


def test_execute_table_writes_aggregate_csv(tmp_path):
    table = tiny_table(requests=3)
    with hard_deadline(120):
        rows = execute_table(table, tmp_path, trace_every=0)
    path = tmp_path / "run_table.csv"
    assert path.exists()
    header = path.read_text().splitlines()[0]
    assert header == ",".join(RUN_TABLE_COLUMNS)
    loaded = load_run_table(path)
    assert [row["run_id"] for row in loaded] == [row["run_id"] for row in rows]
    for row in loaded:
        assert row["requests"] == 3
        assert isinstance(row["bytes_on_wire"], int)
        assert row["throughput_rps"] > 0


def test_latency_percentiles_use_obs_histogram():
    estimates = latency_percentiles_ms([0.004] * 50 + [0.2] * 50)
    # Interpolated within the obs histogram's buckets: p50 near the
    # 4ms-observation bucket, p99 in the 200ms one.
    assert estimates[0.5] <= 10.0
    assert 100.0 <= estimates[0.99] <= 250.0
    empty = latency_percentiles_ms([])
    assert empty == {0.5: None, 0.95: None, 0.99: None}


# ---------------------------------------------------------------------------
# Analysis: deltas and the regression gate (synthetic rows, no sockets)
# ---------------------------------------------------------------------------


def synthetic_rows():
    rows = []
    for spec in quick_table().specs():
        rows.append(
            {
                **summarize_run(spec, []),
                "requests": 10,
                "ok": 10,
                "throughput_rps": 50.0 + 10 * (spec.arrival_rate == 60.0),
                "p50_ms": 5.0,
                "p95_ms": 20.0,
                "p99_ms": 30.0,
                "shed_rate": 0.0,
                "bytes_on_wire": 1000 + spec.fragments,
                "duration_s": 1.0,
            }
        )
    return rows


def test_factor_deltas_only_cover_varying_factors():
    deltas = factor_deltas(synthetic_rows())
    # The quick table's axes -- now including the coordinator pool size.
    assert set(deltas) == {"topology", "coordinators", "arrival_rate"}
    assert deltas["arrival_rate"]["60.0"]["throughput_rps"] == 60.0
    assert deltas["arrival_rate"]["30.0"]["throughput_rps"] == 50.0
    assert deltas["topology"]["star"]["runs"] == 4
    assert deltas["coordinators"]["1"]["runs"] == 4
    assert deltas["coordinators"]["2"]["runs"] == 4


def test_gate_passes_against_own_baseline_and_catches_regressions():
    rows = synthetic_rows()
    entry = build_baseline_entry(rows, "quick")
    assert check_baseline_format({"quick": entry}) == []
    assert gate_against_baseline(rows, entry) == []

    slow = [dict(row, p95_ms=row["p95_ms"] * 10) for row in rows]
    assert any("p95" in failure for failure in gate_against_baseline(slow, entry))

    drifted = [dict(row, bytes_on_wire=row["bytes_on_wire"] + 1) for row in rows]
    assert any("bytes_on_wire" in f for f in gate_against_baseline(drifted, entry))

    broken = [dict(row, errors=2, ok=row["ok"] - 2) for row in rows]
    assert any("error" in f for f in gate_against_baseline(broken, entry))

    unaccounted = [dict(row, ok=row["ok"] - 1) for row in rows]
    assert any("typed outcomes" in f for f in gate_against_baseline(unaccounted, entry))

    renamed = [dict(row, run_id=row["run_id"] + "-x") for row in rows]
    assert any("run-id set" in f for f in gate_against_baseline(renamed, entry))


def test_check_baseline_format_rejects_mangled_documents():
    assert check_baseline_format([]) != []
    assert check_baseline_format({}) != []
    entry = build_baseline_entry(synthetic_rows(), "quick")
    broken = json.loads(json.dumps({"quick": entry}))
    del broken["quick"]["runs"][next(iter(broken["quick"]["runs"]))]["bytes_on_wire"]
    assert any("bytes_on_wire" in p for p in check_baseline_format(broken))
    mislabeled = json.loads(json.dumps({"quick": entry}))
    mislabeled["quick"]["scale"] = "default"
    assert any("must equal its key" in p for p in check_baseline_format(mislabeled))


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_loadtest_quick_and_analyze_only(tmp_path, monkeypatch, capsys):
    from repro import cli
    import repro.loadgen as loadgen

    monkeypatch.setattr(
        loadgen, "table_for_scale", lambda scale, **kw: tiny_table(requests=3)
    )
    out = tmp_path / "lt"
    baseline = tmp_path / "BENCH_loadtest.json"
    with hard_deadline(120):
        assert cli.main(["loadtest", "--quick", "--out", str(out)]) == 0
    assert (out / "run_table.csv").exists()
    # Build a baseline from the collected rows, then gate analyze-only.
    rows = load_run_table(out / "run_table.csv")
    baseline.write_text(json.dumps({"quick": build_baseline_entry(rows, "quick")}))
    assert (
        cli.main(
            ["loadtest", "--analyze-only", "--out", str(out), "--baseline", str(baseline)]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "[PASS] regression gate" in captured.out
    # Missing run table in analyze-only mode is a usage error, not a crash.
    assert cli.main(["loadtest", "--analyze-only", "--out", str(tmp_path / "no")]) == 2
