"""QuerySession-over-the-network coverage: timeouts, retries, leaks.

The retry contract, verified against a *single-site* topology so the
dispatch counters are exact: a slow site hits the per-attempt deadline,
is retried exactly once, and a second failure surfaces as the typed
:class:`~repro.serving.protocol.SiteUnavailable` -- never a hang.  The
tier must then recover without a restart once the site heals, and the
whole exercise must leak neither sockets nor asyncio tasks.
"""

import random

import pytest

from netfixtures import hard_deadline, leak_check, open_fds
from repro.core.session import QuerySession
from repro.distsim import Cluster
from repro.fragments import fragment_at
from repro.serving import ServingCluster, SiteUnavailable, parse_net_spec
from test_properties import build_random_tree, valid_random_query


def single_site_topology(seed: int):
    """A one-site cluster: every batch is exactly one site job."""
    rng = random.Random(seed)
    tree = build_random_tree(rng)
    ftree = fragment_at(tree, [])  # no cuts: one fragment
    from repro.fragments import Placement

    assignment = {fid: "S0" for fid in ftree.iter_depth_first()}
    cluster = Cluster(ftree, Placement(assignment))
    queries = [valid_random_query(rng) for _ in range(3)]
    return cluster, queries


def the_site(serving) -> object:
    (servers,) = serving.sites.values()
    return servers[0]


# ---------------------------------------------------------------------------
# Deadline -> retry exactly once -> typed SiteUnavailable
# ---------------------------------------------------------------------------


def test_slow_site_retried_exactly_once_then_site_unavailable():
    cluster, queries = single_site_topology(101)
    with hard_deadline(60), ServingCluster(cluster, site_timeout=0.3) as serving:
        # Healthy warm-up so fragment pushes are out of the picture.
        with serving.session() as session:
            baseline_answers = session.evaluate_batch(queries).answers
        the_site(serving).delay_seconds = 2.0  # far beyond the deadline
        before = dict(serving.gateway.coordinator.stats)
        with serving.session() as session:
            with pytest.raises(SiteUnavailable):
                session.evaluate_batch(queries)
        stats = serving.gateway.coordinator.stats
        assert stats["attempts"] - before.get("attempts", 0) == 2
        assert stats["retries"] - before.get("retries", 0) == 1
        assert stats["failures"] - before.get("failures", 0) == 1
        # Heal the site: the same tier answers again, identically.
        the_site(serving).delay_seconds = 0.0
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == baseline_answers


def test_slow_site_within_deadline_is_not_retried():
    cluster, queries = single_site_topology(103)
    with hard_deadline(60), ServingCluster(cluster, site_timeout=5.0) as serving:
        the_site(serving).delay_seconds = 0.05
        with serving.session() as session:
            session.evaluate_batch(queries)
        assert serving.gateway.coordinator.stats["retries"] == 0
        assert serving.gateway.coordinator.stats["failures"] == 0


def test_dead_site_is_typed_failure_not_hang():
    """A site that is *gone* (connection refused) fails both attempts
    quickly and typed -- the no-hang half of the retry contract."""
    cluster, queries = single_site_topology(107)
    with hard_deadline(60), ServingCluster(cluster, site_timeout=1.0) as serving:
        with serving.session() as session:
            session.evaluate_batch(queries)
        serving.kill_site("S0")
        with serving.session() as session:
            with pytest.raises(SiteUnavailable):
                session.evaluate_batch(queries)


# ---------------------------------------------------------------------------
# Session transport behaviour
# ---------------------------------------------------------------------------


def test_session_reconnects_after_transport_drop():
    cluster, queries = single_site_topology(109)
    with hard_deadline(60), ServingCluster(cluster) as serving:
        with serving.session() as session:
            first = session.evaluate_batch(queries).answers
            # Sever the client's transport behind the engine's back; the
            # next call must reconnect, not fail on a stale socket.
            session.engine._client.close()
            assert session.evaluate_batch(queries).answers == first


def test_one_session_many_batches_one_connection():
    cluster, queries = single_site_topology(113)
    with hard_deadline(60), ServingCluster(cluster) as serving:
        with serving.session() as session:
            for _ in range(5):
                session.evaluate_batch(queries)
            client = session.engine._client
            assert client is not None and not client.closed
        assert the_site(serving).requests_served >= 5


def test_parse_net_spec_forms():
    assert parse_net_spec("net:127.0.0.1:9000") == ("127.0.0.1", 9000, "")
    assert parse_net_spec("net:gateway.local:81/lazy") == ("gateway.local", 81, "lazy")
    assert parse_net_spec("127.0.0.1:9000/hybrid") == ("127.0.0.1", 9000, "hybrid")
    for bad in ("net:9000", "net:host:notaport", "net::"):
        with pytest.raises(ValueError):
            parse_net_spec(bad)


# ---------------------------------------------------------------------------
# No leaked sockets, no orphan tasks
# ---------------------------------------------------------------------------


def test_failed_and_healed_runs_leak_nothing():
    cluster, queries = single_site_topology(127)
    with hard_deadline(120), leak_check() as tracked:
        serving = ServingCluster(cluster, site_timeout=0.3)
        with serving:
            tracked.append(serving)
            with serving.session() as session:
                session.evaluate_batch(queries)
            the_site(serving).delay_seconds = 2.0
            with serving.session() as session:
                with pytest.raises(SiteUnavailable):
                    session.evaluate_batch(queries)
            the_site(serving).delay_seconds = 0.0
            with serving.session() as session:
                session.evaluate_batch(queries)


def test_abandoned_client_connections_do_not_leak():
    """Clients that vanish without closing must not pin gateway FDs."""
    cluster, queries = single_site_topology(131)
    with hard_deadline(120), ServingCluster(cluster) as serving:
        # Warm up first: the initial query opens the *persistent*
        # coordinator->site link, which is steady state, not a leak.
        with serving.client() as warmup:
            warmup.query(tuple(queries))
        baseline = open_fds()
        for _ in range(5):
            client = serving.client()
            client.query(tuple(queries))
            client._sock.close()  # rude disconnect: no shutdown handshake
            client._sock = None
        import gc
        import time

        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            gc.collect()
            if len(open_fds()) <= len(baseline):
                break
            time.sleep(0.05)
        assert len(open_fds()) <= len(baseline)
