"""Property-based tests on generated XMark documents.

These close the loop between the generator and the rest of the stack:
whatever the generator produces must round-trip through the serializer,
fragment/stitch cleanly at any granularity, and evaluate consistently
across engines.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import ParBoXEngine, evaluate_tree
from repro.distsim import Cluster
from repro.fragments import fragment_balanced
from repro.workloads.queries import QUERY_SIZES, query_of_size
from repro.workloads.xmark import generate_xmark_site
from repro.xmltree import parse_xml, serialize


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000), mb=st.sampled_from([0.2, 0.5, 1.0]))
def test_serialize_parse_round_trip(seed, mb):
    tree = generate_xmark_site(mb, seed=seed, nodes_per_mb=60)
    assert parse_xml(serialize(tree)).structurally_equal(tree)
    assert parse_xml(serialize(tree, indent=2)).structurally_equal(tree)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    fragments=st.integers(min_value=1, max_value=8),
)
def test_fragment_stitch_round_trip(seed, fragments):
    tree = generate_xmark_site(0.6, seed=seed, nodes_per_mb=60)
    ftree = fragment_balanced(tree, fragments)
    assert ftree.stitch().structurally_equal(tree)
    assert ftree.total_size() == tree.size()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    fragments=st.integers(min_value=2, max_value=6),
    size=st.sampled_from(QUERY_SIZES),
)
def test_parbox_matches_oracle_on_generated_docs(seed, fragments, size):
    tree = generate_xmark_site(0.6, seed=seed, nodes_per_mb=60)
    cluster = Cluster.one_site_per_fragment(fragment_balanced(tree, fragments))
    qlist = query_of_size(size)
    oracle, _ = evaluate_tree(tree, qlist)
    assert ParBoXEngine(cluster).evaluate(qlist).answer == oracle


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_generator_structural_invariants(seed):
    tree = generate_xmark_site(0.5, seed=seed, nodes_per_mb=80)
    root = tree.root
    assert root.label == "site"
    top = [child.label for child in root.children]
    assert top == ["categories", "regions", "people", "open_auctions"]
    # Every bidder has a date and an increase; every person an address.
    for bidder in root.find_by_label("bidder"):
        labels = [c.label for c in bidder.children]
        assert "date" in labels and "increase" in labels
    for person in root.find_by_label("person"):
        assert person.find_by_label("address")
    # No virtual nodes come out of the generator.
    assert all(not n.is_virtual for n in tree.iter_nodes())
