"""Edge cases shared across engines."""

import pytest

from repro.core import ALL_ENGINES, ENGINE_REGISTRY, ParBoXEngine
from repro.distsim import Cluster
from repro.fragments import Fragment, FragmentedTree, Placement
from repro.workloads.portfolio import build_portfolio_cluster
from repro.xmltree import XMLNode, element
from repro.xpath import compile_query


def single_node_cluster() -> Cluster:
    tree = FragmentedTree({"F0": Fragment("F0", element("only"))}, "F0")
    return Cluster(tree, Placement({"F0": "S0"}))


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
class TestDegenerateClusters:
    def test_single_node_document(self, engine_cls):
        cluster = single_node_cluster()
        assert engine_cls(cluster).evaluate(compile_query("[label() = only]")).answer
        assert not engine_cls(cluster).evaluate(compile_query("[*]")).answer

    def test_epsilon_query(self, engine_cls):
        cluster = single_node_cluster()
        assert engine_cls(cluster).evaluate(compile_query("[.]")).answer is True

    def test_no_network_traffic_on_one_site(self, engine_cls):
        cluster = single_node_cluster()
        result = engine_cls(cluster).evaluate(compile_query("[//a]"))
        assert result.metrics.bytes_total == 0
        assert result.metrics.messages == 0

    def test_star_of_empty_ish_fragments(self, engine_cls):
        # Fragments of a single node each, all leaves of the root.
        root = element("r")
        fragments = {"F0": Fragment("F0", root)}
        for index in range(1, 5):
            root.add_child(XMLNode.virtual(f"F{index}"))
            fragments[f"F{index}"] = Fragment(f"F{index}", element("leaf"))
        cluster = Cluster.one_site_per_fragment(FragmentedTree(fragments, "F0"))
        result = engine_cls(cluster).evaluate(compile_query("[leaf]"))
        assert result.answer is True


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
class TestDeterminism:
    def test_repeated_evaluation_stable(self, engine_cls):
        cluster = build_portfolio_cluster()
        qlist = compile_query('[//code = "GOOG"]')
        engine = engine_cls(cluster)
        first = engine.evaluate(qlist)
        second = engine.evaluate(qlist)
        assert first.answer == second.answer
        assert first.metrics.bytes_total == second.metrics.bytes_total
        assert dict(first.metrics.visits) == dict(second.metrics.visits)

    def test_engine_reuse_across_queries(self, engine_cls):
        cluster = build_portfolio_cluster()
        engine = engine_cls(cluster)
        assert engine.evaluate(compile_query("[//stock]")).answer is True
        assert engine.evaluate(compile_query("[//zzz]")).answer is False


class TestRegistryLookup:
    def test_aliases_resolve(self):
        assert ENGINE_REGISTRY["parbox"] is ParBoXEngine
        assert ENGINE_REGISTRY["parbox"] is ENGINE_REGISTRY["ParBoX".lower()]
        for alias in ("hybrid", "fulldist", "lazy", "central", "distributed"):
            assert alias in ENGINE_REGISTRY

    def test_every_engine_named(self):
        names = {engine.name for engine in ALL_ENGINES}
        assert len(names) == len(ALL_ENGINES)


class TestBaseEngine:
    def test_abstract_evaluate(self):
        from repro.core.engine import Engine

        cluster = single_node_cluster()
        with pytest.raises(NotImplementedError):
            Engine(cluster).evaluate(compile_query("[//a]"))

    def test_result_carries_engine_name(self):
        cluster = single_node_cluster()
        for engine_cls in ALL_ENGINES:
            result = engine_cls(cluster).evaluate(compile_query("[//a]"))
            assert result.engine == engine_cls.name


class TestWideFlatDocuments:
    def test_thousands_of_siblings(self):
        root = element("r")
        for index in range(3000):
            root.add_child(XMLNode("leaf", text=str(index)))
        root.add_child(XMLNode("needle", text="x"))
        tree = FragmentedTree({"F0": Fragment("F0", root)}, "F0")
        cluster = Cluster(tree, Placement({"F0": "S0"}))
        assert ParBoXEngine(cluster).evaluate(compile_query("[//needle]")).answer
        assert ParBoXEngine(cluster).evaluate(compile_query('[leaf = "2999"]')).answer
