"""Tests for the workload generators and topology factories."""

import pytest

from repro.core import evaluate_tree
from repro.workloads import (
    FT3_SHAPE,
    QUERY_SIZES,
    bushy_ft3,
    chain_ft2,
    co_located,
    generate_xmark_site,
    query_of_size,
    seal_query,
    star_ft1,
)
from repro.workloads.portfolio import (
    PORTFOLIO_QUERIES,
    build_portfolio_cluster,
    build_portfolio_fragments,
    build_portfolio_tree,
)
from repro.workloads.topologies import ft3_sizes
from repro.xpath import compile_query


class TestXMarkGenerator:
    def test_deterministic(self):
        first = generate_xmark_site(1.0, seed=5)
        second = generate_xmark_site(1.0, seed=5)
        assert first.structurally_equal(second)

    def test_seed_changes_content(self):
        assert not generate_xmark_site(1.0, seed=5).structurally_equal(
            generate_xmark_site(1.0, seed=6)
        )

    def test_site_index_changes_content(self):
        assert not generate_xmark_site(1.0, seed=5, site_index=0).structurally_equal(
            generate_xmark_site(1.0, seed=5, site_index=1)
        )

    def test_size_scales(self):
        small = generate_xmark_site(1.0, seed=7, nodes_per_mb=200).size()
        large = generate_xmark_site(4.0, seed=7, nodes_per_mb=200).size()
        assert 3 * small < large < 5 * small

    def test_size_near_target(self):
        for mb, per_mb in ((1.0, 300), (2.5, 200)):
            size = generate_xmark_site(mb, seed=8, nodes_per_mb=per_mb).size()
            target = mb * per_mb
            assert 0.75 * target <= size <= 1.05 * target

    def test_xmark_vocabulary(self):
        tree = generate_xmark_site(1.0, seed=9)
        assert tree.root.label == "site"
        labels = {n.label for n in tree.iter_nodes()}
        for expected in ("regions", "people", "person", "open_auctions", "bidder", "item"):
            assert expected in labels


class TestQueryFactories:
    @pytest.mark.parametrize("size", QUERY_SIZES)
    def test_sizes_exact(self, size):
        assert len(query_of_size(size)) == size

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            query_of_size(99)

    def test_query_answers_deterministic_on_xmark(self):
        # The generator plants one increase-7 bid per document, pinning
        # the answers of all four benchmark queries regardless of seed.
        expected = {2: True, 8: True, 15: True, 23: False}
        for seed in (10, 11):
            tree = generate_xmark_site(3.0, seed=seed)
            for size in QUERY_SIZES:
                answer, _ = evaluate_tree(tree, query_of_size(size))
                assert answer is expected[size], f"|QList|={size}, seed={seed}"

    def test_seal_query_targets_single_fragment(self):
        cluster = chain_ft2(4, 1.0, seed=11)
        whole = cluster.fragmented_tree.stitch()
        for fid in ("F0", "F3"):
            answer, _ = evaluate_tree(whole, seal_query(fid))
            assert answer is True
        answer, _ = evaluate_tree(whole, seal_query("F99"))
        assert answer is False


class TestTopologies:
    def test_star_shape(self):
        cluster = star_ft1(5, 2.5, seed=12)
        st = cluster.source_tree()
        assert st.children_of("F0") == ["F1", "F2", "F3", "F4"]
        assert st.max_depth() == 1
        assert len(cluster.sites()) == 5

    def test_star_equal_sizes(self):
        cluster = star_ft1(5, 5.0, seed=13)
        sizes = [cluster.fragment(f"F{i}").size() for i in range(5)]
        assert max(sizes) <= 1.3 * min(sizes)

    def test_chain_shape(self):
        cluster = chain_ft2(6, 3.0, seed=14)
        st = cluster.source_tree()
        assert st.max_depth() == 5
        for depth in range(6):
            assert st.fragments_at_depth(depth) == [f"F{depth}"]

    def test_bushy_shape(self):
        cluster = bushy_ft3(0, seed=15, nodes_per_mb=12)
        st = cluster.source_tree()
        for fid, subs in FT3_SHAPE.items():
            assert tuple(st.children_of(fid)) == subs

    def test_ft3_sizes_sweep(self):
        first, last = ft3_sizes(0), ft3_sizes(9)
        assert sum(first.values()) == pytest.approx(45.0)
        assert sum(last.values()) == pytest.approx(160.0)
        assert last["F1"] == pytest.approx(50.0)
        assert first["F1"] == pytest.approx(10.0)
        with pytest.raises(ValueError):
            ft3_sizes(10)

    def test_co_located_single_site(self):
        cluster = co_located(6, 3.0, seed=16)
        assert len(cluster.sites()) == 1
        assert len(cluster.site("S0").fragment_ids()) == 6

    def test_total_size_constant_across_fragment_counts(self):
        # Experiment 1/4 keep cumulative data constant per iteration.
        sizes = [star_ft1(n, 4.0, seed=17).total_size() for n in (1, 2, 4, 8)]
        assert max(sizes) <= 1.25 * min(sizes)

    def test_invalid_fragment_count(self):
        with pytest.raises(ValueError):
            star_ft1(0, 1.0)
        with pytest.raises(ValueError):
            chain_ft2(0, 1.0)


class TestPortfolio:
    def test_tree_contents(self):
        tree = build_portfolio_tree()
        assert tree.root.label == "portofolio"
        codes = sorted(n.text for n in tree.root.find_by_label("code"))
        assert codes == ["AAPL", "GOOG", "GOOG", "HPQ", "IBM", "YHOO"]

    def test_fragmentation_matches_fig2(self):
        ftree = build_portfolio_fragments()
        assert ftree.parent_of("F2") == "F1"
        assert ftree.parent_of("F1") == "F0"
        assert ftree.parent_of("F3") == "F0"
        assert ftree.stitch().structurally_equal(build_portfolio_tree())

    def test_placement_matches_fig2b(self):
        cluster = build_portfolio_cluster()
        st = cluster.source_tree()
        assert st.fragments_of("S2") == ["F2", "F3"]
        assert st.coordinator_site == "S0"

    def test_paper_queries_compile_and_answer(self):
        tree = build_portfolio_tree()
        expected = {
            "goog_sell_376": False,
            "goog_not_yhoo": True,
            "yhoo": True,
            "merill": True,
        }
        for name, text in PORTFOLIO_QUERIES.items():
            answer, _ = evaluate_tree(tree, compile_query(text))
            assert answer == expected[name], name


class TestPubSubWorkload:
    def test_deterministic(self):
        from repro.workloads.pubsub import subscription_texts

        assert subscription_texts(20, seed=5) == subscription_texts(20, seed=5)
        assert subscription_texts(20, seed=5) != subscription_texts(20, seed=6)

    def test_every_text_compiles(self):
        from repro.workloads.pubsub import subscription_texts

        for text in set(subscription_texts(64, seed=1)):
            assert len(compile_query(text)) > 0

    def test_stream_has_popular_duplicates(self):
        from repro.workloads.pubsub import subscription_texts

        stream = subscription_texts(32, seed=0, pool_size=12)
        assert len(stream) == 32
        unique = len(set(stream))
        assert unique <= 12
        assert unique < len(stream)  # duplicates are the point

    def test_pool_size_bounds_uniques(self):
        from repro.workloads.pubsub import subscription_texts

        assert len(set(subscription_texts(100, seed=3, pool_size=4))) <= 4

    def test_invalid_args_rejected(self):
        import pytest

        from repro.workloads.pubsub import subscription_texts

        with pytest.raises(ValueError):
            subscription_texts(0)
        with pytest.raises(ValueError):
            subscription_texts(5, pool_size=0)

    def test_unattainable_pool_size_rejected_not_hung(self):
        import pytest

        from repro.workloads.pubsub import _distinct_pool_texts, subscription_texts

        attainable = len(_distinct_pool_texts())
        with pytest.raises(ValueError, match="distinct texts"):
            subscription_texts(5, pool_size=attainable + 1)
        # The exact attainable count still works.
        stream = subscription_texts(attainable * 2, seed=9, pool_size=attainable)
        assert len(set(stream)) <= attainable
