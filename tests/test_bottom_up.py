"""Unit tests for the partial-evaluation bottomUp procedure."""

import pytest

from repro.boolexpr import FALSE, TRUE, PaperAlgebra, Var
from repro.core import bottom_up, evaluate_tree
from repro.core.vectors import VectorTriplet
from repro.fragments import Fragment
from repro.xmltree import XMLNode, XMLTree, element
from repro.xpath import compile_query


def fragment_of(node, fragment_id="F"):
    return Fragment(fragment_id, node)


class TestGroundFragments:
    """Fragments without virtual nodes: V[last] equals the centralized answer."""

    @pytest.mark.parametrize(
        "query",
        [
            "[//stock]",
            '[//code/text() = "GOOG"]',
            "[broker/market]",
            "[not //zzz]",
            "[label() = portofolio]",
            "[* and not(//a or b)]",
        ],
    )
    def test_matches_centralized(self, query):
        root = element(
            "portofolio",
            element("broker", element("market", element("stock", element("code", text="GOOG")))),
        )
        qlist = compile_query(query)
        triplet, _ = bottom_up(fragment_of(root.deep_copy()), qlist)
        assert triplet.is_ground()
        oracle, _ = evaluate_tree(XMLTree(root), qlist)
        assert triplet.v[qlist.answer_index].evaluate({}) == oracle


class TestVectorSemantics:
    def test_cv_is_children_disjunction(self):
        # CV[label() = b] is true iff some direct child is labelled b.
        root = element("a", element("b"), element("c"))
        qlist = compile_query("[b]")  # entries: label-b, selfqual, child
        triplet, _ = bottom_up(fragment_of(root), qlist)
        label_index = next(i for i, e in enumerate(qlist) if e.op == "label")
        assert triplet.cv[label_index] is TRUE
        assert triplet.v[label_index] is FALSE  # the root is 'a'

    def test_dv_includes_self(self):
        root = element("b")
        qlist = compile_query("[b]")
        triplet, _ = bottom_up(fragment_of(root), qlist)
        label_index = next(i for i, e in enumerate(qlist) if e.op == "label")
        assert triplet.dv[label_index] is TRUE
        assert triplet.cv[label_index] is FALSE

    def test_dv_includes_deep_descendants(self):
        root = element("a", element("x", element("x", element("b"))))
        qlist = compile_query("[b]")
        triplet, _ = bottom_up(fragment_of(root), qlist)
        label_index = next(i for i, e in enumerate(qlist) if e.op == "label")
        assert triplet.dv[label_index] is TRUE


class TestVirtualNodes:
    def test_virtual_child_introduces_variables(self):
        root = element("a")
        root.add_child(XMLNode.virtual("F9"))
        qlist = compile_query("[//b]")
        triplet, _ = bottom_up(fragment_of(root), qlist)
        assert not triplet.is_ground()
        assert triplet.referenced_fragments() == {"F9"}
        # The answer //b at the root: DV of the label entry includes the
        # virtual node's DV variable.
        label_index = next(i for i, e in enumerate(qlist) if e.op == "label")
        assert Var("F9", "DV", label_index) in triplet.dv[label_index].variables()

    def test_two_virtual_children(self):
        root = element("a")
        root.add_child(XMLNode.virtual("L"))
        root.add_child(XMLNode.virtual("R"))
        qlist = compile_query("[//b]")
        triplet, _ = bottom_up(fragment_of(root), qlist)
        assert triplet.referenced_fragments() == {"L", "R"}

    def test_virtual_nodes_not_counted_as_work(self):
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F1"))
        qlist = compile_query("[//b]")
        _, stats = bottom_up(fragment_of(root), qlist)
        assert stats.nodes_visited == 2  # a and b, not the virtual leaf

    def test_true_short_circuits_variables(self):
        # If the local data already satisfies //b, the answer entry is
        # TRUE regardless of what the sub-fragment holds.
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F1"))
        qlist = compile_query("[//b]")
        triplet, _ = bottom_up(fragment_of(root), qlist)
        assert triplet.v[qlist.answer_index] is TRUE


class TestStatsAndAlgebra:
    def test_ops_counting(self):
        root = element("a", element("b"), element("c"))
        qlist = compile_query("[//b and c]")
        _, stats = bottom_up(fragment_of(root), qlist)
        assert stats.nodes_visited == 3
        assert stats.qlist_ops == 3 * len(qlist)

    def test_paper_algebra_same_semantics(self):
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F1"))
        qlist = compile_query("[//b or //c]")
        canonical, _ = bottom_up(fragment_of(root), qlist)
        paper, _ = bottom_up(fragment_of(root), qlist, algebra=PaperAlgebra())
        index = qlist.answer_index
        for env_value in (False, True):
            env = {var: env_value for var in paper.v[index].variables()}
            env_c = {var: env_value for var in canonical.v[index].variables()}
            assert paper.v[index].evaluate(env) == canonical.v[index].evaluate(env_c)

    def test_deep_fragment_no_recursion_error(self):
        current = root = XMLNode("n")
        for _ in range(5000):
            current = current.add_child(XMLNode("n"))
        current.add_child(XMLNode("b"))
        qlist = compile_query("[//b]")
        triplet, stats = bottom_up(fragment_of(root), qlist)
        assert triplet.v[qlist.answer_index] is TRUE
        assert stats.nodes_visited == 5002


class TestTripletObject:
    def test_wire_round_trip(self):
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F1"))
        qlist = compile_query("[//b and //c]")
        triplet, _ = bottom_up(fragment_of(root, "Fx"), qlist)
        restored = VectorTriplet.from_obj(triplet.to_obj())
        assert restored == triplet
        assert restored.wire_bytes() == triplet.wire_bytes()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorTriplet("F", [TRUE], [TRUE, FALSE], [TRUE])

    def test_binding_env(self):
        triplet = VectorTriplet("F", [TRUE, FALSE], [FALSE, FALSE], [TRUE, TRUE])
        env = triplet.binding_env()
        assert env[Var("F", "V", 0)] is TRUE
        assert env[Var("F", "DV", 1)] is TRUE
        assert len(env) == 6

    def test_substitute_to_ground(self):
        var = Var("K", "V", 0)
        triplet = VectorTriplet("F", [var], [var], [var])
        resolved = triplet.substitute({var: TRUE})
        assert resolved.is_ground()
        assert resolved.v[0] is TRUE
