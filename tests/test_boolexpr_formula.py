"""Unit tests for Boolean formulas and their canonicalization."""

import pytest

from repro.boolexpr import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    formula_from_obj,
    make_and,
    make_not,
    make_or,
)


@pytest.fixture
def variables():
    return Var("F1", "V", 0), Var("F1", "V", 1), Var("F2", "DV", 0)


class TestConstants:
    def test_singletons(self):
        assert TRUE.value is True
        assert FALSE.value is False

    def test_evaluate(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_repr(self):
        assert repr(TRUE) == "1"
        assert repr(FALSE) == "0"


class TestVar:
    def test_identity(self):
        assert Var("F1", "V", 3) == Var("F1", "V", 3)
        assert Var("F1", "V", 3) != Var("F1", "DV", 3)
        assert Var("F1", "V", 3) != Var("F2", "V", 3)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Var("F1", "X", 0)

    def test_repr_matches_paper_naming(self):
        # Paper: x8 / cx8 / dx8 for fragment F2, sub-query q8.
        assert repr(Var("F2", "V", 8)) == "F2.8"
        assert repr(Var("F2", "CV", 8)) == "cF2.8"
        assert repr(Var("F2", "DV", 8)) == "dF2.8"

    def test_evaluate_requires_binding(self, variables):
        x, _, _ = variables
        assert x.evaluate({x: True}) is True
        with pytest.raises(KeyError):
            x.evaluate({})


class TestNotConstructor:
    def test_constant_folding(self):
        assert make_not(TRUE) is FALSE
        assert make_not(FALSE) is TRUE

    def test_double_negation(self, variables):
        x, _, _ = variables
        assert make_not(make_not(x)) is x

    def test_wraps_variables(self, variables):
        x, _, _ = variables
        negated = make_not(x)
        assert isinstance(negated, Not)
        assert negated.child is x


class TestAndConstructor:
    def test_identity_and_absorbing(self, variables):
        x, _, _ = variables
        assert make_and(x, TRUE) is x
        assert make_and(x, FALSE) is FALSE
        assert make_and() is TRUE
        assert make_and(TRUE, TRUE) is TRUE

    def test_single_operand(self, variables):
        x, _, _ = variables
        assert make_and(x) is x

    def test_deduplication(self, variables):
        x, y, _ = variables
        assert make_and(x, x) == x
        assert make_and(x, y, x) == make_and(x, y)

    def test_flattening(self, variables):
        x, y, z = variables
        nested = make_and(make_and(x, y), z)
        assert isinstance(nested, And)
        assert len(nested.children) == 3

    def test_complement_absorption(self, variables):
        x, y, _ = variables
        assert make_and(x, make_not(x)) is FALSE
        assert make_and(x, y, make_not(y)) is FALSE

    def test_operand_order_canonical(self, variables):
        x, y, _ = variables
        assert make_and(x, y) == make_and(y, x)
        assert hash(make_and(x, y)) == hash(make_and(y, x))


class TestOrConstructor:
    def test_identity_and_absorbing(self, variables):
        x, _, _ = variables
        assert make_or(x, FALSE) is x
        assert make_or(x, TRUE) is TRUE
        assert make_or() is FALSE

    def test_flatten_dedup_order(self, variables):
        x, y, z = variables
        assert make_or(make_or(x, y), z) == make_or(z, y, x)
        assert make_or(x, x) == x

    def test_complement_absorption(self, variables):
        x, _, _ = variables
        assert make_or(x, make_not(x)) is TRUE

    def test_operators(self, variables):
        x, y, _ = variables
        assert (x | y) == make_or(x, y)
        assert (x & y) == make_and(x, y)
        assert (~x) == make_not(x)


class TestEvaluationAndSubstitution:
    def test_evaluate(self, variables):
        x, y, z = variables
        formula = (x & y) | ~z
        assert formula.evaluate({x: True, y: True, z: True}) is True
        assert formula.evaluate({x: False, y: True, z: True}) is False
        assert formula.evaluate({x: False, y: False, z: False}) is True

    def test_variables(self, variables):
        x, y, z = variables
        assert ((x & y) | ~z).variables() == {x, y, z}
        assert TRUE.variables() == frozenset()

    def test_is_ground(self, variables):
        x, _, _ = variables
        assert TRUE.is_ground()
        assert not x.is_ground()

    def test_substitute_partial(self, variables):
        x, y, _ = variables
        formula = x & y
        assert formula.substitute({x: TRUE}) is y
        assert formula.substitute({x: FALSE}) is FALSE

    def test_substitute_with_formula(self, variables):
        x, y, z = variables
        assert (x | z).substitute({x: y & z}) == (y & z) | z

    def test_substitute_simplifies_complements(self, variables):
        x, y, _ = variables
        formula = x | y
        assert formula.substitute({x: ~y}) is TRUE


class TestSizeAccounting:
    def test_sizes(self, variables):
        x, y, _ = variables
        assert TRUE.size() == 1
        assert x.size() == 1
        assert (~x).size() == 2
        assert (x & y).size() == 3

    def test_canonicalization_bounds_size(self, variables):
        x, _, _ = variables
        formula = FALSE
        for _ in range(50):
            formula = make_or(formula, x)
        assert formula is x  # 50 ors collapse to the single variable


class TestWireFormat:
    @pytest.mark.parametrize(
        "build",
        [
            lambda x, y, z: TRUE,
            lambda x, y, z: FALSE,
            lambda x, y, z: x,
            lambda x, y, z: ~x,
            lambda x, y, z: x & y,
            lambda x, y, z: (x & y) | ~z,
            lambda x, y, z: ~(x | (y & ~z)),
        ],
    )
    def test_round_trip(self, variables, build):
        formula = build(*variables)
        assert formula_from_obj(formula.to_obj()) == formula

    def test_malformed_objects_rejected(self):
        with pytest.raises(ValueError):
            formula_from_obj(["nope"])
        with pytest.raises(ValueError):
            formula_from_obj([])
        with pytest.raises(ValueError):
            formula_from_obj("string")
