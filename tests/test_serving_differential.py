"""Differential tests: networked serving tier vs the simulated-ledger oracle.

The serving tier must be *transparent*: running any servable engine
through real sockets and real processes may change timing, but never
answers and never the deterministic cost ledger the paper's experiments
are built on.  So for random topologies x engines x query batches we
assert the networked result is **bitwise identical** to the same engine
run in-process -- answers, per-site visit counters, message counts,
byte counters, node/qlist/segment work -- including while sites are
being killed and restarted under the batch.

Timing fields (``elapsed_seconds``, ``wall_seconds``,
``compute_seconds_total``, ``site_seconds``) fold in *measured* CPU
time and are inherently non-reproducible; they are deliberately not
part of the comparison.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from netfixtures import hard_deadline, leak_check
from repro.core.session import QuerySession
from repro.serving import SERVABLE_ENGINES, ServingCluster
from test_properties import (
    build_random_tree,
    random_fragmentation,
    random_placement,
    valid_random_query,
)

#: Engines the differential property runs against (hybrid is covered by
#: the fixed-topology test; it composes the other three).
DIFF_ENGINES = ("parbox", "fulldist", "lazy")

#: The ledger fields that must be bit-identical across transports.
DETERMINISTIC_FIELDS = (
    "visits",
    "messages",
    "bytes_total",
    "bytes_by_kind",
    "nodes_processed",
    "qlist_ops",
    "segment_ops",
)


def deterministic_ledger(metrics) -> dict:
    return {name: getattr(metrics, name) for name in DETERMINISTIC_FIELDS}


def random_topology(rng: random.Random):
    tree = build_random_tree(rng)
    return random_placement(rng, random_fragmentation(rng, tree))


def random_batch(rng: random.Random, size: int) -> list[str]:
    return [valid_random_query(rng) for _ in range(size)]


def assert_matches_oracle(cluster, serving, engine: str, queries) -> None:
    local = QuerySession(cluster, engine=engine)
    with serving.session(engine=engine) as remote:
        try:
            expected = local.evaluate_batch(queries)
            actual = remote.evaluate_batch(queries)
        finally:
            local.close()
    assert actual.answers == expected.answers
    assert deterministic_ledger(actual.metrics) == deterministic_ledger(
        expected.metrics
    )
    assert actual.details.get("transport") == "net"
    # The gateway reports which engine actually answered.
    assert actual.engine == expected.engine


# ---------------------------------------------------------------------------
# The core differential property
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_networked_engines_match_oracle_on_random_topologies(seed):
    rng = random.Random(seed)
    cluster = random_topology(rng)
    queries = random_batch(rng, rng.randint(1, 5))
    with hard_deadline(120):
        with ServingCluster(cluster) as serving:
            for engine in DIFF_ENGINES:
                assert_matches_oracle(cluster, serving, engine, queries)


def test_all_servable_engines_match_oracle_fixed_topology():
    """Every SERVABLE_ENGINES entry (including hybrid) on one topology."""
    rng = random.Random(7)
    cluster = random_topology(rng)
    queries = random_batch(rng, 6)
    with hard_deadline(120), leak_check() as clusters:
        with ServingCluster(cluster) as serving:
            clusters.append(serving)
            for engine in SERVABLE_ENGINES:
                assert_matches_oracle(cluster, serving, engine, queries)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_batches_match_under_duplicate_and_mixed_queries(seed):
    """Batches with repeated queries dedup identically on both paths."""
    rng = random.Random(seed)
    cluster = random_topology(rng)
    base = random_batch(rng, 3)
    queries = base + [base[0], base[-1]]
    with hard_deadline(120):
        with ServingCluster(cluster) as serving:
            assert_matches_oracle(cluster, serving, "parbox", queries)


# ---------------------------------------------------------------------------
# Faulted topologies: kill / restart / replica failover
# ---------------------------------------------------------------------------


def _non_root_site(cluster) -> str:
    sites = sorted(cluster.source_tree().sites())
    return sites[-1] if len(sites) > 1 else sites[0]


def test_kill_and_restart_mid_run_still_matches_oracle():
    """One site dies and comes back *empty* between batches; answers and
    ledger stay bit-identical (reconnect + fragment re-push heal it)."""
    rng = random.Random(23)
    cluster = None
    while cluster is None or len(cluster.source_tree().sites()) < 2:
        cluster = random_topology(rng)
    queries = random_batch(rng, 4)
    victim = _non_root_site(cluster)
    with hard_deadline(120):
        with ServingCluster(cluster, site_timeout=5.0) as serving:
            assert_matches_oracle(cluster, serving, "parbox", queries)
            serving.kill_site(victim)
            serving.restart_site(victim)
            for engine in DIFF_ENGINES:
                assert_matches_oracle(cluster, serving, engine, queries)
            assert serving.gateway.coordinator.stats["failures"] == 0


def test_replica_failover_when_primary_dies():
    """With replicas=2, killing the primary mid-session redirects work to
    the replica; the deterministic ledger is unchanged."""
    rng = random.Random(5)
    cluster = None
    while cluster is None or len(cluster.source_tree().sites()) < 2:
        cluster = random_topology(rng)
    queries = random_batch(rng, 4)
    victim = _non_root_site(cluster)
    with hard_deadline(120):
        with ServingCluster(cluster, replicas=2, site_timeout=5.0) as serving:
            assert_matches_oracle(cluster, serving, "parbox", queries)
            serving.kill_site(victim, replica=0)
            assert_matches_oracle(cluster, serving, "parbox", queries)
            stats = serving.gateway.coordinator.stats
            assert stats["retries"] >= 1, "failover should be visible as a retry"


def test_unknown_fragment_triggers_in_band_repush():
    """A site that forgot its fragments *without* dropping the connection
    (e.g. an operator flushed its cache) answers ``unknown-fragment``;
    the coordinator re-pushes on the same link and the query succeeds."""
    rng = random.Random(11)
    cluster = random_topology(rng)
    queries = random_batch(rng, 3)
    with hard_deadline(120):
        with ServingCluster(cluster) as serving:
            assert_matches_oracle(cluster, serving, "parbox", queries)
            # Flush every live server's resident fragments in place; TCP
            # connections stay up, so reconnect-repush cannot mask this.
            for servers in serving.sites.values():
                for server in servers:
                    server.fragments.clear()
            before = serving.gateway.coordinator.stats["repushes"]
            assert_matches_oracle(cluster, serving, "parbox", queries)
            after = serving.gateway.coordinator.stats["repushes"]
            assert after > before, "expected the in-band repush path to fire"


def test_stale_epoch_triggers_in_band_repush():
    """A site holding copies whose epochs predate an update (it missed
    an invalidation) answers ``stale-fragment``; the coordinator
    re-pushes the current copies on the same link and the query
    succeeds."""
    rng = random.Random(17)
    cluster = random_topology(rng)
    queries = random_batch(rng, 3)
    with hard_deadline(120):
        with ServingCluster(cluster) as serving:
            assert_matches_oracle(cluster, serving, "parbox", queries)
            # Bump every fragment's epoch without touching content --
            # exactly what the sites see when they miss an update's
            # invalidation: resident data present but content-addressed
            # to a dead epoch.
            for fragment_id in cluster.fragmented_tree.fragments:
                cluster.fragment(fragment_id).bump_epoch()
            before = serving.gateway.coordinator.stats["repushes"]
            assert_matches_oracle(cluster, serving, "parbox", queries)
            after = serving.gateway.coordinator.stats["repushes"]
            assert after > before, "expected the stale-fragment repush to fire"


# ---------------------------------------------------------------------------
# Process mode
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_smoke_boot_two_sites_as_processes():
    """Boot-two-sites smoke: real child processes, one differential pass."""
    rng = random.Random(3)
    cluster = None
    while cluster is None or len(cluster.source_tree().sites()) != 2:
        cluster = random_topology(rng)
    queries = random_batch(rng, 3)
    with hard_deadline(180):
        with ServingCluster(cluster, site_mode="process") as serving:
            assert len(serving.sites) == 2
            for servers in serving.sites.values():
                assert all(site.running for site in servers)
            assert_matches_oracle(cluster, serving, "parbox", queries)
