"""QuerySession: cached compilation, chunked batching, lifecycle."""

import pytest

from repro.core import ENGINE_REGISTRY, ParBoXEngine, QuerySession
from repro.workloads.portfolio import build_portfolio_cluster
from repro.xpath import compile_query

TEXTS = [
    "[//stock]",
    '[//code = "GOOG"]',
    "[//zzz]",
    "[//stock]",
    '[//broker[market]]',
    '[//code = "GOOG"]',
]


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


class TestEvaluate:
    def test_single_query_matches_engine(self, cluster):
        with QuerySession(cluster, engine="parbox") as session:
            result = session.evaluate("[//stock]")
        direct = ParBoXEngine(cluster).evaluate(compile_query("[//stock]"))
        assert result.answer == direct.answer
        assert result.metrics.bytes_total == direct.metrics.bytes_total
        assert dict(result.metrics.visits) == dict(direct.metrics.visits)

    def test_accepts_precompiled_qlists(self, cluster):
        with QuerySession(cluster) as session:
            result = session.evaluate(compile_query("[//stock]"))
        assert result.answer is True

    def test_empty_stream_rejected(self, cluster):
        with QuerySession(cluster) as session:
            with pytest.raises(ValueError, match="at least one query"):
                session.evaluate_many([])

    def test_unknown_engine_rejected(self, cluster):
        with pytest.raises(ValueError, match="unknown engine"):
            QuerySession(cluster, engine="warp-drive")

    def test_bad_batch_size_rejected(self, cluster):
        with pytest.raises(ValueError, match="batch_size"):
            QuerySession(cluster, batch_size=0)

    def test_bare_string_stream_rejected(self, cluster):
        with QuerySession(cluster) as session:
            with pytest.raises(TypeError, match="sequence of queries"):
                session.evaluate_many("[//stock]")

    def test_knobs_conflict_with_prebuilt_engine(self, cluster):
        engine = ParBoXEngine(cluster)
        with pytest.raises(ValueError, match="executor.*pre-built"):
            QuerySession(cluster, engine=engine, executor="threads")
        engine.close()


class TestBatching:
    def test_answers_match_sequential_order(self, cluster):
        with QuerySession(cluster, engine="parbox") as session:
            outcome = session.evaluate_many(TEXTS)
            sequential = [session.evaluate(text).answer for text in TEXTS]
        assert list(outcome.answers) == sequential
        assert len(outcome.per_query) == len(TEXTS)

    def test_one_batch_means_one_visit_per_site(self, cluster):
        with QuerySession(cluster, engine="parbox") as session:
            outcome = session.evaluate_many(TEXTS)
        assert len(outcome.batches) == 1
        assert outcome.batches[0].metrics.max_visits_per_site() == 1

    def test_batch_size_chunks_the_stream(self, cluster):
        with QuerySession(cluster, engine="parbox", batch_size=2) as session:
            outcome = session.evaluate_many(TEXTS)
        assert len(outcome.batches) == 3
        assert all(batch.details["batch_size"] == 2 for batch in outcome.batches)
        # Cost rows are re-indexed to the input stream, not the chunk.
        assert [cost.index for cost in outcome.per_query] == list(range(len(TEXTS)))
        assert [cost.answer for cost in outcome.per_query] == list(outcome.answers)
        # Aggregates sum over the chunks.
        assert outcome.bytes_total == sum(
            batch.metrics.bytes_total for batch in outcome.batches
        )
        assert outcome.visits_per_query == outcome.visits_total / len(TEXTS)
        assert outcome.messages_per_query == outcome.messages_total / len(TEXTS)

    def test_batched_traffic_beats_sequential(self, cluster):
        with QuerySession(cluster, engine="parbox") as session:
            batched = session.evaluate_many(TEXTS)
            sequential_bytes = sum(
                session.evaluate(text).metrics.bytes_total for text in TEXTS
            )
        assert batched.bytes_total < sequential_bytes

    def test_duplicates_deduplicated_in_plan(self, cluster):
        with QuerySession(cluster) as session:
            plan = session.plan(TEXTS)
        assert len(plan) == len(TEXTS)
        assert plan.unique_count == 4  # two texts repeat
        assert plan.duplicate_count() == 2

    def test_cache_survives_across_calls(self, cluster):
        with QuerySession(cluster, engine="parbox") as session:
            session.evaluate_many(TEXTS)
            first = session.cache_stats()
            session.evaluate_many(TEXTS)
            second = session.cache_stats()
        assert first["misses"] == 4
        assert second["misses"] == 4  # nothing recompiled on the second call
        assert second["hits"] == first["hits"] + len(TEXTS)

    @pytest.mark.parametrize("engine_name", sorted({"parbox", "fulldist", "lazy", "central", "distributed", "hybrid"}))
    def test_every_engine_name_resolves(self, cluster, engine_name):
        with QuerySession(cluster, engine=engine_name) as session:
            outcome = session.evaluate_many(["[//stock]", "[//zzz]"])
        assert list(outcome.answers) == [True, False]
        assert type(session.engine) is ENGINE_REGISTRY[engine_name]


class TestLifecycle:
    def test_session_owns_named_engine(self, cluster):
        session = QuerySession(cluster, engine="parbox", executor="threads")
        session.evaluate("[//stock]")
        assert session._owns_engine
        executor = session.engine.executor
        assert executor._pool is not None  # pool was exercised
        session.close()
        assert executor._pool is None  # session closed its engine's pool

    def test_prebuilt_engine_left_open(self, cluster):
        engine = ParBoXEngine(cluster, executor="threads")
        engine.evaluate(compile_query("[//stock]"))
        with QuerySession(cluster, engine=engine) as session:
            session.evaluate("[//stock]")
        # Session exit must not reap a pool it does not own.
        assert engine.executor._pool is not None
        engine.close()
        assert engine.executor._pool is None
