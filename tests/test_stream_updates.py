"""Tests for the typed update log (stream/updates.py)."""

import pytest

from repro.stream import (
    DelNode,
    InsNode,
    MergeFragment,
    Relabel,
    SplitFragment,
    UpdateError,
    apply_updates,
)
from repro.workloads.portfolio import build_portfolio_cluster


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


def _node(cluster, fragment_id, label):
    node = cluster.fragment(fragment_id).root.find_first(
        lambda n: not n.is_virtual and n.label == label
    )
    assert node is not None
    return node


class TestContentOps:
    def test_ins_node(self, cluster):
        root = cluster.fragment("F2").root
        before = cluster.fragment("F2").size()
        batch = apply_updates(
            cluster, [InsNode("F2", root.node_id, "code", text="TSLA")]
        )
        assert batch.dirty == ("F2",)
        assert not batch.structural
        assert cluster.fragment("F2").size() == before + 1
        assert root.children[-1].label == "code"
        assert root.children[-1].text == "TSLA"

    def test_ins_under_virtual_rejected(self, cluster):
        virtual = cluster.fragment("F0").virtual_nodes()[0]
        with pytest.raises(UpdateError):
            apply_updates(cluster, [InsNode("F0", virtual.node_id, "x")])

    def test_del_node(self, cluster):
        code = _node(cluster, "F2", "code")
        batch = apply_updates(cluster, [DelNode("F2", code.node_id)])
        assert batch.dirty == ("F2",)
        assert code.parent is None

    def test_del_fragment_root_rejected(self, cluster):
        root = cluster.fragment("F2").root
        with pytest.raises(UpdateError):
            apply_updates(cluster, [DelNode("F2", root.node_id)])

    def test_del_subtree_with_virtual_rejected(self, cluster):
        # F0's root subtree contains virtual leaves; find an inner node
        # that dominates one.
        virtual = cluster.fragment("F0").virtual_nodes()[0]
        carrier = virtual.parent
        if carrier is cluster.fragment("F0").root:
            carrier = virtual  # degenerate shape: delete the virtual itself
        with pytest.raises(UpdateError):
            apply_updates(cluster, [DelNode("F0", carrier.node_id)])

    def test_relabel(self, cluster):
        sell = _node(cluster, "F2", "sell")
        batch = apply_updates(
            cluster, [Relabel("F2", sell.node_id, label="ask", text="376")]
        )
        assert batch.dirty == ("F2",)
        assert sell.label == "ask" and sell.text == "376"

    def test_unknown_fragment(self, cluster):
        with pytest.raises(UpdateError):
            apply_updates(cluster, [Relabel("F9", 1, text="x")])

    def test_unknown_node(self, cluster):
        with pytest.raises(UpdateError):
            apply_updates(cluster, [Relabel("F2", 10**9, text="x")])


class TestStructuralOps:
    def test_split_then_merge_round_trip(self, cluster):
        stock = _node(cluster, "F1", "stock")
        before_ids = set(cluster.fragmented_tree.fragments)
        split = apply_updates(cluster, [SplitFragment("F1", stock.node_id)])
        (new_id,) = split.created
        assert split.structural
        assert set(split.dirty) == {"F1", new_id}
        assert new_id not in before_ids
        assert cluster.site_of(new_id) == cluster.site_of("F1")

        merged = apply_updates(cluster, [MergeFragment("F1", new_id)])
        assert merged.removed == (new_id,)
        assert merged.dirty == ("F1",)
        assert set(cluster.fragmented_tree.fragments) == before_ids

    def test_split_to_target_site(self, cluster):
        stock = _node(cluster, "F1", "stock")
        batch = apply_updates(
            cluster, [SplitFragment("F1", stock.node_id, target_site="S9")]
        )
        (new_id,) = batch.created
        assert cluster.site_of(new_id) == "S9"

    def test_merge_non_child_rejected(self, cluster):
        # F3 hangs off F0, not F1.
        with pytest.raises(UpdateError):
            apply_updates(cluster, [MergeFragment("F1", "F3")])

    def test_merge_unknown_parent_raises_update_error(self, cluster):
        # The documented contract: bad ops fail with UpdateError, never
        # a bare KeyError.
        with pytest.raises(UpdateError):
            apply_updates(cluster, [MergeFragment("F99", "F2")])

    def test_failed_batch_carries_partial_fold(self, cluster):
        root = cluster.fragment("F2").root
        good = InsNode("F2", root.node_id, "code", text="X")
        bad = DelNode("F2", 10**9)
        with pytest.raises(UpdateError) as excinfo:
            apply_updates(cluster, [good, bad])
        partial = excinfo.value.applied
        assert partial is not None
        assert partial.dirty == ("F2",)  # the good op already mutated F2
        assert len(partial.effects) == 1

    def test_batch_folds_created_then_removed(self, cluster):
        stock = _node(cluster, "F1", "stock")
        split = SplitFragment("F1", stock.node_id, new_fragment_id="FX")
        batch = apply_updates(cluster, [split, MergeFragment("F1", "FX")])
        # Created and destroyed inside one batch: neither survives the fold.
        assert batch.created == ()
        assert batch.removed == ()
        assert batch.dirty == ("F1",)

    def test_fresh_ids_are_deterministic(self):
        # Two identical clusters split identically must name the new
        # fragment identically -- whatever else the process did before.
        ids = []
        for _ in range(2):
            cluster = build_portfolio_cluster()
            stock = _node(cluster, "F1", "stock")
            batch = apply_updates(cluster, [SplitFragment("F1", stock.node_id)])
            ids.append(batch.created[0])
        assert ids[0] == ids[1]


class TestBatchFold:
    def test_dirty_order_is_first_touch(self, cluster):
        f2 = cluster.fragment("F2").root
        f1 = cluster.fragment("F1").root
        batch = apply_updates(
            cluster,
            [
                InsNode("F2", f2.node_id, "a"),
                InsNode("F1", f1.node_id, "b"),
                InsNode("F2", f2.node_id, "c"),
            ],
        )
        assert batch.dirty == ("F2", "F1")
        assert len(batch) == 3

    def test_describe_is_human_readable(self, cluster):
        root = cluster.fragment("F2").root
        ops = [
            InsNode("F2", root.node_id, "code", text="X"),
            Relabel("F2", root.node_id, text="y"),
            DelNode("F2", root.children[0].node_id),
        ]
        for op in ops:
            assert "F2" in op.describe()
