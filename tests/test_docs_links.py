"""No broken intra-repo links in the documentation suite.

Every relative markdown link (``[text](path)``) and every backticked
repo path mentioned in the top-level docs must point at something that
exists.  External URLs and pure anchors are out of scope (CI has no
network); what this guards is the common rot: a file gets renamed and
the README keeps pointing at the old name.  The CI docs job runs this
module together with the example smoke tests.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: PR machinery, not documentation: these quote external repos and
#: issue text verbatim, so their "paths" are not ours to check.
_EXCLUDED = {"SNIPPETS.md", "ISSUE.md", "CHANGES.md", "PAPERS.md", "PAPER.md"}

#: The documentation suite under link-check.
DOC_FILES = sorted(
    path
    for path in list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
    if path.name not in _EXCLUDED
)

#: Roots a backticked path may be relative to (docs shorthand `core/...`
#: means `src/repro/core/...`).
_PATH_ROOTS = (REPO, REPO / "src" / "repro", REPO / "src")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Backticked repo-relative paths like `docs/COOKBOOK.md` or
#: `examples/quickstart.py` (single path component chains ending in a
#: known source/doc suffix).
_TICKED_PATH = re.compile(r"`((?:[\w.-]+/)+[\w.-]+\.(?:md|py|xml|yml|toml|json))`")


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def test_doc_suite_exists():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "ARCHITECTURE.md", "COOKBOOK.md", "BENCHMARKS.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_markdown_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if _is_external(target):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = (doc.parent / target_path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative link(s) {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_backticked_repo_paths_exist(doc):
    text = doc.read_text()
    missing = []
    for match in _TICKED_PATH.finditer(text):
        path = match.group(1)
        if path.startswith(("fragments_out/",)):  # documented *output* paths
            continue
        if not any((root / path).exists() for root in _PATH_ROOTS):
            missing.append(path)
    assert not missing, f"{doc.name}: stale repo path(s) {missing}"
