"""Unit tests for the tree builders."""

import pytest

from repro.xmltree import TreeBuilder, element


class TestElementDsl:
    def test_nested(self):
        node = element("a", element("b", element("c")))
        assert node.children[0].children[0].label == "c"

    def test_string_argument_is_text(self):
        node = element("name", "Bache")
        assert node.text == "Bache"

    def test_text_keyword(self):
        assert element("name", text="Bache").text == "Bache"

    def test_double_text_rejected(self):
        with pytest.raises(ValueError):
            element("a", "x", text="y")
        with pytest.raises(ValueError):
            element("a", "x", "y")

    def test_mixed_children_and_text(self):
        node = element("a", element("b"), "txt", element("c"))
        assert node.text == "txt"
        assert [c.label for c in node.children] == ["b", "c"]


class TestTreeBuilder:
    def test_basic_nesting(self):
        builder = TreeBuilder("site")
        builder.open("regions")
        builder.leaf("africa")
        builder.close()
        builder.leaf("seal", text="x")
        tree = builder.build()
        assert [c.label for c in tree.root.children] == ["regions", "seal"]
        assert tree.root.children[0].children[0].label == "africa"

    def test_virtual_leaf(self):
        builder = TreeBuilder("a")
        builder.virtual_leaf("F5")
        tree = builder.build()
        assert tree.root.children[0].fragment_ref == "F5"

    def test_current_tracks_innermost(self):
        builder = TreeBuilder("a")
        opened = builder.open("b")
        assert builder.current is opened
        builder.close()
        assert builder.current.label == "a"

    def test_unbalanced_close_rejected(self):
        builder = TreeBuilder("a")
        with pytest.raises(ValueError):
            builder.close()

    def test_build_with_open_elements_rejected(self):
        builder = TreeBuilder("a")
        builder.open("b")
        with pytest.raises(ValueError):
            builder.build()

    def test_builder_not_reusable(self):
        builder = TreeBuilder("a")
        builder.build()
        with pytest.raises(ValueError):
            builder.leaf("x")
        with pytest.raises(ValueError):
            builder.build()
