"""Unit tests for evalST, resolve_triplet and the answer variable."""

import pytest

from repro.boolexpr import FALSE, TRUE, Var, make_or
from repro.core import (
    answer_variable,
    build_equation_system,
    eval_st,
    resolve_triplet,
)
from repro.core.vectors import VectorTriplet, ground_triplet_from_bools
from repro.fragments import Fragment, FragmentedTree, Placement, SourceTree
from repro.xmltree import XMLNode, element
from repro.xpath import compile_query


def two_fragment_setup():
    """F0 (with virtual F1) over sites S0/S1 and a 1-entry query."""
    f0_root = element("a")
    f0_root.add_child(XMLNode.virtual("F1"))
    tree = FragmentedTree(
        {"F0": Fragment("F0", f0_root), "F1": Fragment("F1", element("b"))}, "F0"
    )
    placement = Placement({"F0": "S0", "F1": "S1"})
    return tree, SourceTree.from_fragmented_tree(tree, placement)


class TestBuildEquationSystem:
    def test_defines_three_vectors_per_fragment(self):
        triplet = ground_triplet_from_bools("F1", [True], [False], [True])
        system = build_equation_system({"F1": triplet})
        assert system.value_of(Var("F1", "V", 0)) is True
        assert system.value_of(Var("F1", "CV", 0)) is False
        assert system.value_of(Var("F1", "DV", 0)) is True

    def test_cross_fragment_resolution(self):
        child = ground_triplet_from_bools("F1", [True], [False], [True])
        parent = VectorTriplet(
            "F0",
            [make_or(Var("F1", "V", 0), FALSE)],
            [Var("F1", "V", 0)],
            [Var("F1", "DV", 0)],
        )
        system = build_equation_system({"F0": parent, "F1": child})
        assert system.value_of(Var("F0", "V", 0)) is True

    @pytest.mark.parametrize("eager", [False, True])
    def test_out_of_range_indices_unbound(self, eager):
        """The lazy resolver must bounds-check like the eager build.

        Python's negative indexing would otherwise silently resolve
        ``Var(F, 'V', -1)`` to the *last* entry instead of raising.
        """
        from repro.boolexpr import UnboundVariableError

        triplet = ground_triplet_from_bools("F1", [True, False], [False] * 2, [True] * 2)
        system = build_equation_system({"F1": triplet}, eager=eager)
        for index in (-1, 2):
            with pytest.raises(UnboundVariableError):
                system.value_of(Var("F1", "V", index))


class TestAnswerVariable:
    def test_points_at_root_fragment_last_entry(self):
        _, source_tree = two_fragment_setup()
        qlist = compile_query("[//b and //c]")
        var = answer_variable(source_tree, qlist)
        assert var == Var("F0", "V", qlist.answer_index)


class TestEvalSt:
    def test_missing_triplet_rejected(self):
        _, source_tree = two_fragment_setup()
        qlist = compile_query("[//b]")
        triplet = ground_triplet_from_bools("F0", [True] * len(qlist), [False] * len(qlist), [True] * len(qlist))
        with pytest.raises(ValueError, match="missing"):
            eval_st({"F0": triplet}, source_tree, qlist)

    def test_end_to_end(self):
        from repro.core import bottom_up

        tree, source_tree = two_fragment_setup()
        qlist = compile_query("[//b]")
        triplets = {
            fid: bottom_up(fragment, qlist)[0] for fid, fragment in tree.fragments.items()
        }
        assert eval_st(triplets, source_tree, qlist) is True

    def test_extra_triplets_tolerated(self):
        from repro.core import bottom_up

        tree, source_tree = two_fragment_setup()
        qlist = compile_query("[//b]")
        triplets = {
            fid: bottom_up(fragment, qlist)[0] for fid, fragment in tree.fragments.items()
        }
        triplets["GHOST"] = ground_triplet_from_bools(
            "GHOST", [False] * len(qlist), [False] * len(qlist), [False] * len(qlist)
        )
        assert eval_st(triplets, source_tree, qlist) is True


class TestResolveTriplet:
    def test_resolves_to_ground(self):
        child = ground_triplet_from_bools("K", [True], [False], [True])
        parent = VectorTriplet("P", [Var("K", "DV", 0)], [Var("K", "V", 0)], [TRUE])
        resolved = resolve_triplet(parent, {"K": child})
        assert resolved.is_ground()
        assert resolved.v[0] is TRUE
        assert resolved.cv[0] is TRUE

    def test_non_ground_child_rejected(self):
        child = VectorTriplet("K", [Var("X", "V", 0)], [FALSE], [FALSE])
        parent = VectorTriplet("P", [Var("K", "V", 0)], [FALSE], [FALSE])
        with pytest.raises(ValueError, match="not ground"):
            resolve_triplet(parent, {"K": child})

    def test_unresolved_references_rejected(self):
        parent = VectorTriplet("P", [Var("MISSING", "V", 0)], [FALSE], [FALSE])
        with pytest.raises(ValueError, match="MISSING"):
            resolve_triplet(parent, {})

    def test_multiple_children(self):
        left = ground_triplet_from_bools("L", [False], [False], [False])
        right = ground_triplet_from_bools("R", [True], [False], [True])
        parent = VectorTriplet(
            "P",
            [make_or(Var("L", "V", 0), Var("R", "V", 0))],
            [FALSE],
            [make_or(Var("L", "DV", 0), Var("R", "DV", 0))],
        )
        resolved = resolve_triplet(parent, {"L": left, "R": right})
        assert resolved.v[0] is TRUE
        assert resolved.dv[0] is TRUE
