"""Tests for the subscription registry (multi-view maintenance)."""

import pytest

from repro.views import MaterializedView, SubscriptionRegistry
from repro.workloads.portfolio import build_portfolio_cluster
from repro.xmltree import XMLNode, element
from repro.xpath import compile_query
from repro.xpath.qlist import concatenate_qlists


class TestConcatenateQLists:
    def test_offsets_and_topology(self):
        first = compile_query("[//a]")
        second = compile_query("[//b and c]")
        combined, answers = concatenate_qlists([first, second])
        assert len(combined) == len(first) + len(second)
        assert answers == [first.answer_index, len(first) + second.answer_index]
        for index, entry in enumerate(combined):
            assert all(arg < index for arg in entry.args)

    def test_combined_evaluation_matches_individuals(self):
        from repro.core import evaluate_tree
        from repro.workloads.portfolio import build_portfolio_tree

        tree = build_portfolio_tree()
        queries = [compile_query(q) for q in ("[//stock]", '[//code = "YHOO"]', "[//zzz]")]
        combined, answers = concatenate_qlists(queries)
        # Evaluate the combination once; read each query's answer entry.
        from repro.core.centralized import evaluate_node
        from repro.core import bottom_up
        from repro.fragments import Fragment

        triplet, _ = bottom_up(Fragment("W", tree.root), combined)
        for qlist, answer_index in zip(queries, answers):
            expected, _ = evaluate_tree(tree, qlist)
            assert triplet.v[answer_index].evaluate({}) == expected

    def test_single_input(self):
        qlist = compile_query("[//a]")
        combined, answers = concatenate_qlists([qlist])
        assert combined.entries == qlist.entries
        assert answers == [qlist.answer_index]


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


@pytest.fixture
def registry(cluster):
    registry = SubscriptionRegistry(cluster)
    registry.subscribe("has-stock", compile_query("[//stock]"))
    registry.subscribe("goog-376", compile_query('[//stock[code = "GOOG" and sell = "376"]]'))
    registry.subscribe("no-tsla", compile_query('[not(//code = "TSLA")]'))
    return registry


class TestRegistryBasics:
    def test_initial_answers(self, registry):
        assert registry.answers() == {
            "has-stock": True,
            "goog-376": False,
            "no-tsla": True,
        }

    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.subscribe("has-stock", compile_query("[//a]"))

    def test_unsubscribe(self, registry):
        registry.unsubscribe("goog-376")
        assert registry.names() == ["has-stock", "no-tsla"]
        assert "goog-376" not in registry.answers()

    def test_unsubscribe_all(self, cluster):
        registry = SubscriptionRegistry(cluster)
        registry.subscribe("x", compile_query("[//a]"))
        registry.unsubscribe("x")
        assert len(registry) == 0
        with pytest.raises(ValueError):
            registry.notify_fragment_updated("F0")

    def test_combined_size_is_sum(self, registry):
        assert registry.combined_size() == sum(
            len(compile_query(q))
            for q in ("[//stock]", '[//stock[code = "GOOG" and sell = "376"]]', '[not(//code = "TSLA")]')
        )


class TestRegistryBatchMachinery:
    """The registry rides the shared batch planner and query cache."""

    def test_subscribe_accepts_text(self, cluster):
        registry = SubscriptionRegistry(cluster)
        assert registry.subscribe("has-stock", "[//stock]") is True
        assert registry.answer("has-stock") is True

    def test_parse_error_leaves_registry_untouched(self, cluster):
        from repro.xpath import QueryParseError

        registry = SubscriptionRegistry(cluster)
        registry.subscribe("good", "[//stock]")
        with pytest.raises(QueryParseError):
            registry.subscribe("bad", "[[not a query")
        assert registry.names() == ["good"]
        # The registry is still fully functional: the failed name can
        # be retried and new subscriptions line up with their answers.
        assert registry.subscribe("bad", "[//zzz]") is False
        assert registry.answers() == {"good": True, "bad": False}

    def test_repeated_text_hits_compile_cache(self, cluster):
        registry = SubscriptionRegistry(cluster)
        registry.subscribe("a", "[//stock]")
        registry.subscribe("b", "[//stock]")
        assert registry.cache.hits == 1 and registry.cache.misses == 1

    def test_identical_subscriptions_share_one_slice(self, cluster):
        registry = SubscriptionRegistry(cluster)
        registry.subscribe("a", "[//stock]")
        size_one = registry.combined_size()
        registry.subscribe("b", "[//stock]")
        # The twin collapses onto the same combined slice: no growth.
        assert registry.combined_size() == size_one
        assert registry.duplicate_subscriptions() == 1
        plan = registry.plan()
        assert plan.answer_indices[0] == plan.answer_indices[1]
        assert registry.answers() == {"a": True, "b": True}

    def test_plan_exposes_segments(self, registry):
        plan = registry.plan()
        assert plan is not None
        assert len(plan) == 3 and plan.unique_count == 3
        assert len(plan.combined) == registry.combined_size()

    def test_dedup_survives_maintenance(self, cluster):
        registry = SubscriptionRegistry(cluster)
        registry.subscribe("a", '[//code = "TSLA"]')
        registry.subscribe("b", '[//code = "TSLA"]')
        from repro.xmltree import XMLNode

        stock = cluster.fragment("F2").root
        stock.add_child(XMLNode("code", text="TSLA"))
        report = registry.notify_fragment_updated("F2")
        assert set(report.changed) == {"a", "b"}
        assert registry.answers() == {"a": True, "b": True}


class TestRegistryMaintenance:
    def test_one_update_flips_exactly_the_affected(self, cluster, registry):
        sell = next(
            n for n in cluster.fragment("F2").root.iter_subtree() if n.label == "sell"
        )
        sell.text = "376"
        report = registry.notify_fragment_updated("F2")
        assert report.changed == ("goog-376",)
        assert registry.answer("goog-376") is True
        assert registry.answer("has-stock") is True

    def test_single_traversal_per_update(self, cluster, registry):
        report = registry.notify_fragment_updated("F2")
        # One pass over F2 only, whatever the subscription count.
        assert report.nodes_recomputed == cluster.fragment("F2").size()
        assert report.sites_visited == ("S2",)

    def test_cheaper_than_separate_views(self, cluster, registry):
        # Three separate views traverse the fragment three times.
        queries = [compile_query(q) for q in ("[//stock]", "[//sell]", "[//buy]")]
        views = [MaterializedView.create(cluster, q) for q in queries]
        separate_nodes = sum(v.refresh_fragment("F3").nodes_recomputed for v in views)
        shared = SubscriptionRegistry(cluster)
        for index, q in enumerate(queries):
            shared.subscribe(f"s{index}", q)
        report = shared.notify_fragment_updated("F3")
        assert report.nodes_recomputed * 3 == separate_nodes

    def test_no_change_short_circuits(self, registry):
        report = registry.notify_fragment_updated("F3")
        assert not report.triplet_changed
        assert report.changed == ()

    def test_matches_scratch_after_update_storm(self, cluster, registry):
        f3 = cluster.fragment("F3")
        f3.root.add_child(element("stock", element("code", text="TSLA")))
        registry.notify_fragment_updated("F3")
        assert registry.answer("no-tsla") is False
        live = registry.answers()
        assert registry.recompute_from_scratch() == live

    def test_insert_then_delete_round_trip(self, cluster, registry):
        before = registry.answers()
        f1 = cluster.fragment("F1")
        extra = XMLNode("stock")
        f1.root.add_child(extra)
        registry.notify_fragment_updated("F1")
        extra.detach()
        report = registry.notify_fragment_updated("F1")
        assert registry.answers() == before
        assert not report.changed
