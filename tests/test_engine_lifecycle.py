"""Engine lifecycle: executor ownership and delegate teardown.

The :meth:`Engine.close` contract: an engine that resolved its executor
from a *name* owns it and must reap it; a pre-built instance belongs to
whoever built it.  HybridParBoX additionally owns two delegate engines
and must close each exactly once, without touching the executor the
three of them share.
"""

import pytest

from repro.core import HybridParBoXEngine, ParBoXEngine
from repro.distsim.executors import (
    SiteExecutor,
    ThreadSiteExecutor,
    execute_site_job,
)
from repro.workloads.portfolio import build_portfolio_cluster
from repro.xpath import compile_query


class RecordingExecutor(SiteExecutor):
    """A serial executor that counts its close() calls."""

    name = "recording"

    def __init__(self):
        self.close_calls = 0

    def run_jobs(self, jobs):
        return [execute_site_job(job) for job in jobs]

    def close(self):
        self.close_calls += 1


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


class TestOwnershipRule:
    def test_name_resolved_executor_is_owned_and_closed(self, cluster):
        engine = ParBoXEngine(cluster, executor="threads")
        engine.evaluate(compile_query("[//stock]"))
        assert engine._owns_executor
        assert isinstance(engine.executor, ThreadSiteExecutor)
        assert engine.executor._pool is not None
        engine.close()
        assert engine.executor._pool is None

    def test_prebuilt_executor_is_shared_not_closed(self, cluster):
        executor = RecordingExecutor()
        engine = ParBoXEngine(cluster, executor=executor)
        engine.evaluate(compile_query("[//stock]"))
        assert not engine._owns_executor
        engine.close()
        assert executor.close_calls == 0  # the builder owns it

    def test_close_twice_is_safe(self, cluster):
        engine = ParBoXEngine(cluster, executor="threads")
        engine.evaluate(compile_query("[//stock]"))
        engine.close()
        engine.close()
        assert engine.executor._pool is None

    def test_context_manager_closes(self, cluster):
        with ParBoXEngine(cluster, executor="threads") as engine:
            engine.evaluate(compile_query("[//stock]"))
            pool = engine.executor._pool
            assert pool is not None
        assert engine.executor._pool is None


class TestHybridDelegates:
    def test_delegates_share_the_hybrid_executor(self, cluster):
        executor = RecordingExecutor()
        hybrid = HybridParBoXEngine(cluster, executor=executor)
        assert hybrid._parbox.executor is executor
        assert hybrid._central.executor is executor
        assert not hybrid._parbox._owns_executor
        assert not hybrid._central._owns_executor

    def test_delegates_closed_exactly_once(self, cluster):
        hybrid = HybridParBoXEngine(cluster, executor="serial")
        calls = {"parbox": 0, "central": 0}
        original_parbox_close = hybrid._parbox.close
        original_central_close = hybrid._central.close

        def parbox_close():
            calls["parbox"] += 1
            original_parbox_close()

        def central_close():
            calls["central"] += 1
            original_central_close()

        hybrid._parbox.close = parbox_close
        hybrid._central.close = central_close
        hybrid.close()
        hybrid.close()  # idempotent: the delegates are not re-closed
        assert calls == {"parbox": 1, "central": 1}

    def test_close_does_not_reap_a_shared_pool(self, cluster):
        executor = RecordingExecutor()
        hybrid = HybridParBoXEngine(cluster, executor=executor)
        hybrid.evaluate(compile_query("[//stock]"))
        hybrid.close()
        # Neither the hybrid (pre-built instance) nor its delegates
        # (shared instance) may close the builder's executor.
        assert executor.close_calls == 0

    def test_close_reaps_owned_executor_once_for_all_three(self, cluster):
        hybrid = HybridParBoXEngine(cluster, executor="threads")
        hybrid.evaluate(compile_query("[//stock]"))
        assert hybrid._owns_executor
        assert hybrid.executor._pool is not None
        hybrid.close()
        assert hybrid.executor._pool is None

    def test_close_reaps_delegate_threaded_caches(self, cluster):
        # evaluate_threaded pools cached inside the ParBoX delegate are
        # the delegate-owned resource the old close() leaked.
        hybrid = HybridParBoXEngine(cluster, executor="serial")
        hybrid._parbox.evaluate_threaded(compile_query("[//stock]"))
        cached = hybrid._parbox._threaded_executors
        assert cached  # a pool was cached
        pools = list(cached.values())
        hybrid.close()
        assert not hybrid._parbox._threaded_executors
        assert all(pool._pool is None for pool in pools)

    def test_batch_goes_through_chosen_delegate(self, cluster):
        hybrid = HybridParBoXEngine(cluster)
        queries = [compile_query("[//stock]"), compile_query("[//zzz]")]
        batch = hybrid.evaluate_many(queries)
        assert batch.engine == "HybridParBoX"
        assert batch.details["strategy"] in ("parbox", "centralized")
        assert list(batch.answers) == [True, False]
