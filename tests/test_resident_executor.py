"""The resident process-executor stack: residency, epochs, zero-copy.

Covers the acceptance criteria of the resident-worker redesign:

* random topologies x engines x update streams (including a mid-run
  rebalance) agree bitwise with the serial executor -- answers and the
  full simulated ledger;
* each fragment's wire form reaches each worker exactly once per
  epoch, witnessed from both sides (the dispatcher's ship log and the
  workers' receive counters);
* a worker that missed an invalidation replies typed-stale and the
  dispatcher re-pushes and retries; a dead worker is respawned; both
  self-heals are invisible in the answers;
* retired fragments (merge, migration) are reclaimed from worker
  memory -- the leak check;
* the shared :class:`ResidentSiteState`, the site-vectorized
  :func:`site_bottom_up` pass and the protocol-5 transport each agree
  bitwise with their scalar/in-band counterparts.
"""

import multiprocessing
import threading

import pytest

from repro.boolexpr.compose import CanonicalAlgebra, PaperAlgebra
from repro.core import (
    ENGINE_REGISTRY,
    ParBoXEngine,
    evaluate_tree,
)
from repro.core.bottom_up import bottom_up, linearize_ground, site_bottom_up
from repro.core.vectors import VectorTriplet, compact_with_buffers
from repro.distsim.executors import (
    ProcessSiteExecutor,
    SerialSiteExecutor,
    resident_fragment_wire,
)
from repro.distsim.resident import (
    ResidentSiteState,
    StaleResidentError,
    qlist_fingerprint,
)
from repro.distsim.transport import recv_payload, send_payload
from repro.stream import MergeFragment, MoveFragment, Relabel, SplitFragment
from repro.stream.maintainer import StreamMaintainer
from repro.stream.updates import apply_updates
from repro.workloads.portfolio import build_portfolio_cluster
from repro.workloads.topologies import chain_ft2, star_ft1
from repro.workloads.updates import update_stream
from repro.xpath import compile_query

DIFFERENTIAL_ENGINES = ("parbox", "fulldist", "lazy", "hybrid")

QUERIES = [
    "[//stock]",
    '[//stock[code = "GOOG" and sell = "376"]]',
    "[not //market]",
]


def _oracle(cluster, query_text):
    answer, _ = evaluate_tree(
        cluster.fragmented_tree.stitch(), compile_query(query_text)
    )
    return answer


def _first_leaf(cluster, fragment_id):
    return cluster.fragment(fragment_id).root.find_first(
        lambda n: not n.is_virtual and not n.children
    )


# ---------------------------------------------------------------------------
# Differential: streams x engines, bitwise against the serial executor
# ---------------------------------------------------------------------------


class TestDifferentialAgainstSerial:
    @pytest.mark.parametrize("engine_name", DIFFERENTIAL_ENGINES)
    def test_ledger_bitwise_after_update_stream(self, engine_name):
        # Mutate one cluster through a skewed stream (with structural
        # ops), then demand answer AND ledger equality between the
        # serial executor and the resident process pool on the final
        # state -- the ledger is simulated, so any divergence means the
        # resident path changed semantics, not speed.
        cluster = star_ft1(4, 0.4, seed=41, nodes_per_mb=24)
        for batch in update_stream(
            cluster, rounds=4, ops_per_round=3, seed=41, structural_every=2
        ):
            apply_updates(cluster, batch)
        qlist = compile_query("[//bidder or //probe]")
        engine_cls = ENGINE_REGISTRY[engine_name]
        ledgers = {}
        for executor in (SerialSiteExecutor(), ProcessSiteExecutor()):
            with executor:
                result = engine_cls(cluster, executor=executor).evaluate(qlist)
            metrics = result.metrics
            ledgers[executor.name] = (
                result.answer,
                dict(metrics.visits),
                metrics.messages,
                metrics.bytes_total,
                dict(metrics.bytes_by_kind),
                metrics.nodes_processed,
                metrics.qlist_ops,
            )
        assert ledgers["serial"] == ledgers["process"]

    @pytest.mark.parametrize("topology_seed", [51, 52])
    def test_maintained_stream_with_midrun_rebalance(self, topology_seed):
        # A maintainer driving the resident pool through a live stream,
        # with an explicit MoveFragment rebalance halfway: every round's
        # standing answers must match a fresh evaluation of the stitched
        # document, and no (worker, fragment, epoch) may ship twice.
        cluster = star_ft1(3, 0.4, seed=topology_seed, nodes_per_mb=24)
        executor = ProcessSiteExecutor(max_workers=2)
        with executor:
            maintainer = StreamMaintainer(cluster, executor=executor)
            queries = {"q0": "[//bidder]", "q1": '[//probe = "on"]', "q2": "[not(//note)]"}
            for name, text in queries.items():
                maintainer.subscribe(name, text)
            # The stream draws targets from live cluster state: consume
            # it lazily, one apply per draw.
            stream = update_stream(
                cluster, rounds=6, ops_per_round=2, seed=7, structural_every=3
            )
            for index, batch in enumerate(stream):
                if index == 3:
                    # Rebalance mid-run: re-home a fragment to another
                    # site.  Content is untouched, answers must hold.
                    source_tree = cluster.source_tree()
                    fragment_id = source_tree.fragments_of(source_tree.sites()[0])[0]
                    target = source_tree.sites()[-1]
                    maintainer.apply([MoveFragment(fragment_id, target)])
                maintainer.apply(batch)
                live = maintainer.answers()
                assert live == {
                    name: _oracle(cluster, text) for name, text in queries.items()
                }, f"diverged at round {index}"
            assert len(set(executor.ship_log)) == len(executor.ship_log)
            # Holder-side witness of the ship-once contract.
            for stats in executor.worker_stats():
                assert all(count == 1 for count in stats["receive_counts"].values())


# ---------------------------------------------------------------------------
# Ship-once, warm start
# ---------------------------------------------------------------------------


class TestShipOncePerEpoch:
    def test_steady_state_ships_nothing(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        with ProcessSiteExecutor() as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            engine.evaluate(qlist)
            ships_after_first = executor.stats["ships"]
            assert ships_after_first == len(cluster.fragmented_tree.fragments)
            for _ in range(3):
                engine.evaluate(qlist)
            assert executor.stats["ships"] == ships_after_first
            assert len(set(executor.ship_log)) == len(executor.ship_log)

    def test_epoch_bump_reships_only_the_dirty_fragment(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        with ProcessSiteExecutor() as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            engine.evaluate(qlist)
            baseline = executor.stats["ships"]
            leaf = _first_leaf(cluster, "F2")
            apply_updates(cluster, [Relabel("F2", leaf.node_id, text="377")])
            engine.evaluate(qlist)
            assert executor.stats["ships"] == baseline + 1
            assert executor.ship_log[-1][1] == "F2"

    def test_warm_start_prepays_every_ship(self):
        cluster = build_portfolio_cluster()
        with ProcessSiteExecutor(warm=cluster) as executor:
            prepaid = executor.stats["ships"]
            assert prepaid == len(cluster.fragmented_tree.fragments)
            result = ParBoXEngine(cluster, executor=executor).evaluate(
                compile_query("[//stock]")
            )
            assert executor.stats["ships"] == prepaid  # nothing left to ship
        assert result.answer is _oracle(cluster, "[//stock]")

    def test_non_resident_mode_is_the_old_per_batch_wire(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        with ProcessSiteExecutor(resident=False) as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            first = engine.evaluate(qlist)
            second = engine.evaluate(qlist)
            assert executor.stats["ships"] == 0  # fragments ride the jobs
        assert first.answer == second.answer == _oracle(cluster, "[//stock]")


# ---------------------------------------------------------------------------
# Self-heal: stale residents, dead workers
# ---------------------------------------------------------------------------


class TestSelfHeal:
    def test_missed_invalidation_heals_via_typed_stale(self):
        # Forge the hazard the epoch check exists for: the dispatcher
        # believes the worker holds the new epoch, the worker does not
        # (as if it missed a migration/split invalidation).  The worker
        # must answer typed-stale, the dispatcher re-push and retry.
        cluster = build_portfolio_cluster()
        qlist = compile_query('[//stock[code = "GOOG" and sell = "376"]]')
        with ProcessSiteExecutor(max_workers=1) as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            engine.evaluate(qlist)
            leaf = _first_leaf(cluster, "F2")
            apply_updates(cluster, [Relabel("F2", leaf.node_id, text="376")])
            worker = executor._workers[executor._site_affinity[cluster.site_of("F2")]]
            worker.resident["F2"] = cluster.fragment("F2").epoch  # forged model
            result = engine.evaluate(qlist)
            assert executor.stats["stale_retries"] == 1
            assert result.answer is _oracle(
                cluster, '[//stock[code = "GOOG" and sell = "376"]]'
            )

    def test_dead_worker_respawns_and_recovers_the_batch(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        with ProcessSiteExecutor(max_workers=1) as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            engine.evaluate(qlist)
            worker = next(w for w in executor._workers if w is not None)
            worker.process.terminate()
            worker.process.join(timeout=5)
            result = engine.evaluate(qlist)
            assert executor.stats["respawns"] >= 1
            assert result.answer is _oracle(cluster, "[//stock]")


# ---------------------------------------------------------------------------
# Leak check: retired fragments leave worker memory
# ---------------------------------------------------------------------------


class TestRetirementReclaimsWorkerMemory:
    def test_merge_and_move_evict_resident_copies(self):
        cluster = build_portfolio_cluster()
        with ProcessSiteExecutor(max_workers=2) as executor:
            maintainer = StreamMaintainer(cluster, executor=executor)
            maintainer.subscribe("q", "[//stock]")
            stock = cluster.fragment("F1").root.find_first(
                lambda n: not n.is_virtual and n.label == "stock"
            )
            split_round = maintainer.apply([SplitFragment("F1", stock.node_id)])
            new_id = split_round.dirty_fragments[-1]
            assert any(
                new_id in stats["resident"] for stats in executor.worker_stats()
            )
            maintainer.apply([MergeFragment("F1", new_id)])
            assert all(
                new_id not in stats["resident"] for stats in executor.worker_stats()
            )
            # A migration retires the copy from the origin worker too.
            origin_site = cluster.site_of("F2")
            target = next(
                s.site_id for s in cluster.sites() if s.site_id != origin_site
            )
            origin_worker = executor._site_affinity[origin_site]
            maintainer.apply([MoveFragment("F2", target)])
            for stats in executor.worker_stats():
                if stats["worker"] == origin_worker:
                    assert "F2" not in stats["resident"]
            assert executor.stats["retired"] >= 2


# ---------------------------------------------------------------------------
# ResidentSiteState (the shared worker/server protocol object)
# ---------------------------------------------------------------------------


class TestResidentSiteState:
    @pytest.fixture
    def cluster(self):
        return build_portfolio_cluster()

    def test_store_run_matches_per_fragment_path(self, cluster):
        state = ResidentSiteState()
        fragments = [cluster.fragment(fid) for fid in ("F2", "F3")]
        state.store([resident_fragment_wire(f) for f in fragments])
        qlist = compile_query("[//stock]")
        refs = [(f.fragment_id, f.epoch) for f in fragments]
        results, seconds = state.run("S2", refs, qlist, CanonicalAlgebra())
        assert seconds >= 0
        for fragment, (compact, nodes, ops, segment_ops) in zip(fragments, results):
            triplet, stats = bottom_up(fragment, qlist, CanonicalAlgebra())
            assert VectorTriplet.from_compact(compact) == triplet
            assert nodes == stats.nodes_visited
            assert ops == stats.nodes_visited * len(qlist)
            assert segment_ops == ()

    def test_epoch_mismatch_raises_typed_stale(self, cluster):
        state = ResidentSiteState()
        fragment = cluster.fragment("F2")
        state.store([resident_fragment_wire(fragment)])
        stale_epoch = fragment.epoch
        fragment.bump_epoch()
        with pytest.raises(StaleResidentError) as info:
            state.run(
                "S2",
                [("F2", fragment.epoch)],
                compile_query("[//stock]"),
                CanonicalAlgebra(),
            )
        assert info.value.missing == ("F2",)
        assert "S2" in str(info.value)
        # The stale copy still answers epoch-less and exact-old refs.
        assert state.missing_for([("F2", None)]) == []
        assert state.missing_for([("F2", stale_epoch)]) == []

    def test_receive_counts_witness_each_push(self, cluster):
        state = ResidentSiteState()
        fragment = cluster.fragment("F1")
        wire = resident_fragment_wire(fragment)
        state.store([wire])
        state.store([wire])  # a re-push after a forged desync
        assert state.receive_counts[("F1", fragment.epoch)] == 2
        fragment.bump_epoch()
        state.store([resident_fragment_wire(fragment)])
        assert state.receive_counts[("F1", fragment.epoch)] == 1

    def test_retire_and_epoch_view(self, cluster):
        state = ResidentSiteState()
        state.store([resident_fragment_wire(cluster.fragment("F1"))])
        assert state.resident_epochs() == {"F1": cluster.fragment("F1").epoch}
        assert state.retire(["F1", "F9"]) == 1
        assert state.resident_epochs() == {}
        assert state.missing_for([("F1", None)]) == ["F1"]

    def test_query_cache_is_fingerprint_keyed(self):
        state = ResidentSiteState()
        qlist = compile_query("[//stock]")
        fingerprint = qlist_fingerprint(qlist)
        with pytest.raises(KeyError):
            state.ensure_query(fingerprint)
        resident = state.ensure_query(fingerprint, qlist.to_obj())
        assert state.ensure_query(fingerprint) is resident
        # A distinct object with identical entries shares the residency.
        twin = compile_query("[//stock]")
        assert qlist_fingerprint(twin) == fingerprint


# ---------------------------------------------------------------------------
# Site-vectorized ground kernel
# ---------------------------------------------------------------------------


class TestSiteBottomUp:
    @pytest.mark.parametrize("algebra_cls", [CanonicalAlgebra, PaperAlgebra])
    def test_matches_scalar_bottom_up_bitwise(self, algebra_cls):
        cluster = chain_ft2(4, 0.4, seed=43, nodes_per_mb=24)
        fragments = [
            cluster.fragment(fid) for fid in sorted(cluster.fragmented_tree.fragments)
        ]
        residents = [(f, linearize_ground(f)) for f in fragments]
        for query in QUERIES + ["[//seal]", '[//probe = "on" or not //item]']:
            qlist = compile_query(query)
            vectorized = site_bottom_up(residents, qlist, algebra_cls())
            for fragment, (triplet, nodes) in zip(fragments, vectorized):
                expected, stats = bottom_up(fragment, qlist, algebra_cls())
                assert triplet == expected, (query, fragment.fragment_id)
                assert nodes == stats.nodes_visited

    def test_ground_fragments_have_linearizations(self):
        # In a fragmented cluster the interior fragments hold virtual
        # nodes (no linearization); pure leaves linearize.
        cluster = build_portfolio_cluster()
        kinds = {
            fid: linearize_ground(cluster.fragment(fid)) is not None
            for fid in cluster.fragmented_tree.fragments
        }
        assert any(kinds.values()) and not all(kinds.values())


# ---------------------------------------------------------------------------
# Zero-copy transport
# ---------------------------------------------------------------------------


class TestTransport:
    def _roundtrip(self, payload, **kwargs):
        parent, child = multiprocessing.Pipe()
        try:
            sender = threading.Thread(
                target=send_payload, args=(parent, payload), kwargs=kwargs
            )
            sender.start()
            received = recv_payload(child)
            sender.join(timeout=10)
            assert not sender.is_alive()
            return received
        finally:
            parent.close()
            child.close()

    def test_plain_payload_roundtrips(self):
        payload = ("job", "S1", (("F1", 7),), {"answer": True})
        assert self._roundtrip(payload) == payload

    def test_out_of_band_masks_roundtrip_bitwise(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        triplet, _ = bottom_up(cluster.fragment("F2"), qlist, CanonicalAlgebra())
        wire = compact_with_buffers(triplet.to_compact(), threshold=1)
        received = self._roundtrip(("ok", (wire,)))
        assert VectorTriplet.from_compact(received[1][0]) == triplet

    def test_shared_memory_path_roundtrips_bitwise(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        triplet, _ = bottom_up(cluster.fragment("F2"), qlist, CanonicalAlgebra())
        wire = compact_with_buffers(triplet.to_compact(), threshold=1)
        received = self._roundtrip(("ok", (wire,)), shm_threshold=1)
        assert VectorTriplet.from_compact(received[1][0]) == triplet


# ---------------------------------------------------------------------------
# Batched pipe submission
# ---------------------------------------------------------------------------


class TestBatchedSubmission:
    """All jobs bound for one worker coalesce into a single framed write;
    semantics (answers AND the simulated ledger) must not move."""

    def test_batch_envelope_round_trips(self):
        from repro.distsim import transport

        # Single payloads skip the envelope entirely (wire compatible
        # with the pre-batching protocol).
        assert transport.wrap_batch((("job", 1),)) == ("job", 1)
        wrapped = transport.wrap_batch((("a",), ("b",)))
        assert wrapped == (transport.BATCH, (("a",), ("b",)))
        assert transport.unwrap_batch(wrapped) == (("a",), ("b",))
        assert transport.unwrap_batch(("job", 1)) == (("job", 1),)

    def test_submission_queue_coalesces_writes(self):
        from repro.distsim import transport

        sent = []
        queue = transport.SubmissionQueue(sent.append)
        assert queue.flush() == 0  # idempotent on empty
        queue.submit(("a",))
        queue.submit(("b",))
        assert len(queue) == 2
        assert queue.flush() == 2
        queue.submit(("c",))
        assert queue.flush() == 1
        assert sent == [(transport.BATCH, (("a",), ("b",))), ("c",)]
        assert queue.writes == 2 and queue.submitted == 3

    def test_batched_matches_unbatched_and_serial_with_fewer_writes(self):
        cluster = star_ft1(8, 0.4, seed=13, nodes_per_mb=24)
        qlists = [compile_query(text) for text in QUERIES]
        expected = [_oracle(cluster, text) for text in QUERIES]
        ledgers = {}
        stats = {}
        executors = (
            ("serial", SerialSiteExecutor()),
            ("batched", ProcessSiteExecutor(max_workers=2)),
            (
                "unbatched",
                ProcessSiteExecutor(max_workers=2, batch_submission=False),
            ),
        )
        for name, executor in executors:
            with executor:
                engine = ParBoXEngine(cluster, executor=executor)
                rows = []
                for qlist, want in zip(qlists, expected):
                    result = engine.evaluate(qlist)
                    assert result.answer == want
                    metrics = result.metrics
                    rows.append(
                        (
                            result.answer,
                            dict(metrics.visits),
                            metrics.messages,
                            metrics.bytes_total,
                            dict(metrics.bytes_by_kind),
                            metrics.nodes_processed,
                            metrics.qlist_ops,
                        )
                    )
                ledgers[name] = rows
                if name != "serial":
                    stats[name] = dict(executor.stats)
        assert ledgers["serial"] == ledgers["batched"] == ledgers["unbatched"]
        # Identical work reached the workers either way...
        assert stats["batched"]["jobs"] == stats["unbatched"]["jobs"]
        # ...through strictly fewer framed pipe writes when batching.
        assert stats["batched"]["submits"] < stats["unbatched"]["submits"]

    def test_worker_death_mid_run_heals_under_batching(self):
        cluster = star_ft1(6, 0.3, seed=19, nodes_per_mb=24)
        qlist = compile_query(QUERIES[0])
        with ProcessSiteExecutor(max_workers=1) as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            first = engine.evaluate(qlist).answer
            worker = next(w for w in executor._workers if w is not None)
            worker.process.terminate()
            worker.process.join(timeout=10)
            second = engine.evaluate(qlist).answer
            assert executor.stats["respawns"] >= 1
        assert first == second == _oracle(cluster, QUERIES[0])
