"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads.portfolio import build_portfolio_tree
from repro.xmltree import parse_xml, serialize


@pytest.fixture
def portfolio_file(tmp_path):
    path = tmp_path / "portfolio.xml"
    path.write_text(serialize(build_portfolio_tree(), indent=2))
    return str(path)


class TestExplain:
    def test_shows_pipeline(self, capsys):
        assert main(["explain", '[//stock[code = "GOOG"]]']) == 0
        out = capsys.readouterr().out
        assert "normal form" in out
        assert "QList (|q| = 10)" in out
        assert "label() = stock" in out

    def test_bad_query_is_reported(self, capsys):
        assert main(["explain", "[broken"]) == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_default_engine(self, portfolio_file, capsys):
        code = main(["query", portfolio_file, '[//code = "GOOG"]'])
        assert code == 0
        out = capsys.readouterr().out
        assert "ParBoX" in out and "answer=True" in out

    def test_false_answer(self, portfolio_file, capsys):
        main(["query", portfolio_file, '[//code = "MSFT"]'])
        assert "answer=False" in capsys.readouterr().out

    def test_all_engines_agree(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--all-engines"])
        out = capsys.readouterr().out
        assert out.count("answer=True") == 6

    def test_engine_choice(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--engine", "lazy"])
        assert "LazyParBoX" in capsys.readouterr().out

    def test_unknown_engine(self, portfolio_file, capsys):
        assert main(["query", portfolio_file, "[//stock]", "--engine", "warp"]) == 2

    def test_sites_option_groups_fragments(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--fragments", "6", "--sites", "2"])
        assert "2 sites" in capsys.readouterr().out

    def test_trace_output(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--trace"])
        out = capsys.readouterr().out
        assert "visit" in out and "message" in out

    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent.xml", "[//a]"]) == 2


class TestSelect:
    def test_selects_nodes(self, portfolio_file, capsys):
        assert main(["select", portfolio_file, "[//stock/code]"]) == 0
        out = capsys.readouterr().out
        assert "6 node(s) selected" in out
        assert "'GOOG'" in out

    def test_limit(self, portfolio_file, capsys):
        main(["select", portfolio_file, "[//stock/code]", "--limit", "2"])
        out = capsys.readouterr().out
        assert "... 4 more" in out

    def test_non_path_query_rejected(self, portfolio_file, capsys):
        assert main(["select", portfolio_file, "[//a and //b]"]) == 2


class TestFragment:
    def test_writes_fragments_and_manifest(self, portfolio_file, tmp_path, capsys):
        out_dir = tmp_path / "frags"
        assert (
            main(["fragment", portfolio_file, "--fragments", "3", "--out", str(out_dir)])
            == 0
        )
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["root_fragment"] == "F0"
        assert len(manifest["fragments"]) == 3
        # Every fragment file must parse back.
        for info in manifest["fragments"].values():
            parse_xml((out_dir / info["file"]).read_text())

    def test_fragments_reference_each_other(self, portfolio_file, tmp_path):
        out_dir = tmp_path / "frags"
        main(["fragment", portfolio_file, "--fragments", "4", "--out", str(out_dir)])
        manifest = json.loads((out_dir / "manifest.json").read_text())
        referenced = set()
        for info in manifest["fragments"].values():
            referenced.update(info["sub_fragments"])
        assert referenced == set(manifest["fragments"]) - {"F0"}
