"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads.portfolio import build_portfolio_tree
from repro.xmltree import parse_xml, serialize


@pytest.fixture
def portfolio_file(tmp_path):
    path = tmp_path / "portfolio.xml"
    path.write_text(serialize(build_portfolio_tree(), indent=2))
    return str(path)


class TestExplain:
    def test_shows_pipeline(self, capsys):
        assert main(["explain", '[//stock[code = "GOOG"]]']) == 0
        out = capsys.readouterr().out
        assert "normal form" in out
        assert "QList (|q| = 10)" in out
        assert "label() = stock" in out

    def test_bad_query_is_reported(self, capsys):
        assert main(["explain", "[broken"]) == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_default_engine(self, portfolio_file, capsys):
        code = main(["query", portfolio_file, '[//code = "GOOG"]'])
        assert code == 0
        out = capsys.readouterr().out
        assert "ParBoX" in out and "answer=True" in out

    def test_false_answer(self, portfolio_file, capsys):
        main(["query", portfolio_file, '[//code = "MSFT"]'])
        assert "answer=False" in capsys.readouterr().out

    def test_all_engines_agree(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--all-engines"])
        out = capsys.readouterr().out
        assert out.count("answer=True") == 6

    def test_engine_choice(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--engine", "lazy"])
        assert "LazyParBoX" in capsys.readouterr().out

    def test_unknown_engine(self, portfolio_file, capsys):
        assert main(["query", portfolio_file, "[//stock]", "--engine", "warp"]) == 2

    def test_sites_option_groups_fragments(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--fragments", "6", "--sites", "2"])
        assert "2 sites" in capsys.readouterr().out

    def test_trace_output(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "--trace"])
        out = capsys.readouterr().out
        assert "visit" in out and "message" in out

    def test_missing_file(self, capsys):
        assert main(["query", "/nonexistent.xml", "[//a]"]) == 2


class TestQueryBatch:
    def test_multiple_queries_report_per_query_answers(self, portfolio_file, capsys):
        code = main(["query", portfolio_file, "[//stock]", "[//zzz]", '[//code = "GOOG"]'])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 queries in 1 batch(es)" in out
        assert "answer=True" in out and "answer=False" in out
        assert "per query (amortized)" in out

    def test_batch_size_chunks(self, portfolio_file, capsys):
        main(
            [
                "query",
                portfolio_file,
                "[//stock]",
                "[//zzz]",
                "[//market]",
                "[//sell]",
                "--batch-size",
                "2",
            ]
        )
        assert "4 queries in 2 batch(es)" in capsys.readouterr().out

    def test_duplicate_queries_marked_shared(self, portfolio_file, capsys):
        main(["query", portfolio_file, "[//stock]", "[//stock]", "[//zzz]"])
        out = capsys.readouterr().out
        assert "(shared x2)" in out
        assert "compiled 2 unique queries (1 cache hits)" in out

    def test_batch_respects_engine_choice(self, portfolio_file, capsys):
        assert (
            main(["query", portfolio_file, "[//stock]", "[//zzz]", "--engine", "fulldist"])
            == 0
        )

    def test_batch_rejects_unknown_engine(self, portfolio_file, capsys):
        assert (
            main(["query", portfolio_file, "[//stock]", "[//zzz]", "--engine", "warp"]) == 2
        )
        # Errors go to stderr like every other CLI failure.
        assert "unknown engine" in capsys.readouterr().err

    def test_batch_rejects_all_engines_flag(self, portfolio_file, capsys):
        assert (
            main(["query", portfolio_file, "[//stock]", "[//zzz]", "--all-engines"]) == 2
        )
        assert "--all-engines" in capsys.readouterr().err

    def test_batch_parse_error_reported(self, portfolio_file, capsys):
        assert main(["query", portfolio_file, "[//stock]", "[broken"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_honors_trace(self, portfolio_file, capsys):
        assert main(["query", portfolio_file, "[//stock]", "[//zzz]", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "visit" in out and "message" in out

    def test_batch_rejects_zero_batch_size(self, portfolio_file, capsys):
        assert (
            main(["query", portfolio_file, "[//stock]", "[//zzz]", "--batch-size", "0"])
            == 2
        )
        assert "batch_size" in capsys.readouterr().err


class TestRebalance:
    def test_optimizes_and_reports(self, portfolio_file, capsys):
        code = main(
            [
                "rebalance",
                portfolio_file,
                "[//stock]",
                '[//code = "GOOG"]',
                "[//stock]",
                "--fragments",
                "4",
                "--sites",
                "3",
                "--moves-only",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "workload: 3 queries" in out
        assert "predicted:" in out
        assert "answers preserved through rebalance: True" in out
        assert "measured workload traffic:" in out

    def test_default_capacity_announced(self, portfolio_file, capsys):
        main(["rebalance", portfolio_file, "[//stock]"])
        assert "defaulting to --capacity" in capsys.readouterr().out

    def test_explicit_constraints_respected(self, portfolio_file, capsys):
        code = main(
            [
                "rebalance",
                portfolio_file,
                "[//stock]",
                "--capacity",
                "100000",
                "--max-sites",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "defaulting" not in out


class TestStream:
    def test_maintains_standing_queries(self, portfolio_file, capsys):
        code = main(
            [
                "stream",
                portfolio_file,
                "[//stock]",
                '[//code = "TSLA"]',
                "--rounds",
                "4",
                "--ops",
                "2",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "standing queries" in out
        assert "round 1:" in out and "round 4:" in out
        assert "update rounds:" in out and "changefeed" in out

    def test_structural_rounds(self, portfolio_file, capsys):
        code = main(
            [
                "stream",
                portfolio_file,
                "[//stock]",
                "--rounds",
                "4",
                "--ops",
                "2",
                "--structural-every",
                "2",
                "--executor",
                "threads",
            ]
        )
        assert code == 0
        assert "dirty=" in capsys.readouterr().out

    def test_duplicates_collapse(self, portfolio_file, capsys):
        assert (
            main(
                [
                    "stream",
                    portfolio_file,
                    "[//stock]",
                    "[//stock]",
                    "--rounds",
                    "1",
                ]
            )
            == 0
        )
        assert "1 duplicates collapsed" in capsys.readouterr().out


class TestSelect:
    def test_selects_nodes(self, portfolio_file, capsys):
        assert main(["select", portfolio_file, "[//stock/code]"]) == 0
        out = capsys.readouterr().out
        assert "6 node(s) selected" in out
        assert "'GOOG'" in out

    def test_limit(self, portfolio_file, capsys):
        main(["select", portfolio_file, "[//stock/code]", "--limit", "2"])
        out = capsys.readouterr().out
        assert "... 4 more" in out

    def test_non_path_query_rejected(self, portfolio_file, capsys):
        assert main(["select", portfolio_file, "[//a and //b]"]) == 2


class TestFragment:
    def test_writes_fragments_and_manifest(self, portfolio_file, tmp_path, capsys):
        out_dir = tmp_path / "frags"
        assert (
            main(["fragment", portfolio_file, "--fragments", "3", "--out", str(out_dir)])
            == 0
        )
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["root_fragment"] == "F0"
        assert len(manifest["fragments"]) == 3
        # Every fragment file must parse back.
        for info in manifest["fragments"].values():
            parse_xml((out_dir / info["file"]).read_text())

    def test_fragments_reference_each_other(self, portfolio_file, tmp_path):
        out_dir = tmp_path / "frags"
        main(["fragment", portfolio_file, "--fragments", "4", "--out", str(out_dir)])
        manifest = json.loads((out_dir / "manifest.json").read_text())
        referenced = set()
        for info in manifest["fragments"].values():
            referenced.update(info["sub_fragments"])
        assert referenced == set(manifest["fragments"]) - {"F0"}
