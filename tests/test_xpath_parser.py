"""Unit tests for the XBL query parser."""

import pytest

from repro.xpath import parse_query, QueryParseError
from repro.xpath.ast import (
    AXIS_CHILD,
    AXIS_DESC,
    AXIS_SELF,
    TEST_LABEL,
    TEST_SELF,
    TEST_WILDCARD,
    BAnd,
    BLabelEq,
    BNot,
    BOr,
    BPath,
    BTextEq,
)
from repro.xpath.unparse import unparse_bool


class TestPaths:
    def test_relative_label(self):
        expr = parse_query("[broker]")
        assert isinstance(expr, BPath)
        (segment,) = expr.path.segments
        assert segment.axis == AXIS_CHILD
        assert segment.test == TEST_LABEL
        assert segment.label == "broker"

    def test_descendant_prefix(self):
        expr = parse_query("[//stock]")
        (segment,) = expr.path.segments
        assert segment.axis == AXIS_DESC

    def test_absolute_path_head_is_self(self):
        expr = parse_query("[/portofolio/broker]")
        first, second = expr.path.segments
        assert first.axis == AXIS_SELF
        assert second.axis == AXIS_CHILD

    def test_wildcard_and_dot(self):
        expr = parse_query("[*/.]")
        first, second = expr.path.segments
        assert first.test == TEST_WILDCARD
        assert second.test == TEST_SELF

    def test_mixed_separators(self):
        expr = parse_query("[a//b/c]")
        axes = [s.axis for s in expr.path.segments]
        assert axes == [AXIS_CHILD, AXIS_DESC, AXIS_CHILD]

    def test_qualifiers(self):
        expr = parse_query("[stock[code and sell]]")
        (segment,) = expr.path.segments
        (qualifier,) = segment.qualifiers
        assert isinstance(qualifier, BAnd)

    def test_stacked_qualifiers(self):
        expr = parse_query("[stock[code][sell]]")
        (segment,) = expr.path.segments
        assert len(segment.qualifiers) == 2


class TestComparisons:
    def test_text_comparison(self):
        expr = parse_query('[//code/text() = "GOOG"]')
        assert isinstance(expr, BTextEq)
        assert expr.value == "GOOG"
        assert expr.path.segments[-1].label == "code"

    def test_equals_sugar(self):
        sugar = parse_query('[//name = "Bache"]')
        explicit = parse_query('[//name/text() = "Bache"]')
        assert sugar == explicit

    def test_bare_text_test(self):
        expr = parse_query('[text() = "x"]')
        assert isinstance(expr, BTextEq)
        assert expr.path.is_epsilon()

    def test_descendant_text(self):
        expr = parse_query('[a//text() = "x"]')
        assert isinstance(expr, BTextEq)
        last = expr.path.segments[-1]
        assert last.axis == AXIS_DESC and last.test == TEST_SELF

    def test_label_comparison(self):
        expr = parse_query("[label() = stock]")
        assert expr == BLabelEq("stock")

    def test_label_comparison_quoted(self):
        assert parse_query('[label() = "stock"]') == BLabelEq("stock")

    def test_single_quotes(self):
        assert parse_query("[//a/text() = 'v']").value == "v"


class TestBooleanStructure:
    def test_precedence_and_binds_tighter(self):
        expr = parse_query("[a or b and c]")
        assert isinstance(expr, BOr)
        assert isinstance(expr.right, BAnd)

    def test_parentheses(self):
        expr = parse_query("[(a or b) and c]")
        assert isinstance(expr, BAnd)
        assert isinstance(expr.left, BOr)

    def test_not(self):
        expr = parse_query("[not a]")
        assert isinstance(expr, BNot)

    def test_not_with_parens(self):
        expr = parse_query("[not(a and b)]")
        assert isinstance(expr, BNot)
        assert isinstance(expr.operand, BAnd)

    def test_double_negation(self):
        expr = parse_query("[not not a]")
        assert isinstance(expr.operand, BNot)

    @pytest.mark.parametrize(
        "glyph,ascii_",
        [("[//A ∧ //B]", "[//A and //B]"), ("[//A ∨ //B]", "[//A or //B]"), ("[¬//A]", "[not //A]")],
    )
    def test_paper_glyphs(self, glyph, ascii_):
        assert parse_query(glyph) == parse_query(ascii_)

    @pytest.mark.parametrize(
        "symbol,word",
        [("[a && b]", "[a and b]"), ("[a || b]", "[a or b]"), ("[!a]", "[not a]")],
    )
    def test_c_style_operators(self, symbol, word):
        assert parse_query(symbol) == parse_query(word)

    def test_outer_brackets_optional(self):
        assert parse_query("//A and //B") == parse_query("[//A and //B]")


class TestPaperQueries:
    """The queries quoted in the paper must parse."""

    @pytest.mark.parametrize(
        "text",
        [
            "[//A ∧ //B]",
            '[//stock[code = "goog" ∧ sell = "376"]]',
            '[//broker[//stock/code/text() = "goog" ∧ ¬(//stock/code/text() = "yhoo")]]',
            '[//stock[code/text() = "yhoo"]]',
            '[/portofolio/broker/name = "Merill Lynch"]',
        ],
    )
    def test_parses(self, text):
        parse_query(text)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "[",
            "[a",
            "[a]]",
            "[a and]",
            "[and a]",
            "[a[]]",
            "[//]",
            "[a/text()]",  # text() requires a comparison
            '[label() = ]',
            "[a = b = c]",
            "[(a]",
            "[a?b]",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)

    def test_error_position(self):
        with pytest.raises(QueryParseError) as exc:
            parse_query("[a and ]")
        assert exc.value.position > 0


class TestUnparseRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "[//A and //B]",
            '[//stock[code/text() = "yhoo"]]',
            "[not(a or b) and c//d]",
            '[/portofolio/broker/name = "Merill Lynch"]',
            "[label() = stock]",
            '[text() = "x"]',
            "[*/.[a]]",
        ],
    )
    def test_round_trip(self, text):
        expr = parse_query(text)
        assert parse_query(unparse_bool(expr)) == expr
