"""Tests for the experiment harness (reporting, experiments, checks)."""

import pytest

from repro.bench import BenchConfig, ExperimentResult, render_results
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    ablation_algebra,
    fig4_validation,
    fig13_frags_per_site,
    sec5_incremental,
)
from repro.bench.shape_checks import CHECKS


@pytest.fixture(scope="module")
def quick():
    return BenchConfig.quick()


class TestReporting:
    def test_add_and_read_rows(self):
        result = ExperimentResult("x", "t", "n", ["a", "b"])
        result.add_row(1, a=0.5, b=2)
        result.add_row(2, a=0.25, b=4)
        assert result.xs() == [1, 2]
        assert result.column("a") == [0.5, 0.25]
        assert result.column("b") == [2, 4]

    def test_render_contains_everything(self):
        result = ExperimentResult("fig0", "demo table", "n", ["a"])
        result.add_row(1, a=0.5)
        result.note("a note")
        text = result.render()
        assert "fig0" in text and "demo table" in text
        assert "0.5000" in text
        assert "note: a note" in text

    def test_render_formats(self):
        result = ExperimentResult("x", "t", "n", ["f", "i", "s", "b"])
        result.add_row(0, f=1.23456, i=42, s="label", b=True)
        text = result.render()
        assert "1.2346" in text and "42" in text and "label" in text and "yes" in text

    def test_render_results_joins(self):
        one = ExperimentResult("a", "t", "n", ["c"])
        two = ExperimentResult("b", "t", "n", ["c"])
        assert "== a" in render_results([one, two])
        assert "== b" in render_results([one, two])


class TestConfig:
    def test_quick_smaller_than_default(self):
        assert BenchConfig.quick().nodes_per_mb < BenchConfig.default().nodes_per_mb
        assert BenchConfig.quick().iterations < BenchConfig.default().iterations

    def test_timed_returns_best(self, quick):
        from repro.core import ParBoXEngine
        from repro.workloads.queries import query_of_size
        from repro.workloads.topologies import star_ft1

        cluster = quick.with_network(star_ft1(2, 1.0, seed=80, nodes_per_mb=20))
        result = quick.timed(ParBoXEngine(cluster), query_of_size(8))
        assert result.answer in (True, False)
        assert result.elapsed_seconds > 0

    def test_with_network_swaps_model(self, quick):
        from repro.workloads.topologies import star_ft1

        cluster = star_ft1(2, 1.0, seed=81, nodes_per_mb=20)
        quick.with_network(cluster)
        assert cluster.network is quick.network


class TestExperimentsQuickScale:
    """Every experiment must produce a well-formed result quickly."""

    @pytest.mark.parametrize(
        "experiment_id,runner", ALL_EXPERIMENTS, ids=[e[0] for e in ALL_EXPERIMENTS]
    )
    def test_runs_and_fills_all_columns(self, experiment_id, runner, quick):
        result = runner(quick)
        assert result.experiment_id == experiment_id
        assert result.rows, "experiments must produce rows"
        for _, values in result.rows:
            for column in result.columns:
                assert column in values, (experiment_id, column)

    def test_every_experiment_has_a_shape_check(self):
        for experiment_id, _ in ALL_EXPERIMENTS:
            assert experiment_id in CHECKS


class TestShapeClaimsRobustAtQuickScale:
    """A few structural claims hold even at miniature scale."""

    def test_fig4_visit_patterns(self, quick):
        result = fig4_validation(quick)
        rows = {x: values for x, values in result.rows}
        assert rows["ParBoX"]["max_visits_per_site"] == 1
        assert rows["NaiveDistributed"]["max_visits_per_site"] == 2

    def test_fig13_visits_flat(self, quick):
        result = fig13_frags_per_site(quick)
        assert all(v == 1 for v in result.column("visits"))

    def test_sec5_traffic_constant(self, quick):
        result = sec5_incremental(quick)
        maint = result.column("maint_bytes")
        assert max(maint) <= min(maint) * 1.5 + 64

    def test_stream_claims_deterministic_at_quick_scale(self, quick):
        # Stream maintenance costs are exact (no latency noise), so the
        # full shape check must hold even at miniature scale.
        from repro.bench.experiments import stream_maintenance
        from repro.bench.shape_checks import check_stream

        result = stream_maintenance(quick)
        checks = check_stream(result)
        failed = [claim for claim, passed in checks.items() if not passed]
        assert not failed, failed

    def test_ablation_blowup_visible(self, quick):
        result = ablation_algebra(quick)
        assert result.column("paper_bytes")[-1] > result.column("canonical_bytes")[-1]

    def test_placement_claims_deterministic_at_quick_scale(self, quick):
        # Placement costs are exact byte/term counters (no latency
        # noise), so the full shape check -- optimizer strictly beats
        # balanced-random, predictions rank truthfully, live rebalance
        # preserves answers -- must hold even at miniature scale.
        from repro.bench.experiments import placement_optimizer
        from repro.bench.shape_checks import check_placement

        result = placement_optimizer(quick)
        checks = check_placement(result)
        failed = [claim for claim, passed in checks.items() if not passed]
        assert not failed, failed

    def test_batching_shape_holds_at_quick_scale(self, quick):
        # Unlike the timing-based figures, the batching curve is built
        # from deterministic byte/visit counters, so the full shape
        # check must pass even at miniature scale.
        from repro.bench.experiments import batching_amortization
        from repro.bench.shape_checks import check_batching

        result = batching_amortization(quick)
        checks = check_batching(result)
        failed = [claim for claim, passed in checks.items() if not passed]
        assert not failed, failed


class TestCliRunner:
    def test_main_quick_subset(self, capsys):
        from repro.bench.__main__ import main

        code = main(["--quick", "--no-checks", "fig13"])
        out = capsys.readouterr().out
        assert "fig13" in out
        assert code == 0

    def test_unknown_experiment_is_noop(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--quick", "nonexistent"]) == 0
        assert "==" not in capsys.readouterr().out
