"""Cross-oracle agreement: denotational semantics vs the QList pipeline.

The denotational evaluator interprets the surface AST directly; the
production pipeline normalizes, compiles to QList and runs the vector
evaluator.  Agreement over random trees and queries validates the
normalization rules themselves -- the one component a single shared
oracle could never check.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import evaluate_tree, select_centralized
from repro.workloads.portfolio import PORTFOLIO_QUERIES, build_portfolio_tree
from repro.workloads.queries import random_query
from repro.xpath import compile_query, parse_query
from repro.xpath.denotational import (
    eval_bool,
    eval_path,
    node_index_path,
    selected_nodes,
)
from tests.test_properties import LABELS, build_random_tree, valid_random_query


class TestHandCases:
    @pytest.fixture
    def tree(self):
        return build_portfolio_tree()

    @pytest.mark.parametrize(
        "query,expected",
        [
            ("[//stock]", True),
            ("[stock]", False),
            ("[broker/market/stock]", True),
            ('[//code/text() = "IBM"]', True),
            ('[//code = "MSFT"]', False),
            ("[label() = portofolio]", True),
            ("[not //zzz]", True),
            ("[//broker[market[stock]]]", True),
            ("[.]", True),
        ],
    )
    def test_truth(self, tree, query, expected):
        assert eval_bool(parse_query(query), tree.root) is expected

    def test_paper_queries(self, tree):
        expected = {
            "goog_sell_376": False,
            "goog_not_yhoo": True,
            "yhoo": True,
            "merill": True,
        }
        for name, text in PORTFOLIO_QUERIES.items():
            assert eval_bool(parse_query(text), tree.root) == expected[name], name

    def test_path_node_sets(self, tree):
        expr = parse_query("[//stock]")
        stocks = eval_path(expr.path, tree.root)
        assert len(stocks) == 6
        assert all(node.label == "stock" for node in stocks)

    def test_document_order(self, tree):
        expr = parse_query("[//code]")
        codes = [node.text for node in eval_path(expr.path, tree.root)]
        assert codes == ["IBM", "HPQ", "AAPL", "GOOG", "YHOO", "GOOG"]

    def test_virtual_nodes_rejected(self):
        from repro.xmltree import XMLNode, element

        root = element("a")
        root.add_child(XMLNode.virtual("F1"))
        assert eval_bool(parse_query("[//b]"), root) is False  # skipped, not crashed
        with pytest.raises(ValueError):
            eval_bool(parse_query("[.]"), root.children[0])


class TestCrossOracleAgreement:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_boolean_agreement(self, seed):
        rng = random.Random(seed)
        tree = build_random_tree(rng)
        text = valid_random_query(rng)
        expr = parse_query(text)
        qlist = compile_query(text)
        pipeline, _ = evaluate_tree(tree, qlist)
        denotational = eval_bool(expr, tree.root)
        assert pipeline == denotational, text

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_selection_agreement(self, seed):
        rng = random.Random(seed)
        tree = build_random_tree(rng)
        depth = rng.randint(1, 3)
        pieces = []
        for index in range(depth):
            sep = rng.choice(["/", "//"]) if index else rng.choice(["", "//"])
            pieces.append(sep + rng.choice(LABELS + ("*",)))
        text = "[" + "".join(pieces) + "]"
        expr = parse_query(text)
        qlist = compile_query(text)
        pipeline_paths = select_centralized(tree, qlist)
        denotational_paths = tuple(
            sorted(node_index_path(node) for node in selected_nodes(expr, tree.root))
        )
        assert pipeline_paths == denotational_paths, text

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_union_selection_agreement(self, seed):
        rng = random.Random(seed)
        tree = build_random_tree(rng)
        a, b = rng.choice(LABELS), rng.choice(LABELS)
        text = f"[//{a} or {b}/*]"
        expr = parse_query(text)
        qlist = compile_query(text)
        pipeline_paths = select_centralized(tree, qlist)
        denotational_paths = tuple(
            sorted(node_index_path(node) for node in selected_nodes(expr, tree.root))
        )
        assert pipeline_paths == denotational_paths, text


class TestSelectedNodesValidation:
    def test_non_path_rejected(self):
        tree = build_portfolio_tree()
        with pytest.raises(ValueError):
            selected_nodes(parse_query("[not //a]"), tree.root)

    def test_union_dedup(self):
        tree = build_portfolio_tree()
        expr = parse_query("[//stock or //stock]")
        assert len(selected_nodes(expr, tree.root)) == 6

    def test_node_index_path_of_root(self):
        tree = build_portfolio_tree()
        assert node_index_path(tree.root) == ()
