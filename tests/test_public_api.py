"""Public-API integrity: exports exist, are documented, and stay stable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.xmltree",
    "repro.xpath",
    "repro.boolexpr",
    "repro.fragments",
    "repro.distsim",
    "repro.core",
    "repro.views",
    "repro.workloads",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} must declare __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_package_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_callables_documented(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"


class TestEveryModuleImports:
    def test_walk_all_modules(self):
        failures = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            try:
                importlib.import_module(info.name)
            except Exception as error:  # pragma: no cover - report below
                failures.append((info.name, error))
        assert not failures, failures


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestPublicClassesDocumentMethods:
    @pytest.mark.parametrize(
        "cls_path",
        [
            "repro.xmltree.node.XMLNode",
            "repro.xmltree.tree.XMLTree",
            "repro.xpath.qlist.QList",
            "repro.boolexpr.equations.BooleanEquationSystem",
            "repro.fragments.fragment.FragmentedTree",
            "repro.fragments.source_tree.SourceTree",
            "repro.distsim.cluster.Cluster",
            "repro.core.vectors.VectorTriplet",
            "repro.views.materialized.MaterializedView",
            "repro.views.registry.SubscriptionRegistry",
        ],
    )
    def test_public_methods_have_docstrings(self, cls_path):
        module_name, cls_name = cls_path.rsplit(".", 1)
        cls = getattr(importlib.import_module(module_name), cls_name)
        undocumented = [
            name
            for name, member in inspect.getmembers(cls, inspect.isfunction)
            if not name.startswith("_") and not member.__doc__
        ]
        assert not undocumented, f"{cls_path}: undocumented methods {undocumented}"


class TestExamplesAreRunnableModules:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart",
            "stock_portfolio",
            "pubsub_filtering",
            "temporal_versions",
            "distributed_selection",
        ],
    )
    def test_example_has_main(self, script, tmp_path):
        import pathlib
        import sys

        examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples))
        try:
            module = importlib.import_module(script)
            assert hasattr(module, "main")
            assert module.__doc__
        finally:
            sys.path.remove(str(examples))
            for name in list(sys.modules):
                if name == script:
                    del sys.modules[name]
