"""The placement layer: catalog, workload, optimizer, rebalancer.

Covers the tentpole claims piece by piece:

* the catalog's functional move/split/merge mirrors what really
  happens to a cluster;
* workload-weighted estimates prefer co-location with the coordinator
  and respect the capacity penalty;
* the optimizer improves its own objective, never touches the input
  cluster, and its plans enact cleanly -- offline and live under a
  standing query book, bitwise answer-stable throughout;
* ``MoveFragment`` dirties nothing, migrates everything, and is
  metered.
"""

import pytest

from repro.core import ParBoXEngine, QuerySession
from repro.core.estimates import Catalog, estimate_workload
from repro.distsim import Cluster
from repro.distsim.runtime import MSG_MIGRATE
from repro.fragments import Placement, split_candidates
from repro.placement import (
    Constraints,
    MergeAction,
    MoveAction,
    RebalancePlan,
    SplitAction,
    Workload,
    balanced_random_placement,
    enact_plan,
    optimize_placement,
    profile_update_stream,
)
from repro.stream import MoveFragment, StreamMaintainer, apply_updates
from repro.stream.updates import UpdateError
from repro.workloads.topologies import bushy_ft3, star_ft1


@pytest.fixture
def cluster():
    return star_ft1(5, 0.8, seed=11, nodes_per_mb=24)


@pytest.fixture
def bushy():
    base = bushy_ft3(0, seed=11, nodes_per_mb=24)
    placement = balanced_random_placement(
        base.fragmented_tree, ["S0", "S1", "S2", "S3"], seed=1
    )
    return Cluster(base.fragmented_tree, placement)


# ---------------------------------------------------------------------------
# MoveFragment (the new update op)
# ---------------------------------------------------------------------------


class TestMoveFragment:
    def test_move_migrates_without_dirtying(self, cluster):
        nbytes = cluster.fragment("F2").wire_bytes()
        batch = apply_updates(cluster, [MoveFragment("F2", "S0")])
        assert batch.dirty == ()
        assert batch.structural
        assert cluster.site_of("F2") == "S0"
        (migration,) = batch.migrations
        assert migration.fragment_id == "F2"
        assert (migration.origin, migration.target) == ("S2", "S0")
        assert migration.nbytes == nbytes == batch.migration_bytes

    def test_move_to_same_site_is_noop(self, cluster):
        origin = cluster.site_of("F2")
        batch = apply_updates(cluster, [MoveFragment("F2", origin)])
        assert batch.migrations == () and batch.dirty == ()

    def test_move_unknown_fragment_raises(self, cluster):
        with pytest.raises(UpdateError):
            apply_updates(cluster, [MoveFragment("F99", "S0")])

    def test_move_opens_fresh_site(self, cluster):
        apply_updates(cluster, [MoveFragment("F3", "S-new")])
        assert "S-new" in [site.site_id for site in cluster.sites()]
        assert cluster.source_tree().site_of("F3") == "S-new"

    def test_move_preserves_answers(self, cluster):
        engine = ParBoXEngine(cluster)
        before = engine.evaluate_many(["[//bidder]", "[//seal]"]).answers
        apply_updates(cluster, [MoveFragment("F1", "S3"), MoveFragment("F4", "S0")])
        assert engine.evaluate_many(["[//bidder]", "[//seal]"]).answers == before

    def test_maintainer_meters_migration(self, cluster):
        maintainer = StreamMaintainer(cluster)
        maintainer.subscribe("q", "[//bidder]")
        before = maintainer.answers()
        round_ = maintainer.apply([MoveFragment("F2", "S0")])
        assert round_.migration_bytes > 0
        assert round_.metrics.migration_bytes == round_.migration_bytes
        assert round_.metrics.migration_visits == 2
        assert round_.metrics.bytes_by_kind[MSG_MIGRATE] == round_.migration_bytes
        # Nothing recomputed, nothing re-solved, nothing flipped.
        assert round_.nodes_recomputed == 0
        assert round_.segments_resolved == 0
        assert maintainer.answers() == before
        maintainer.close()


# ---------------------------------------------------------------------------
# Catalog: the metadata mirror
# ---------------------------------------------------------------------------


class TestCatalog:
    def test_snapshot_matches_cluster(self, cluster):
        catalog = Catalog.from_cluster(cluster)
        assert catalog.sizes == {
            fid: f.size() for fid, f in cluster.fragmented_tree.fragments.items()
        }
        assert catalog.coordinator == cluster.coordinator_site
        assert sorted(catalog.sites()) == sorted(
            site.site_id for site in cluster.sites()
        )
        loads = catalog.site_loads()
        assert sum(loads.values()) == cluster.total_size()

    def test_with_move_mirrors_cluster_move(self, cluster):
        catalog = Catalog.from_cluster(cluster).with_move("F2", "S0")
        cluster.move_fragment("F2", "S0")
        assert catalog.site_loads() == Catalog.from_cluster(cluster).site_loads()

    def test_with_merge_mirrors_cluster_merge(self, cluster):
        catalog = Catalog.from_cluster(cluster).with_merge("F0", "F2")
        virtual = next(
            node
            for node in cluster.fragment("F0").virtual_nodes()
            if node.fragment_ref == "F2"
        )
        cluster.merge_fragment("F0", virtual)
        mirrored = Catalog.from_cluster(cluster)
        assert catalog.sizes == mirrored.sizes
        assert catalog.children == mirrored.children
        assert catalog.site_loads() == mirrored.site_loads()

    def test_with_split_mirrors_cluster_split(self, cluster):
        fragment = cluster.fragment("F1")
        (candidate, *_) = split_candidates(fragment, limit=1)
        catalog = Catalog.from_cluster(cluster).with_split(
            "F1",
            "F9",
            candidate.subtree_size,
            candidate.subtree_bytes,
            candidate.moved_sub_fragments,
            target_site="S4",
        )
        node = fragment.node_by_id(candidate.node_id)
        cluster.split_fragment("F1", node, "F9", target_site="S4")
        mirrored = Catalog.from_cluster(cluster)
        assert catalog.sizes == mirrored.sizes
        assert catalog.children == mirrored.children
        assert catalog.site_of == mirrored.site_of


# ---------------------------------------------------------------------------
# Workload + estimates
# ---------------------------------------------------------------------------


class TestWorkload:
    def test_duplicates_fold_into_weights(self):
        workload = Workload.from_queries(["[//a]", "[//b]", "[//a]", "[//a]"])
        weights = {q.source: w for q, w in workload.queries}
        assert weights == {"[//a]": 3.0, "[//b]": 1.0}
        assert len(workload) == 2

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_queries([])

    def test_profile_never_mutates_the_cluster(self, cluster):
        size_before = cluster.total_size()
        card_before = cluster.card()
        rates = profile_update_stream(cluster, rounds=6, seed=3, structural_every=2)
        assert cluster.total_size() == size_before
        assert cluster.card() == card_before
        assert rates and all(rate > 0 for rate in rates.values())
        assert set(rates) <= set(cluster.fragmented_tree.fragments)

    def test_colocated_fragments_cost_nothing(self, cluster):
        mix = (( 8, 1.0),)
        remote = estimate_workload(Catalog.from_cluster(cluster), mix, {"F2": 5.0})
        for fragment_id in list(cluster.fragmented_tree.fragments):
            cluster.move_fragment(fragment_id, cluster.coordinator_site)
        merged = estimate_workload(Catalog.from_cluster(cluster), mix, {"F2": 5.0})
        assert remote.total() > 0
        assert merged.total() == 0.0

    def test_update_rates_raise_remote_cost(self, cluster):
        catalog = Catalog.from_cluster(cluster)
        mix = ((8, 1.0),)
        cold = estimate_workload(catalog, mix, {})
        hot = estimate_workload(catalog, mix, {"F2": 5.0})
        assert hot.total() > cold.total()
        assert hot.query_terms == cold.query_terms


# ---------------------------------------------------------------------------
# The optimizer
# ---------------------------------------------------------------------------


class TestOptimizer:
    def test_unconstrained_optimum_is_full_colocation(self, cluster):
        workload = Workload.from_queries(["[//bidder]"], migration_weight=0.0)
        plan = optimize_placement(cluster, workload)
        assert plan.after.total() == 0.0
        assert len(set(plan.assignment.values())) == 1

    def test_capacity_bounds_the_plan(self, bushy):
        capacity = int(bushy.total_size() / 4 * 1.5)
        workload = Workload.from_queries(["[//bidder]", "[//item]"])
        plan = optimize_placement(
            bushy, workload, Constraints(site_capacity=capacity, max_sites=4)
        )
        assert plan.after.max_site_load <= capacity
        assert plan.after.total() <= plan.before.total()

    def test_search_leaves_cluster_untouched(self, bushy):
        assignment = dict(bushy.placement.items())
        card = bushy.card()
        workload = Workload.from_queries(["[//bidder]"], update_rates={"F4": 3.0})
        optimize_placement(bushy, workload, Constraints(site_capacity=500, max_sites=4))
        assert dict(bushy.placement.items()) == assignment
        assert bushy.card() == card

    def test_hot_fragment_attracts_colocation(self):
        # Equal-size star, capacity for exactly one extra fragment at the
        # coordinator: the optimizer must pick the hot one.
        cluster = star_ft1(5, 0.8, seed=11, nodes_per_mb=24)
        capacity = cluster.fragment("F0").size() + cluster.fragment("F3").size() + 1
        workload = Workload.from_queries(
            ["[//bidder]"], update_rates={"F3": 50.0}, migration_weight=0.0
        )
        plan = optimize_placement(
            cluster,
            workload,
            Constraints(site_capacity=capacity, allow_splits=False, allow_merges=False),
        )
        # Either F3 joins the coordinator, or the coordinator (the root
        # fragment) moves to F3 -- both co-locate the hot fragment with
        # the solver and kill its maintenance traffic.
        assert plan.assignment["F3"] == plan.assignment["F0"]

    def test_plan_ops_round_trip(self, bushy):
        workload = Workload.from_queries(["[//bidder]"], update_rates={"F4": 2.0})
        plan = optimize_placement(
            bushy,
            workload,
            Constraints(site_capacity=int(bushy.total_size() * 0.6), max_sites=4),
        )
        assert not plan.is_noop()
        enact_plan(plan, cluster=bushy)
        # Moves-only parts of the assignment must now be live; split
        # fragments exist under their planned ids.
        for fragment_id, site in plan.assignment.items():
            assert bushy.site_of(fragment_id) == site
        assert plan.describe()

    def test_infeasible_start_gets_repaired(self, cluster):
        # Pile everything onto one site, then cap it: the optimizer must
        # spread the load even though that *raises* steady-state traffic.
        for fragment_id in list(cluster.fragmented_tree.fragments):
            cluster.move_fragment(fragment_id, "S0")
        capacity = int(cluster.total_size() * 0.6)
        workload = Workload.from_queries(["[//bidder]"])
        plan = optimize_placement(
            cluster, workload, Constraints(site_capacity=capacity, max_sites=3)
        )
        assert plan.before.max_site_load > capacity
        assert plan.after.max_site_load <= capacity

    def test_enact_requires_exactly_one_target(self, cluster):
        workload = Workload.from_queries(["[//bidder]"])
        plan = optimize_placement(cluster, workload)
        with pytest.raises(ValueError):
            enact_plan(plan)
        with pytest.raises(ValueError):
            enact_plan(plan, cluster=cluster, maintainer=StreamMaintainer(cluster))

    def test_noop_plan_enacts_to_nothing(self, cluster):
        # Fully co-located already: nothing to improve.
        for fragment_id in list(cluster.fragmented_tree.fragments):
            cluster.move_fragment(fragment_id, "S0")
        workload = Workload.from_queries(["[//bidder]"])
        plan = optimize_placement(cluster, workload)
        assert plan.is_noop()
        outcome = enact_plan(plan, cluster=cluster)
        assert outcome.migrations == () and not outcome.live


# ---------------------------------------------------------------------------
# Balanced-random baseline
# ---------------------------------------------------------------------------


class TestBalancedRandom:
    def test_deterministic_and_balanced(self, bushy):
        tree = bushy.fragmented_tree
        a = balanced_random_placement(tree, ["A", "B"], seed=5)
        b = balanced_random_placement(tree, ["A", "B"], seed=5)
        assert dict(a.items()) == dict(b.items())
        loads = {"A": 0, "B": 0}
        for fragment_id, site in a.items():
            loads[site] += tree.fragments[fragment_id].size()
        assert max(loads.values()) <= 0.7 * tree.total_size()

    def test_different_seeds_differ(self, bushy):
        tree = bushy.fragmented_tree
        sites = ["A", "B", "C"]
        assignments = {
            tuple(sorted(balanced_random_placement(tree, sites, seed=s).items()))
            for s in range(4)
        }
        assert len(assignments) > 1


# ---------------------------------------------------------------------------
# Live rebalance through the session
# ---------------------------------------------------------------------------


class TestSessionRebalance:
    QUERIES = ["[//bidder]", "[//seal]", '[//probe = "on"]', "[//bidder]"]

    def test_live_rebalance_preserves_watch_answers(self, bushy):
        capacity = int(bushy.total_size() / 4 * 1.9)
        with QuerySession(bushy, engine="parbox") as session:
            watch = session.watch(self.QUERIES)
            before = watch.answers()
            outcome = session.rebalance(
                queries=self.QUERIES,
                update_rates={"F4": 4.0},
                maintainer=watch,
                constraints=Constraints(site_capacity=capacity, max_sites=4),
            )
            assert outcome.live
            assert watch.answers() == before
            # And the live book still agrees with from-scratch evaluation.
            scratch = session.evaluate_batch(self.QUERIES).answers
            assert tuple(watch.answers().values()) == scratch
            assert tuple(before.values()) == scratch
            watch.close()

    def test_offline_rebalance_mutates_cluster(self, bushy):
        with QuerySession(bushy, engine="parbox") as session:
            outcome = session.rebalance(queries=self.QUERIES)
            assert not outcome.live
            for fragment_id, site in outcome.plan.assignment.items():
                assert bushy.site_of(fragment_id) == site

    def test_workload_and_queries_are_exclusive(self, bushy):
        workload = Workload.from_queries(self.QUERIES)
        with QuerySession(bushy, engine="parbox") as session:
            with pytest.raises(ValueError):
                session.rebalance(queries=self.QUERIES, workload=workload)
            with pytest.raises(ValueError):
                session.rebalance()


# ---------------------------------------------------------------------------
# Plan value object
# ---------------------------------------------------------------------------


class TestPlanObject:
    def test_action_descriptions_and_ops(self):
        move = MoveAction("F1", "S2")
        split = SplitAction("F1", 7, "F9", "S3", subtree_size=10)
        merge = MergeAction("F0", "F1")
        assert "move" in move.describe() and move.to_op().fragment_id == "F1"
        assert split.to_op().new_fragment_id == "F9"
        assert merge.to_op().child_fragment_id == "F1"
        plan = RebalancePlan(
            actions=(move, split, merge),
            before=estimate_workload(
                Catalog(
                    sizes={"F0": 1},
                    children={"F0": ()},
                    site_of={"F0": "S0"},
                    wire_bytes={"F0": 10},
                    root_fragment_id="F0",
                ),
                ((2, 1.0),),
            ),
            after=estimate_workload(
                Catalog(
                    sizes={"F0": 1},
                    children={"F0": ()},
                    site_of={"F0": "S0"},
                    wire_bytes={"F0": 10},
                    root_fragment_id="F0",
                ),
                ((2, 1.0),),
            ),
            assignment={"F0": "S0"},
        )
        assert len(plan) == 3
        assert len(plan.to_ops()) == 3
        assert "1." in plan.describe()
