"""Unit tests for the hash-consed formula pool and its derived caches."""

import pickle

from repro.boolexpr import (
    FALSE,
    TRUE,
    And,
    BooleanEquationSystem,
    Const,
    Not,
    Or,
    Var,
    make_and,
    make_not,
    make_or,
)
from repro.boolexpr.formula import pool_stats


class TestInterning:
    def test_vars_are_interned(self):
        assert Var("F1", "V", 3) is Var("F1", "V", 3)
        assert Var("F1", "V", 3) is not Var("F1", "DV", 3)

    def test_consts_are_singletons(self):
        assert Const(True) is TRUE
        assert Const(False) is FALSE
        assert ~TRUE is FALSE

    def test_connectives_are_interned(self):
        x, y = Var("F1", "V", 0), Var("F1", "V", 1)
        assert make_and(x, y) is make_and(x, y)
        assert make_or(x, y) is make_or(y, x)  # canonical order first
        assert make_not(x) is make_not(x)
        assert Not(x) is Not(x)  # raw constructors intern too
        assert And((x, y)) is And((x, y))
        assert Or((x, y)) is Or((x, y))

    def test_structural_equality_is_identity_in_process(self):
        x, y, z = (Var("F", "V", i) for i in range(3))
        left = make_or(make_and(x, y), ~z)
        right = make_or(~z, make_and(y, x))
        assert left is right

    def test_paper_shapes_intern_without_canonicalizing(self):
        x = Var("F", "V", 0)
        duplicated = And((x, x))  # the paper-literal algebra can build this
        assert duplicated is And((x, x))
        assert len(duplicated.children) == 2  # not deduplicated

    def test_pool_stats_counts_live_formulas(self):
        x = Var("Fstats", "V", 99)
        kept = make_not(x)
        stats = pool_stats()
        assert stats["var"] >= 1 and stats["not"] >= 1
        assert kept is make_not(x)


class TestDerivedCaches:
    def test_variables_computed_once_and_shared(self):
        x, y = Var("F1", "V", 0), Var("F2", "CV", 5)
        formula = make_and(x, y)
        first = formula.variables()
        assert first == {x, y}
        assert formula.variables() is first  # cached frozenset

    def test_size_cached(self):
        x, y = Var("F1", "V", 0), Var("F1", "V", 1)
        formula = make_and(x, make_or(x, y))
        assert formula.size() == formula.size() == 5

    def test_sort_key_stable_under_interning(self):
        x, y = Var("F1", "V", 0), Var("F1", "V", 1)
        assert make_and(x, y).sort_key() == make_and(y, x).sort_key()


class TestPickling:
    def test_round_trip_reinterns(self):
        x, y, z = (Var("F", "V", i) for i in range(3))
        for formula in (TRUE, FALSE, x, ~x, x & y, (x & y) | ~z, And((x, x))):
            clone = pickle.loads(pickle.dumps(formula))
            assert clone is formula  # unpickling lands in the pool

    def test_cross_structure_sharing_survives(self):
        x = Var("F", "V", 0)
        shared = make_not(x)
        pair = pickle.loads(pickle.dumps((shared, make_or(shared, Var("F", "V", 1)))))
        assert pair[0] is shared
        assert pair[0] in pair[1].children


class TestSolverMemoSharing:
    def test_memo_shared_across_reads(self):
        system = BooleanEquationSystem()
        a, b, c = (Var("F", "V", i) for i in range(3))
        shared = make_or(b, c)
        system.define(a, shared)
        system.define(b, TRUE)
        system.define(c, shared.substitute({b: FALSE, c: FALSE}) | FALSE)  # FALSE
        assert system.value_of(a) is True
        # Second read hits the formula memo (observable: no exception on
        # re-read, identical result, memo keyed by the interned formula).
        assert system.evaluate(shared) is True
        assert system._memo[shared] is True

    def test_memo_cleared_on_new_definition(self):
        system = BooleanEquationSystem()
        a = Var("F", "V", 0)
        system.define(a, TRUE)
        assert system.value_of(a) is True
        system.define(Var("F", "V", 1), FALSE)
        assert system._memo == {}
        assert system.value_of(a) is True
