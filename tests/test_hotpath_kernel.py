"""Property tests: the bitset ground-path kernel is bitwise-invisible.

The contract of ``bottom_up``'s kernel switch: ``kernel="auto"`` (the
bitset fast path plus formula fallback) and ``kernel="formula"`` (the
classic algebra everywhere) return **identical** triplets and identical
deterministic cost ledgers, for every fragment shape, query, algebra,
engine and executor -- including under ``StreamMaintainer.apply``
update rounds.  Because the simulated byte/op accounting is derived
from the triplets, bitwise triplet equality is what keeps every
benchmark shape check's exact numbers unchanged by the optimization.
"""

import random
import sys

import pytest
from test_properties import (
    build_random_tree,
    random_fragmentation,
    random_placement,
    valid_random_query,
)

import repro.core.bottom_up  # noqa: F401 - materializes the sys.modules entry

from repro.boolexpr import PaperAlgebra
from repro.core import ENGINE_REGISTRY, bottom_up
from repro.stream import StreamMaintainer
from repro.workloads.topologies import star_ft1
from repro.workloads.updates import update_stream
from repro.xpath import compile_query

#: The module object (``repro.core`` re-exports the *function* under the
#: same name, so plain attribute access would find the function).
bu_module = sys.modules["repro.core.bottom_up"]

ENGINES = ["parbox", "fulldist", "lazy", "hybrid"]
EXECUTORS = ["serial", "threads", "process"]


def _assert_identical(auto, formula):
    auto_triplet, auto_stats = auto
    formula_triplet, formula_stats = formula
    assert auto_triplet == formula_triplet
    assert auto_triplet.wire_bytes() == formula_triplet.wire_bytes()
    assert auto_stats.nodes_visited == formula_stats.nodes_visited
    assert auto_stats.qlist_ops == formula_stats.qlist_ops


class TestKernelAgreementDirect:
    """bottom_up(auto) == bottom_up(formula), fragment by fragment."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_topologies_both_algebras(self, seed):
        rng = random.Random(seed)
        tree = build_random_tree(rng)
        ftree = random_fragmentation(rng, tree)
        queries = [compile_query(valid_random_query(rng)) for _ in range(3)]
        for algebra in (None, PaperAlgebra()):
            for fragment in ftree.fragments.values():
                for qlist in queries:
                    _assert_identical(
                        bottom_up(fragment, qlist, algebra, kernel="auto"),
                        bottom_up(fragment, qlist, algebra, kernel="formula"),
                    )

    def test_unknown_kernel_rejected(self):
        rng = random.Random(0)
        tree = build_random_tree(rng, max_nodes=3)
        ftree = random_fragmentation(rng, tree)
        fragment = next(iter(ftree.fragments.values()))
        with pytest.raises(ValueError):
            bottom_up(fragment, compile_query("[a]"), kernel="simd")

    def test_virtual_heavy_fragment_falls_back(self):
        """Every child virtual: the fast path bails, results still agree."""
        from repro.fragments import Fragment
        from repro.xmltree import XMLNode

        root = XMLNode("a")
        for index in range(4):
            root.add_child(XMLNode.virtual(f"F{index}"))
        fragment = Fragment("Fx", root)
        qlist = compile_query("[//b or not(a)]")
        _assert_identical(
            bottom_up(fragment, qlist, kernel="auto"),
            bottom_up(fragment, qlist, kernel="formula"),
        )


class TestKernelAgreementEngines:
    """Full engine runs: auto kernel vs the formula-kernel oracle."""

    @pytest.mark.parametrize("engine_name", ENGINES)
    @pytest.mark.parametrize("executor_name", EXECUTORS)
    def test_answers_and_ledger_bitwise(
        self, engine_name, executor_name, monkeypatch, seed=5
    ):
        rng = random.Random(seed)
        tree = build_random_tree(rng)
        ftree = random_fragmentation(rng, tree)
        cluster = random_placement(rng, ftree)
        texts = [valid_random_query(rng) for _ in range(4)]
        engine_cls = ENGINE_REGISTRY[engine_name]

        with engine_cls(cluster, executor=executor_name) as engine:
            auto = engine.evaluate_many(texts)
        monkeypatch.setattr(bu_module, "DEFAULT_KERNEL", "formula")
        with engine_cls(cluster, executor="serial") as oracle_engine:
            oracle = oracle_engine.evaluate_many(texts)

        assert auto.answers == oracle.answers
        assert auto.metrics.bytes_total == oracle.metrics.bytes_total
        assert auto.metrics.qlist_ops == oracle.metrics.qlist_ops
        assert auto.metrics.nodes_processed == oracle.metrics.nodes_processed


class TestKernelAgreementStream:
    """StreamMaintainer.apply rounds: auto vs formula maintainers."""

    @pytest.mark.parametrize("executor_name", EXECUTORS)
    def test_update_rounds_bitwise(self, executor_name, monkeypatch):
        queries = ["[//bidder]", "[//seal]", '[//item[price = "17"]]', "[//bidder]"]

        def run(kernel_name):
            monkeypatch.setattr(bu_module, "DEFAULT_KERNEL", kernel_name)
            cluster = star_ft1(4, 0.6, seed=11, nodes_per_mb=24)
            executor = executor_name if kernel_name == "auto" else "serial"
            rounds = []
            with StreamMaintainer(cluster, executor=executor) as maintainer:
                answers = [
                    maintainer.subscribe(f"q{i}", text)
                    for i, text in enumerate(queries)
                ]
                for batch in update_stream(
                    cluster, rounds=6, ops_per_round=3, seed=11, structural_every=3
                ):
                    round_ = maintainer.apply(batch)
                    rounds.append(
                        (
                            round_.traffic_bytes,
                            round_.nodes_recomputed,
                            round_.slices_shipped,
                            round_.changed,
                            tuple(maintainer.answers().values()),
                        )
                    )
            return answers, rounds

        auto = run("auto")
        formula = run("formula")
        assert auto == formula
        # The stream must actually have moved something, else the
        # agreement above is vacuous.
        assert any(entry[0] > 0 for entry in auto[1])


class TestCompactCodec:
    """to_compact/from_compact is an exact structural round trip."""

    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_random_triplets(self, seed):
        rng = random.Random(seed)
        tree = build_random_tree(rng)
        ftree = random_fragmentation(rng, tree)
        for algebra in (None, PaperAlgebra()):
            for fragment in ftree.fragments.values():
                qlist = compile_query(valid_random_query(rng))
                triplet, _ = bottom_up(fragment, qlist, algebra)
                from repro.core.vectors import VectorTriplet

                decoded = VectorTriplet.from_compact(triplet.to_compact())
                assert decoded == triplet
                # The simulated ledger unit must survive the codec.
                assert decoded.wire_bytes() == triplet.wire_bytes()
                assert decoded.to_obj() == triplet.to_obj()

    def test_paper_algebra_shapes_preserved(self):
        """Non-canonical (paper-literal) structure survives verbatim."""
        from repro.boolexpr import And, Not, Or, Var
        from repro.core.vectors import VectorTriplet

        x = Var("F1", "V", 0)
        y = Var("F2", "DV", 1)
        nested = Or((And((x, y)), And((x, y))))  # duplicate operands kept
        triplet = VectorTriplet("F", [nested], [Not(Not(x))], [x])
        decoded = VectorTriplet.from_compact(triplet.to_compact())
        assert decoded.to_obj() == triplet.to_obj()

    def test_ground_triplet_is_three_masks(self):
        from repro.core.vectors import VectorTriplet, ground_triplet_from_bools

        triplet = ground_triplet_from_bools(
            "F", [True, False], [False, False], [True, True]
        )
        wire = triplet.to_compact()
        fragment_id, n, v_mask, cv_mask, dv_mask, residues, table = wire
        assert (fragment_id, n) == ("F", 2)
        assert (v_mask, cv_mask, dv_mask) == (0b01, 0, 0b11)
        assert residues == () and table == ()
        assert VectorTriplet.from_compact(wire) == triplet

    def test_shared_subformulas_emitted_once(self):
        from repro.boolexpr import And, Or, Var
        from repro.core.vectors import VectorTriplet

        x = Var("F1", "V", 0)
        y = Var("F1", "V", 1)
        shared = And((x, y))
        triplet = VectorTriplet(
            "F", [shared], [Or((shared, x))], [shared]
        )
        *_, residues, table = triplet.to_compact()
        assert len(residues) == 3
        # x, y, and(x,y), or(and, x): four distinct nodes, no repeats.
        assert len(table) == 4
