"""The executor subsystem: serial / threads / process site execution.

Covers the acceptance criteria of the executor layer:

* all three strategies produce identical answers (and identical
  simulated ledgers) across the engine lineup on the agreement suite;
* the critical path derived by ``Run.join`` is the max over branches
  and never exceeds the serial sum;
* a 16-site cluster evaluates deadlock-free on the concurrent
  strategies;
* the wire-format process boundary and the registry/resolution API.
"""

import pytest

from repro.core import (
    ALL_ENGINES,
    FullDistParBoXEngine,
    LazyParBoXEngine,
    ParBoXEngine,
    evaluate_tree,
)
from repro.boolexpr.compose import CanonicalAlgebra, PaperAlgebra
from repro.distsim import Cluster, Run
from repro.distsim.executors import (
    EXECUTOR_REGISTRY,
    ProcessSiteExecutor,
    SerialSiteExecutor,
    SiteJob,
    ThreadSiteExecutor,
    execute_site_job,
    resolve_executor,
)
from repro.workloads.portfolio import build_portfolio_cluster, build_portfolio_tree
from repro.workloads.queries import query_of_size, seal_query
from repro.workloads.topologies import chain_ft2, co_located, star_ft1
from repro.xpath import compile_query

EXECUTOR_NAMES = sorted(EXECUTOR_REGISTRY)

AGREEMENT_QUERIES = [
    "[//stock]",
    '[//stock[code = "GOOG" and sell = "376"]]',
    '[//broker[//stock/code/text() = "GOOG" and not(//stock/code/text() = "YHOO")]]',
    "[not //market]",
    "[//zzz]",
]


# ---------------------------------------------------------------------------
# Identical answers across strategies (engine-agreement suite)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
class TestAllEnginesAllExecutors:
    def test_agrees_with_oracle_on_portfolio(self, engine_cls, executor_name):
        cluster = build_portfolio_cluster()
        tree = build_portfolio_tree()
        with resolve_executor(executor_name) as executor:
            engine = engine_cls(cluster, executor=executor)
            for query in AGREEMENT_QUERIES:
                qlist = compile_query(query)
                oracle, _ = evaluate_tree(tree, qlist)
                result = engine.evaluate(qlist)
                assert result.answer == oracle, (engine_cls.name, executor_name, query)
                assert result.details["executor"] == executor_name


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
class TestLedgerExecutorIndependent:
    """The simulated cost ledger must not depend on the strategy."""

    def test_visits_and_traffic_identical(self, engine_cls):
        qlist = seal_query("F2")
        ledgers = {}
        for name in EXECUTOR_NAMES:
            cluster = chain_ft2(4, 2.0, seed=21)
            with resolve_executor(name) as executor:
                result = engine_cls(cluster, executor=executor).evaluate(qlist)
            metrics = result.metrics
            ledgers[name] = (
                result.answer,
                dict(metrics.visits),
                metrics.messages,
                metrics.bytes_total,
                dict(metrics.bytes_by_kind),
                metrics.nodes_processed,
                metrics.qlist_ops,
            )
        assert ledgers["serial"] == ledgers["threads"] == ledgers["process"]


# ---------------------------------------------------------------------------
# The Run.parallel / Run.join primitives
# ---------------------------------------------------------------------------


class TestParallelPrimitive:
    @pytest.fixture
    def cluster(self):
        return star_ft1(4, 1.5, seed=22)

    def _jobs(self, cluster, qlist):
        source_tree = cluster.source_tree()
        return [
            SiteJob(
                site_id,
                tuple(cluster.fragment(fid) for fid in source_tree.fragments_of(site_id)),
                qlist,
                CanonicalAlgebra(),
            )
            for site_id in source_tree.sites()
        ]

    def test_batch_attributes_per_site_seconds(self, cluster):
        run = Run(cluster)
        batch = run.parallel(self._jobs(cluster, query_of_size(8)))
        assert len(batch) == len(cluster.sites())
        assert run.metrics.parallel_batches == 1
        assert run.metrics.wall_seconds > 0
        for site_id, outcome in batch:
            assert outcome.seconds >= 0
            assert run.metrics.site_seconds[site_id] == outcome.seconds
        assert run.metrics.compute_seconds_total == pytest.approx(
            batch.busy_seconds_total()
        )

    def test_join_is_critical_path_not_sum(self, cluster):
        run = Run(cluster)
        batch = run.parallel(self._jobs(cluster, query_of_size(8)))
        finish = {site_id: outcome.seconds for site_id, outcome in batch}
        joined = run.join(finish)
        assert joined == max(finish.values())
        assert joined <= sum(finish.values()) + 1e-12
        assert run.metrics.critical_site == max(finish, key=finish.get)
        assert run.metrics.critical_path_seconds == pytest.approx(joined)

    def test_join_empty_is_zero(self, cluster):
        run = Run(cluster)
        assert run.join({}) == 0.0
        assert run.metrics.critical_site is None

    def test_join_keeps_dominant_critical_site(self, cluster):
        # Multi-join engines (Lazy, Selection): the recorded critical
        # site must be the one that bounded the LONGEST join, not the
        # most recent one.
        run = Run(cluster)
        run.join({"A": 0.9, "B": 0.1})
        run.join({"A": 0.05, "B": 0.2})
        assert run.metrics.critical_site == "A"
        assert run.metrics.critical_path_seconds == pytest.approx(1.1)

    def test_duplicate_site_jobs_rejected(self, cluster):
        run = Run(cluster)
        qlist = query_of_size(2)
        source_tree = cluster.source_tree()
        site_id = source_tree.sites()[0]
        job = SiteJob(
            site_id,
            tuple(cluster.fragment(fid) for fid in source_tree.fragments_of(site_id)),
            qlist,
            CanonicalAlgebra(),
        )
        with pytest.raises(ValueError, match="one job per site"):
            run.parallel([job, job])

    def test_engine_elapsed_below_serial_sum(self):
        # With 6 equally-loaded sites the critical path must sit well
        # below the serial sum of all site busy times.
        cluster = star_ft1(6, 6.0, seed=23)
        result = ParBoXEngine(cluster).evaluate(query_of_size(8))
        assert result.metrics.critical_path_seconds <= (
            sum(result.metrics.site_seconds.values()) + 1e-12
        )
        assert result.elapsed_seconds < result.metrics.compute_seconds_total

    def test_critical_path_breakdown(self, cluster):
        result = ParBoXEngine(cluster).evaluate(query_of_size(8))
        breakdown = result.metrics.critical_path_breakdown()
        assert breakdown["critical_site"] in {s.site_id for s in cluster.sites()}
        assert breakdown["critical_path_seconds"] > 0
        assert breakdown["slack_seconds"] >= 0


# ---------------------------------------------------------------------------
# Deadlock freedom at fan-out
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("executor_name", ["threads", "process"])
class TestSixteenSites:
    def test_16_site_cluster_completes(self, executor_name):
        cluster = star_ft1(16, 4.0, seed=24)
        assert len(cluster.sites()) == 16
        qlist = query_of_size(8)
        oracle, _ = evaluate_tree(cluster.fragmented_tree.stitch(), qlist)
        with resolve_executor(executor_name) as executor:
            result = ParBoXEngine(cluster, executor=executor).evaluate(qlist)
        assert result.answer == oracle
        assert result.metrics.max_visits_per_site() == 1
        assert len(result.metrics.site_seconds) == 16

    def test_16_sites_multiple_rounds_share_pool(self, executor_name):
        # Several evaluations through one executor instance must not
        # exhaust or wedge the pool (the process pool is cached).
        cluster = star_ft1(16, 2.0, seed=25)
        with resolve_executor(executor_name) as executor:
            engines = [
                ParBoXEngine(cluster, executor=executor),
                FullDistParBoXEngine(cluster, executor=executor),
                LazyParBoXEngine(cluster, executor=executor),
            ]
            answers = {e.name: e.evaluate(query_of_size(8)).answer for e in engines}
        assert len(set(answers.values())) == 1


# ---------------------------------------------------------------------------
# Strategy-specific behavior
# ---------------------------------------------------------------------------


class TestSerialExecutor:
    def test_runs_in_dispatch_order(self):
        cluster = co_located(3, 1.0, seed=26)
        qlist = query_of_size(2)
        job = SiteJob(
            "S0",
            tuple(cluster.fragment(fid) for fid in cluster.source_tree().fragments_of("S0")),
            qlist,
            PaperAlgebra(),
        )
        outcome = execute_site_job(job)
        assert outcome.site_id == "S0"
        assert len(outcome.fragments) == 3
        assert set(outcome.triplets()) == set(cluster.source_tree().fragments_of("S0"))
        assert outcome.reply_bytes() == sum(
            f.triplet.wire_bytes() for f in outcome.fragments
        )

    def test_empty_batch(self):
        assert SerialSiteExecutor().run_jobs([]) == []
        assert ThreadSiteExecutor().run_jobs([]) == []


class TestProcessExecutor:
    def test_rejects_unnamed_algebra(self):
        class CustomAlgebra(PaperAlgebra):
            name = "custom-not-registered"

        cluster = build_portfolio_cluster()
        engine = ParBoXEngine(cluster, algebra=CustomAlgebra(), executor="process")
        with pytest.raises(ValueError, match="named algebras"):
            engine.evaluate(compile_query("[//stock]"))
        engine.executor.close()

    def test_paper_algebra_crosses_the_boundary(self):
        cluster = chain_ft2(3, 1.5, seed=27)
        qlist = seal_query("F1")
        with ProcessSiteExecutor(max_workers=2) as executor:
            paper = ParBoXEngine(cluster, algebra=PaperAlgebra(), executor=executor)
            result = paper.evaluate(qlist)
        assert result.answer is True

    def test_close_is_idempotent(self):
        executor = ProcessSiteExecutor(max_workers=1)
        executor.close()
        executor.close()


class TestResolution:
    def test_registry_names(self):
        assert set(EXECUTOR_REGISTRY) == {"serial", "threads", "process"}

    def test_resolve_default_is_serial(self):
        assert isinstance(resolve_executor(None), SerialSiteExecutor)
        assert isinstance(resolve_executor("serial"), SerialSiteExecutor)

    def test_resolve_passes_instances_through(self):
        executor = ThreadSiteExecutor(max_workers=2)
        assert resolve_executor(executor) is executor

    def test_resolve_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("warp")

    def test_bad_worker_counts(self):
        with pytest.raises(ValueError):
            ThreadSiteExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ProcessSiteExecutor(max_workers=0)

    def test_engines_share_one_instance(self):
        cluster = build_portfolio_cluster()
        executor = ThreadSiteExecutor()
        a = ParBoXEngine(cluster, executor=executor)
        b = FullDistParBoXEngine(cluster, executor=executor)
        assert a.executor is b.executor

    def test_engine_closes_owned_executor_only(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        # Name-resolved: the engine owns the pool and reaps it on exit.
        with ParBoXEngine(cluster, executor="threads") as engine:
            engine.evaluate(qlist)
            assert engine.executor._pool is not None
        assert engine.executor._pool is None
        engine.close()  # idempotent
        # Pre-built: the engine must leave the shared pool alone.
        shared = ThreadSiteExecutor()
        with ParBoXEngine(cluster, executor=shared) as borrower:
            borrower.evaluate(qlist)
        assert shared._pool is not None
        shared.close()

    def test_engine_close_reaps_threaded_alias_pools(self):
        cluster = build_portfolio_cluster()
        engine = ParBoXEngine(cluster)
        engine.evaluate_threaded(compile_query("[//stock]"))
        alias = engine._threaded_executors[None]
        assert alias._pool is not None
        engine.close()
        assert alias._pool is None


class TestCliExecutorFlag:
    @pytest.fixture
    def portfolio_file(self, tmp_path):
        from repro.xmltree import serialize

        path = tmp_path / "portfolio.xml"
        path.write_text(serialize(build_portfolio_tree(), indent=2))
        return str(path)

    def test_query_with_threads(self, portfolio_file, capsys):
        from repro.cli import main

        assert main(["query", portfolio_file, "[//stock]", "--executor", "threads"]) == 0
        out = capsys.readouterr().out
        assert "executor = threads" in out
        assert "answer=True" in out and "wall=" in out

    def test_bad_executor_rejected(self, portfolio_file):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["query", portfolio_file, "[//stock]", "--executor", "warp"])


class TestWallClockLedger:
    def test_serial_wall_close_to_busy(self):
        cluster = star_ft1(4, 3.0, seed=28)
        result = ParBoXEngine(cluster).evaluate(query_of_size(8))
        metrics = result.metrics
        # Serial execution cannot overlap: the real wall clock of the
        # compute phases tracks the attributed busy total (CPU-time
        # attribution makes busy slightly smaller than wall).
        assert metrics.wall_seconds >= metrics.compute_seconds_total * 0.5
        assert metrics.parallel_speedup() <= 2.0

    def test_threaded_wall_recorded(self):
        cluster = star_ft1(4, 1.0, seed=29)
        with ThreadSiteExecutor() as executor:
            result = ParBoXEngine(cluster, executor=executor).evaluate(query_of_size(8))
        assert result.metrics.wall_seconds > 0
        assert result.metrics.parallel_batches == 1

    def test_thread_pool_cached_across_batches(self):
        executor = ThreadSiteExecutor()
        small = star_ft1(3, 1.0, seed=30)
        big = star_ft1(6, 1.0, seed=31)
        qlist = query_of_size(2)
        with executor:
            ParBoXEngine(small, executor=executor).evaluate(qlist)
            first_pool = executor._pool
            assert first_pool is not None
            ParBoXEngine(small, executor=executor).evaluate(qlist)
            assert executor._pool is first_pool  # reused, not respawned
            ParBoXEngine(big, executor=executor).evaluate(qlist)
            assert executor._pool is first_pool  # wider batch, same pool
        assert executor._pool is None  # context exit reaps the pool

    def test_evaluate_threaded_reuses_pool_and_honors_trace(self):
        from repro.distsim.trace import Trace

        cluster = star_ft1(3, 1.0, seed=32)
        engine = ParBoXEngine(cluster)
        first = engine.evaluate_threaded(query_of_size(2))
        executor = engine._threaded_executors[None]
        second = engine.evaluate_threaded(query_of_size(2))
        assert engine._threaded_executors[None] is executor
        assert first.answer == second.answer
        # A trace attached after the first call must still be honored.
        engine.trace = Trace()
        engine.evaluate_threaded(query_of_size(2))
        assert len(engine.trace.events("compute")) > 0
