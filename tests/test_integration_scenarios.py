"""End-to-end integration scenarios crossing several subsystems."""

import pytest

from repro.core import (
    ALL_ENGINES,
    ParBoXEngine,
    SelectionEngine,
    evaluate_tree,
    select_centralized,
)
from repro.distsim import Cluster, NetworkModel
from repro.fragments import Placement, fragment_at, fragment_balanced
from repro.views import MaterializedView
from repro.workloads.portfolio import build_portfolio_cluster, build_portfolio_tree
from repro.workloads.queries import seal_query
from repro.workloads.topologies import chain_ft2
from repro.xmltree import XMLNode, parse_xml, serialize
from repro.xpath import compile_query


class TestPlacementInvariance:
    """Answers must not depend on where fragments live."""

    def test_arbitrary_replacements(self):
        tree = build_portfolio_tree()
        ftree = fragment_balanced(tree, 4)
        queries = [compile_query(q) for q in ("[//stock]", '[//code = "YHOO"]', "[not //zzz]")]
        oracle = [evaluate_tree(tree, q)[0] for q in queries]
        placements = [
            {fid: "S0" for fid in ftree.fragments},  # all co-located
            {fid: f"S{i}" for i, fid in enumerate(ftree.fragments)},  # all apart
            {fid: f"S{i % 2}" for i, fid in enumerate(ftree.fragments)},  # paired
        ]
        for assignment in placements:
            cluster = Cluster(ftree, Placement(dict(assignment)))
            for qlist, expected in zip(queries, oracle):
                assert ParBoXEngine(cluster).evaluate(qlist).answer == expected

    def test_move_fragment_between_queries(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query('[//code = "GOOG"]')
        before = ParBoXEngine(cluster).evaluate(qlist)
        cluster.move_fragment("F2", "S0")
        after = ParBoXEngine(cluster).evaluate(qlist)
        assert before.answer == after.answer is True
        # S2 still holds F3, so the same three sites are visited; the
        # moved fragment's triplet no longer crosses the network.
        assert set(after.metrics.visits) == {"S0", "S1", "S2"}
        assert after.metrics.bytes_total < before.metrics.bytes_total


class TestQueryUpdateRequery:
    """The full lifecycle: evaluate, mutate, maintain, re-evaluate."""

    def test_portfolio_price_watch(self):
        cluster = build_portfolio_cluster()
        watch = compile_query('[//stock[code = "GOOG" and sell = "376"]]')
        view = MaterializedView.create(cluster, watch)
        assert view.ans is False

        # NASDAQ raises the F2 GOOG sell price in two steps.
        f2 = cluster.fragment("F2")
        sell = next(n for n in f2.root.iter_subtree() if n.label == "sell")
        sell.text = "375"
        assert view.refresh_fragment("F2").answer_changed is False
        sell.text = "376"
        report = view.refresh_fragment("F2")
        assert report.answer_changed and view.ans is True

        # Fresh evaluations agree, for every engine.
        for engine_cls in ALL_ENGINES:
            assert engine_cls(cluster).evaluate(watch).answer is True

    def test_restructure_then_query(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        baseline = ParBoXEngine(cluster).evaluate(qlist).answer
        # Example 5.1-style: split F0's NYSE market out to a new site.
        market = cluster.fragment("F0").root.find_by_label("market")[0]
        cluster.split_fragment("F0", market, "F4", target_site="S3")
        assert ParBoXEngine(cluster).evaluate(qlist).answer == baseline
        assert "S3" in cluster.source_tree().sites()
        # And merge it back home.
        virtual = next(
            n for n in cluster.fragment("F0").root.iter_subtree() if n.fragment_ref == "F4"
        )
        cluster.merge_fragment("F0", virtual)
        assert ParBoXEngine(cluster).evaluate(qlist).answer == baseline


class TestFileRoundTripPipeline:
    """serialize -> parse -> fragment -> evaluate equals in-memory results."""

    def test_portfolio_through_text(self, tmp_path):
        tree = build_portfolio_tree()
        path = tmp_path / "p.xml"
        path.write_text(serialize(tree, indent=2))
        reloaded = parse_xml(path.read_text())
        assert reloaded.structurally_equal(tree)

        cluster = Cluster.one_site_per_fragment(fragment_balanced(reloaded, 3))
        for text in ("[//stock]", '[//name = "Bache"]', "[//zzz]"):
            qlist = compile_query(text)
            oracle, _ = evaluate_tree(tree, qlist)
            assert ParBoXEngine(cluster).evaluate(qlist).answer == oracle

    def test_fragment_files_reference_integrity(self, tmp_path):
        # Fragments written to disk can be reloaded and re-stitched.
        from repro.fragments import Fragment, FragmentedTree

        tree = build_portfolio_tree()
        ftree = fragment_balanced(tree, 4)
        reloaded = {}
        for fid, fragment in ftree.fragments.items():
            text = serialize(fragment.root)
            reloaded[fid] = Fragment(fid, parse_xml(text).root)
        rebuilt = FragmentedTree(reloaded, ftree.root_fragment_id)
        assert rebuilt.stitch().structurally_equal(tree)


class TestNetworkSensitivity:
    """Slower networks punish shipping, not partial evaluation."""

    def test_bandwidth_sweep(self):
        from repro.core import NaiveCentralizedEngine

        qlist = compile_query("[//person]")
        gaps = []
        for bandwidth in (10_000_000, 100_000):
            cluster = chain_ft2(4, 8.0, seed=70)
            cluster.network = NetworkModel(
                latency_seconds=0.0005, bandwidth_bytes_per_second=bandwidth
            )
            parbox = ParBoXEngine(cluster).evaluate(qlist)
            central = NaiveCentralizedEngine(cluster).evaluate(qlist)
            gaps.append(central.elapsed_seconds / parbox.elapsed_seconds)
        fast, slow = gaps
        assert slow > fast  # shipping hurts more on the slow network


class TestSelectionAfterUpdates:
    def test_selection_tracks_mutations(self):
        cluster = build_portfolio_cluster()
        qlist = compile_query("[//stock]")
        assert len(SelectionEngine(cluster).select(qlist).paths) == 6
        # Add a stock to F3 and re-select.
        f3 = cluster.fragment("F3")
        f3.root.add_child(XMLNode("stock"))
        selection = SelectionEngine(cluster).select(qlist)
        assert len(selection.paths) == 7
        oracle = select_centralized(cluster.fragmented_tree.stitch(), qlist)
        assert selection.paths == oracle


class TestDeepFragmentChains:
    def test_chain_of_twenty(self):
        cluster = chain_ft2(20, 5.0, seed=71)
        qlist = seal_query("F19")
        result = ParBoXEngine(cluster).evaluate(qlist)
        assert result.answer is True
        assert result.metrics.max_visits_per_site() == 1

    def test_nested_cuts_inside_cuts(self):
        # Fragment the portfolio, then fragment a fragment (the paper's
        # "F1 is itself fragmented").
        tree = build_portfolio_tree()
        markets = tree.root.find_by_label("market")
        stocks = markets[0].find_by_label("stock")
        ftree = fragment_at(tree, [markets[0], stocks[0], markets[2]])
        cluster = Cluster.one_site_per_fragment(ftree)
        for text in ("[//stock]", '[//code = "IBM"]', '[//code = "YHOO"]'):
            qlist = compile_query(text)
            oracle, _ = evaluate_tree(tree, qlist)
            assert ParBoXEngine(cluster).evaluate(qlist).answer == oracle
