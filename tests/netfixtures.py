"""Shared fixtures for the serving-tier test suites.

Three tools, reused across the differential, fault and session tests
(and designed so future stream-over-network tests can import them too):

* :class:`FaultyProxy` -- a frame-aware TCP proxy interposed between
  the coordinator and a site server.  Because it reassembles frames
  with the protocol's own :class:`~repro.serving.protocol.FrameSplitter`,
  it can drop, delay, duplicate, truncate or corrupt *whole protocol
  frames* -- the faults the retry logic must survive -- rather than
  arbitrary byte windows.
* :func:`hard_deadline` -- a SIGALRM-based hard per-test deadline, so
  a deadlocked coordinator fails the test in seconds instead of
  wedging the whole run (the local toolchain has no pytest-timeout;
  this keeps the bound in-harness).
* :func:`leak_check` -- snapshots open file descriptors
  (``/proc/self/fd``) before the body and asserts they return to
  baseline after it, and asserts the serving loop wound down with no
  orphan asyncio tasks (via ``ServingCluster.leaked_tasks``).
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import os
import signal
import time
from typing import Optional

from repro.serving.protocol import HEADER, FrameError, FrameSplitter

#: Directions through the proxy, named from the coordinator's side.
TO_SITE = "to_site"  # coordinator -> site (requests, fragment pushes)
TO_COORD = "to_coord"  # site -> coordinator (replies)


class _FaultPlan:
    """Mutable per-direction fault counters consumed frame by frame."""

    def __init__(self) -> None:
        self.drop = 0
        self.duplicate = 0
        self.truncate = 0
        self.corrupt = 0
        self.delay_seconds = 0.0


class FaultyProxy:
    """A TCP proxy that mangles protocol frames in transit.

    Point the coordinator at ``(proxy.host, proxy.port)`` and the proxy
    at the real site server; then arm faults::

        proxy.drop_next(TO_COORD)        # eat the next site reply
        proxy.delay(TO_COORD, 0.5)       # add latency to every reply
        proxy.duplicate_next(TO_COORD)   # send the next reply twice
        proxy.truncate_next(TO_COORD)    # half a frame, then reset
        proxy.corrupt_next(TO_COORD)     # flip a payload byte

    Matches the ``proxy_factory`` contract of
    :class:`repro.serving.cluster.ServingCluster`: ``host``/``port``
    attributes plus async ``start()``/``stop()``.
    """

    def __init__(
        self, site_id: str, target_host: str, target_port: int, host: str = "127.0.0.1"
    ) -> None:
        self.site_id = site_id
        self.target_host = target_host
        self.target_port = target_port
        self.host = host
        self.port = 0
        self.plans = {TO_SITE: _FaultPlan(), TO_COORD: _FaultPlan()}
        #: Observable effect counters, keyed by action name.
        self.counts = {
            "forwarded": 0,
            "dropped": 0,
            "duplicated": 0,
            "truncated": 0,
            "corrupted": 0,
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Fault arming (called from the test thread; plain attribute writes)
    # ------------------------------------------------------------------
    def drop_next(self, direction: str, frames: int = 1) -> None:
        self.plans[direction].drop += frames

    def duplicate_next(self, direction: str, frames: int = 1) -> None:
        self.plans[direction].duplicate += frames

    def truncate_next(self, direction: str, frames: int = 1) -> None:
        self.plans[direction].truncate += frames

    def corrupt_next(self, direction: str, frames: int = 1) -> None:
        self.plans[direction].corrupt += frames

    def delay(self, direction: str, seconds: float) -> None:
        self.plans[direction].delay_seconds = seconds

    def clear_faults(self) -> None:
        self.plans = {TO_SITE: _FaultPlan(), TO_COORD: _FaultPlan()}

    # ------------------------------------------------------------------
    # Lifecycle (on the serving loop)
    # ------------------------------------------------------------------
    async def start(self) -> "FaultyProxy":
        self._server = await asyncio.start_server(self._handle, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for writer in list(self._writers):
            writer.transport.abort()
        self._writers.clear()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        try:
            site_reader, site_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            client_writer.transport.abort()
            return
        self._writers.update((client_writer, site_writer))
        pumps = [
            asyncio.ensure_future(
                self._pump(client_reader, site_writer, TO_SITE, client_writer)
            ),
            asyncio.ensure_future(
                self._pump(site_reader, client_writer, TO_COORD, site_writer)
            ),
        ]
        for pump in pumps:
            self._tasks.add(pump)
            pump.add_done_callback(self._tasks.discard)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
        other_writer: asyncio.StreamWriter,
    ) -> None:
        """Forward whole frames from reader to writer, applying faults."""
        splitter = FrameSplitter()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    frames = splitter.feed(data)
                except FrameError:
                    # Non-protocol bytes (e.g. a fuzz test talking
                    # through the proxy): forward raw from here on out.
                    writer.write(data)
                    await writer.drain()
                    continue
                for kind, payload in frames:
                    frame = HEADER.pack(b"RP", kind, len(payload)) + payload
                    if not await self._forward(frame, writer, other_writer, direction):
                        return
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            writer.transport.abort()
            other_writer.transport.abort()
            self._writers.discard(writer)
            self._writers.discard(other_writer)

    async def _forward(
        self,
        frame: bytes,
        writer: asyncio.StreamWriter,
        other_writer: asyncio.StreamWriter,
        direction: str,
    ) -> bool:
        """Apply the armed fault to one frame; False ends the pump."""
        plan = self.plans[direction]
        if plan.delay_seconds:
            await asyncio.sleep(plan.delay_seconds)
        if plan.drop > 0:
            plan.drop -= 1
            self.counts["dropped"] += 1
            return True
        if plan.truncate > 0:
            plan.truncate -= 1
            self.counts["truncated"] += 1
            # Half a frame, then reset both sides: the receiver sees a
            # mid-frame EOF -- the protocol's FrameError case.
            writer.write(frame[: max(1, len(frame) // 2)])
            await writer.drain()
            writer.transport.abort()
            other_writer.transport.abort()
            return False
        if plan.corrupt > 0:
            plan.corrupt -= 1
            self.counts["corrupted"] += 1
            # Flip one payload byte: framing stays intact, the decode
            # layer must reject it (PayloadError path).
            body = bytearray(frame)
            body[-1] ^= 0xFF
            frame = bytes(body)
        if plan.duplicate > 0:
            plan.duplicate -= 1
            self.counts["duplicated"] += 1
            writer.write(frame)
        writer.write(frame)
        await writer.drain()
        self.counts["forwarded"] += 1
        return True


def proxy_factory_for(registry: dict):
    """A ``ServingCluster`` proxy factory that records proxies by site id.

    ``registry`` fills with ``site_id -> [FaultyProxy, ...]`` (one per
    replica) as the cluster boots, so tests can arm faults per site.
    """

    def factory(site_id: str, host: str, port: int) -> FaultyProxy:
        proxy = FaultyProxy(site_id, host, port)
        registry.setdefault(site_id, []).append(proxy)
        return proxy

    return factory


# ---------------------------------------------------------------------------
# Deadlines and leak detection
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def hard_deadline(seconds: float = 60.0):
    """Fail the enclosed block with TimeoutError after ``seconds``.

    SIGALRM-based, so it fires even if the test thread is blocked in a
    socket read or a future wait -- the "never hang" property every
    fault test is required to bound itself with.
    """

    def on_alarm(signum, frame):  # pragma: no cover - only on deadline breach
        raise TimeoutError(f"test exceeded its {seconds}s hard deadline")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def open_fds() -> set[str]:
    """The process's open file descriptors (Linux)."""
    return set(os.listdir("/proc/self/fd"))


@contextlib.contextmanager
def leak_check(settle_seconds: float = 5.0):
    """Assert FDs return to baseline and no serving tasks leak.

    Yields a list; append :class:`~repro.serving.cluster.ServingCluster`
    instances to it and their ``leaked_tasks`` snapshots are asserted
    empty after close.  FD comparison retries briefly: abandoned
    sockets are reclaimed by GC a beat after close on some platforms.
    """
    baseline = open_fds()
    clusters: list = []
    yield clusters
    for cluster in clusters:
        assert cluster.leaked_tasks == [], (
            f"serving loop finished with orphan tasks: {cluster.leaked_tasks}"
        )
    deadline = time.monotonic() + settle_seconds
    while time.monotonic() < deadline:
        gc.collect()
        leaked = open_fds() - baseline
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked file descriptors: {sorted(leaked)}")


__all__ = [
    "TO_SITE",
    "TO_COORD",
    "FaultyProxy",
    "proxy_factory_for",
    "hard_deadline",
    "open_fds",
    "leak_check",
]
