"""Unit tests for normalization to the paper's β-normal form."""

import pytest

from repro.xpath import parse_query
from repro.xpath.normalize import (
    NAnd,
    NDescendant,
    NExists,
    NLabelIs,
    NNot,
    NOr,
    NSelf,
    NTextIs,
    NWildcard,
    normalize,
)
from repro.xpath.unparse import unparse_normalized


def norm(text):
    return normalize(parse_query(text))


def steps_of(nbool):
    assert isinstance(nbool, NExists)
    return nbool.steps


class TestPathRules:
    def test_label_becomes_wildcard_self(self):
        # normalize(A) = */ε[label() = A]
        steps = steps_of(norm("[broker]"))
        assert isinstance(steps[0], NWildcard)
        assert isinstance(steps[1], NSelf)
        assert steps[1].qualifier == NLabelIs("broker")

    def test_descendant_step(self):
        steps = steps_of(norm("[//broker]"))
        assert isinstance(steps[0], NDescendant)
        assert isinstance(steps[1], NWildcard)
        assert steps[2].qualifier == NLabelIs("broker")

    def test_wildcard_alone(self):
        steps = steps_of(norm("[*]"))
        assert len(steps) == 1
        assert isinstance(steps[0], NWildcard)

    def test_epsilon_path(self):
        assert steps_of(norm("[.]")) == ()

    def test_dot_steps_vanish(self):
        assert norm("[a/./b]") == norm("[a/b]")

    def test_absolute_head_is_self_test(self):
        steps = steps_of(norm("[/portofolio]"))
        assert len(steps) == 1
        assert steps[0].qualifier == NLabelIs("portofolio")

    def test_concatenation(self):
        steps = steps_of(norm("[a/b]"))
        kinds = [type(s) for s in steps]
        assert kinds == [NWildcard, NSelf, NWildcard, NSelf]


class TestQualifierMerging:
    def test_qualifier_appends_self_step(self):
        # normalize(p[q']) = normalize(p)/ε[normalize(q')], merged with
        # the label's own ε step.
        steps = steps_of(norm("[stock[code]]"))
        assert len(steps) == 2
        qualifier = steps[1].qualifier
        assert isinstance(qualifier, NAnd)
        assert qualifier.left == NLabelIs("stock")

    def test_adjacent_self_steps_merge(self):
        # ε[q1]/ε[q2] -> ε[q1 ∧ q2]
        steps = steps_of(norm("[.[a]/.[b]]"))
        assert len(steps) == 1
        assert isinstance(steps[0].qualifier, NAnd)

    def test_stacked_qualifiers_conjoined(self):
        steps = steps_of(norm("[stock[code][sell]]"))
        (self_step,) = [s for s in steps if isinstance(s, NSelf)]
        qualifier = self_step.qualifier
        # label ∧ q1 ∧ q2, left-associated
        assert isinstance(qualifier, NAnd)
        assert isinstance(qualifier.left, NAnd)
        assert qualifier.left.left == NLabelIs("stock")

    def test_text_comparison_merges_into_last_step(self):
        # normalize(p/text() = s) = normalize(p)[text() = s]
        steps = steps_of(norm('[code/text() = "GOOG"]'))
        assert len(steps) == 2
        qualifier = steps[1].qualifier
        assert qualifier == NAnd(NLabelIs("code"), NTextIs("GOOG"))

    def test_text_after_wildcard_appends_step(self):
        steps = steps_of(norm('[*/text() = "x"]'))
        assert len(steps) == 2
        assert steps[1].qualifier == NTextIs("x")

    def test_bare_text_test(self):
        steps = steps_of(norm('[text() = "x"]'))
        assert len(steps) == 1
        assert steps[0].qualifier == NTextIs("x")


class TestBooleanRules:
    def test_connectives_map_structurally(self):
        out = norm("[a and (b or not c)]")
        assert isinstance(out, NAnd)
        assert isinstance(out.right, NOr)
        assert isinstance(out.right.right, NNot)

    def test_label_eq(self):
        assert norm("[label() = stock]") == NLabelIs("stock")


class TestExample21:
    """Example 2.1's normalization, by the paper's rewrite rules."""

    def test_normal_form_rendering(self):
        out = norm('[//stock[code/text() = "yhoo"]]')
        # By the rules normalize(A) = */ε[label()=A], the descendant step
        # is followed by a child step (the paper's printed example elides
        # the '*'; see the module docstring of repro.xpath.normalize).
        rendered = unparse_normalized(out)
        assert rendered == (
            '///*/ε[label() = stock ∧ */ε[label() = code ∧ text() = "yhoo"]]'
        )

    def test_inner_path_shape(self):
        out = norm('[//stock[code/text() = "yhoo"]]')
        steps = steps_of(out)
        assert isinstance(steps[0], NDescendant)
        assert isinstance(steps[1], NWildcard)
        assert isinstance(steps[2], NSelf)
        inner = steps[2].qualifier
        assert inner.left == NLabelIs("stock")
        inner_steps = steps_of(inner.right)
        assert isinstance(inner_steps[0], NWildcard)
        assert inner_steps[1].qualifier == NAnd(NLabelIs("code"), NTextIs("yhoo"))


class TestNormalizationIdempotence:
    @pytest.mark.parametrize(
        "text",
        [
            "[//A and //B]",
            '[//stock[code/text() = "yhoo"]]',
            "[not(a//b) or c[d]]",
            '[/portofolio/broker/name = "Merill Lynch"]',
        ],
    )
    def test_deterministic(self, text):
        assert norm(text) == norm(text)
