"""Lifecycle tests: serving components and engines under teardown abuse.

The teardown paths a long-running serving tier actually hits: a body
that raises mid-``with``, a close that runs twice (once from the
``with``, once from a ``finally`` further out), a component used after
close.  Every engine and every serving component must survive all
three -- Hybrid's delegate fan-out included, which is where the
double-close bug class historically lives.
"""

import random

import pytest

from netfixtures import hard_deadline
from repro.core import ENGINE_REGISTRY, HybridParBoXEngine, ParBoXEngine
from repro.core.session import QuerySession
from repro.distsim import Cluster
from repro.fragments import Placement, fragment_at
from repro.serving import GatewayClient, NetEngine, ServingCluster
from repro.workloads.portfolio import build_portfolio_cluster
from repro.xpath import compile_query
from test_properties import build_random_tree


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


def tiny_cluster(seed: int = 3) -> Cluster:
    tree = build_random_tree(random.Random(seed), max_nodes=8)
    ftree = fragment_at(tree, [])
    return Cluster(ftree, Placement({fid: "S0" for fid in ftree.iter_depth_first()}))


# ---------------------------------------------------------------------------
# Engines: with-block + mid-body exception, then double close
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name", ["parbox", "hybrid", "fulldist", "lazy", "central", "distributed"]
)
def test_every_engine_closes_after_mid_body_exception(cluster, name):
    engine_cls = ENGINE_REGISTRY[name]
    with pytest.raises(RuntimeError, match="mid-body"):
        with engine_cls(cluster, executor="threads") as engine:
            engine.evaluate(compile_query("[//stock]"))
            raise RuntimeError("mid-body failure")
    # __exit__ already closed it; closing again must be a no-op.
    assert engine.executor._pool is None
    engine.close()
    assert engine.executor._pool is None


def test_hybrid_double_close_after_exception_closes_delegates_once(cluster):
    calls = {"parbox": 0, "central": 0}
    with pytest.raises(RuntimeError, match="mid-body"):
        with HybridParBoXEngine(cluster, executor="serial") as hybrid:
            original_parbox_close = hybrid._parbox.close
            original_central_close = hybrid._central.close

            def parbox_close():
                calls["parbox"] += 1
                original_parbox_close()

            def central_close():
                calls["central"] += 1
                original_central_close()

            hybrid._parbox.close = parbox_close
            hybrid._central.close = central_close
            hybrid.evaluate(compile_query("[//stock]"))
            raise RuntimeError("mid-body failure")
    hybrid.close()  # the outer finally-style close
    hybrid.close()
    assert calls == {"parbox": 1, "central": 1}


def test_engine_close_after_failed_evaluate(cluster):
    engine = ParBoXEngine(cluster, executor="threads")
    with pytest.raises(Exception):
        engine.evaluate("not a qlist")  # type: ignore[arg-type]
    engine.close()
    engine.close()
    assert engine.executor._pool is None


# ---------------------------------------------------------------------------
# Serving components
# ---------------------------------------------------------------------------


def test_serving_cluster_double_close_and_close_after_exception():
    with hard_deadline(60):
        serving = ServingCluster(tiny_cluster())
        with pytest.raises(RuntimeError, match="mid-body"):
            with serving:
                with serving.session() as session:
                    session.evaluate("[//a]")
                raise RuntimeError("mid-body failure")
        assert serving.leaked_tasks == []
        serving.close()  # idempotent after __exit__ already ran
        serving.close()


def test_serving_cluster_close_unstarted_is_safe():
    serving = ServingCluster(tiny_cluster())
    serving.close()
    serving.close()


def test_gateway_client_lifecycle():
    with hard_deadline(60), ServingCluster(tiny_cluster()) as serving:
        client = serving.client()
        assert client.ping()
        client.close()
        client.close()  # double close
        assert client.closed
        with pytest.raises(ConnectionError):
            client.query(("[//a]",))
        # with-block + exception still closes.
        with pytest.raises(RuntimeError, match="mid-body"):
            with serving.client() as other:
                other.ping()
                raise RuntimeError("mid-body failure")
        assert other.closed


def test_net_engine_lifecycle():
    with hard_deadline(60), ServingCluster(tiny_cluster()) as serving:
        host, port = serving.gateway.host, serving.gateway.port
        engine = NetEngine(host, port)
        assert engine.ping()
        engine.close()
        engine.close()  # double close
        with pytest.raises(RuntimeError):
            engine.ping()  # use-after-close is typed, not a reconnect
        with pytest.raises(RuntimeError, match="mid-body"):
            with NetEngine(host, port) as scoped:
                scoped.ping()
                raise RuntimeError("mid-body failure")
        with pytest.raises(RuntimeError):
            scoped.ping()


def test_net_session_owns_and_closes_its_engine():
    with hard_deadline(60), ServingCluster(tiny_cluster()) as serving:
        with pytest.raises(RuntimeError, match="mid-body"):
            with serving.session() as session:
                session.evaluate("[//a]")
                raise RuntimeError("mid-body failure")
        assert session._owns_engine
        assert session.engine._closed
        session.close()  # double close via the session surface
        with pytest.raises(RuntimeError):
            session.evaluate("[//a]")


# ---------------------------------------------------------------------------
# Session-layer guards around net: engines
# ---------------------------------------------------------------------------


def test_net_session_rejects_local_only_operations():
    with hard_deadline(60), ServingCluster(tiny_cluster()) as serving:
        with serving.session() as session:
            with pytest.raises(RuntimeError, match="local"):
                session.watch(["[//a]"])
            with pytest.raises(RuntimeError, match="local"):
                session.rebalance(queries=["[//a]"])


def test_net_session_rejects_local_engine_knobs():
    for knob in ({"executor": "serial"}, {"algebra": object()}, {"trace": object()}):
        with pytest.raises(ValueError, match="net: engine"):
            QuerySession(None, engine="net:127.0.0.1:1", **knob)


def test_local_engine_requires_a_cluster():
    with pytest.raises(ValueError, match="needs a cluster"):
        QuerySession(None, engine="parbox")
