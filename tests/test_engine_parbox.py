"""ParBoX-specific guarantees (paper, Section 3.1-3.2)."""

import pytest

from repro.boolexpr import PaperAlgebra
from repro.core import ParBoXEngine
from repro.core.engine import MSG_QUERY, MSG_TRIPLET
from repro.workloads.portfolio import build_portfolio_cluster
from repro.workloads.queries import query_of_size, seal_query
from repro.workloads.topologies import chain_ft2, co_located, star_ft1
from repro.xpath import compile_query


class TestVisitGuarantee:
    def test_each_site_visited_exactly_once(self):
        # Fig. 2's placement stores two fragments on S2: still one visit.
        cluster = build_portfolio_cluster()
        result = ParBoXEngine(cluster).evaluate(compile_query("[//stock]"))
        assert dict(result.metrics.visits) == {"S0": 1, "S1": 1, "S2": 1}

    def test_co_located_fragments_one_visit(self):
        cluster = co_located(8, 2.0, seed=5)
        result = ParBoXEngine(cluster).evaluate(query_of_size(8))
        assert result.metrics.max_visits_per_site() == 1
        assert result.details["triplets"] == 8


class TestTrafficGuarantee:
    def test_traffic_independent_of_tree_size(self):
        """O(|q| card(F)): growing |T| must not grow ParBoX's traffic."""
        qlist = query_of_size(8)
        small = star_ft1(4, 1.0, seed=6)
        large = star_ft1(4, 8.0, seed=6)
        bytes_small = ParBoXEngine(small).evaluate(qlist).metrics.bytes_total
        bytes_large = ParBoXEngine(large).evaluate(qlist).metrics.bytes_total
        assert large.total_size() > 4 * small.total_size()
        # Identical fragment count and query: traffic stays in the same
        # ballpark (formula sizes depend on card, not |T|).
        assert bytes_large <= bytes_small * 1.5

    def test_traffic_grows_with_query_size(self):
        cluster = star_ft1(4, 2.0, seed=7)
        small = ParBoXEngine(cluster).evaluate(query_of_size(2)).metrics.bytes_total
        large = ParBoXEngine(cluster).evaluate(query_of_size(23)).metrics.bytes_total
        assert large > small

    def test_traffic_grows_with_fragment_count(self):
        qlist = query_of_size(8)
        few = star_ft1(2, 2.0, seed=8)
        many = star_ft1(8, 2.0, seed=8)
        assert (
            ParBoXEngine(many).evaluate(qlist).metrics.bytes_total
            > ParBoXEngine(few).evaluate(qlist).metrics.bytes_total
        )

    def test_message_kinds(self):
        cluster = build_portfolio_cluster()
        result = ParBoXEngine(cluster).evaluate(compile_query("[//stock]"))
        kinds = set(result.metrics.bytes_by_kind)
        assert kinds <= {MSG_QUERY, MSG_TRIPLET}
        # Remote sites S1, S2 each get the query and send triplets back.
        assert result.metrics.bytes_by_kind[MSG_QUERY] > 0
        assert result.metrics.bytes_by_kind[MSG_TRIPLET] > 0

    def test_no_fragment_data_shipped(self):
        cluster = star_ft1(5, 3.0, seed=9)
        result = ParBoXEngine(cluster).evaluate(query_of_size(8))
        assert "fragment-data" not in result.metrics.bytes_by_kind


class TestComputationAccounting:
    def test_total_computation_covers_whole_tree(self):
        cluster = star_ft1(4, 2.0, seed=10)
        qlist = query_of_size(8)
        result = ParBoXEngine(cluster).evaluate(qlist)
        assert result.metrics.nodes_processed == cluster.total_size()
        assert result.metrics.qlist_ops == cluster.total_size() * len(qlist)

    def test_elapsed_below_total_compute_when_parallel(self):
        # With 6 equal sites, simulated elapsed must be well below the
        # sum of all site compute times.
        cluster = star_ft1(6, 6.0, seed=11)
        result = ParBoXEngine(cluster).evaluate(query_of_size(8))
        assert result.elapsed_seconds < result.metrics.compute_seconds_total


class TestAlgebraOption:
    def test_paper_algebra_same_answer_more_traffic(self):
        cluster = chain_ft2(6, 3.0, seed=12)
        qlist = seal_query("F5")
        canonical = ParBoXEngine(cluster).evaluate(qlist)
        paper = ParBoXEngine(cluster, algebra=PaperAlgebra()).evaluate(qlist)
        assert canonical.answer == paper.answer is True
        assert paper.metrics.bytes_total >= canonical.metrics.bytes_total


class TestThreadedBackend:
    def test_same_answer_and_accounting(self):
        cluster = star_ft1(4, 2.0, seed=13)
        qlist = query_of_size(8)
        engine = ParBoXEngine(cluster)
        simulated = engine.evaluate(qlist)
        threaded = engine.evaluate_threaded(qlist)
        assert threaded.answer == simulated.answer
        assert dict(threaded.metrics.visits) == dict(simulated.metrics.visits)
        assert threaded.metrics.bytes_total == simulated.metrics.bytes_total
        assert threaded.details["backend"] == "threads"
