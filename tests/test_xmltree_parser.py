"""Unit tests for the XML parser and serializer."""

import pytest

from repro.xmltree import XMLNode, XMLTree, element, parse_xml, serialize, estimated_wire_bytes
from repro.xmltree.parser import XMLParseError, parse_fragment_root


class TestParsing:
    def test_single_element(self):
        tree = parse_xml("<a/>")
        assert tree.root.label == "a"
        assert tree.size() == 1

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c/></b><d/></a>")
        assert [n.label for n in tree.iter_nodes()] == ["a", "b", "c", "d"]

    def test_text_content(self):
        tree = parse_xml("<code>GOOG</code>")
        assert tree.root.text == "GOOG"

    def test_whitespace_only_text_dropped(self):
        tree = parse_xml("<a>\n  <b/>\n</a>")
        assert tree.root.text is None

    def test_entities(self):
        tree = parse_xml("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;</a>")
        assert tree.root.text == "<x> & \"y\" '"

    def test_numeric_entities(self):
        tree = parse_xml("<a>&#65;&#x42;</a>")
        assert tree.root.text == "AB"

    def test_comments_skipped(self):
        tree = parse_xml("<!-- head --><a><!-- inner --><b/></a>")
        assert tree.size() == 2

    def test_xml_declaration_skipped(self):
        tree = parse_xml('<?xml version="1.0"?><a/>')
        assert tree.root.label == "a"

    def test_cdata(self):
        tree = parse_xml("<a><![CDATA[1 < 2 & 3]]></a>")
        assert tree.root.text == "1 < 2 & 3"

    def test_attributes_parsed_and_ignored(self):
        tree = parse_xml('<a id="1" name="x"><b k="v"/></a>')
        assert tree.size() == 2

    def test_virtual_node_round_trip(self):
        tree = parse_xml('<a><frag:ref id="F2"/></a>')
        virtual = tree.root.children[0]
        assert virtual.is_virtual
        assert virtual.fragment_ref == "F2"

    def test_parse_fragment_root(self):
        node = parse_fragment_root("<b><c/></b>")
        assert node.label == "b"
        assert len(node.children) == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a attr=value/>",
            "<a>&unknown;</a>",
            "<a>&broken</a>",
            '<frag:ref id="F1">x</frag:ref>',
            "<frag:ref/>",
            "< a/>",
        ],
    )
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(XMLParseError):
            parse_xml(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as exc:
            parse_xml("<a><b></c></a>")
        assert exc.value.position > 0


class TestSerialization:
    def test_round_trip_structure(self):
        original = XMLTree(
            element(
                "portfolio",
                element("broker", element("name", text="Bache")),
                element("market", text="NYSE"),
            )
        )
        reparsed = parse_xml(serialize(original))
        assert original.structurally_equal(reparsed)

    def test_round_trip_with_virtual_nodes(self):
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F3"))
        original = XMLTree(root)
        reparsed = parse_xml(serialize(original))
        assert original.structurally_equal(reparsed)

    def test_escaping_round_trip(self):
        original = XMLTree(element("a", text='1 < 2 & "3"'))
        reparsed = parse_xml(serialize(original))
        assert reparsed.root.text == '1 < 2 & "3"'

    def test_pretty_print_contains_newlines(self):
        tree = XMLTree(element("a", element("b")))
        assert "\n" in serialize(tree, indent=2)
        assert "\n" not in serialize(tree, indent=0)

    def test_estimated_wire_bytes_matches_serialization(self):
        tree = XMLTree(
            element("a", element("b", text="hello"), element("c"), element("d", text="x"))
        )
        assert estimated_wire_bytes(tree) == len(serialize(tree))

    def test_estimated_wire_bytes_counts_virtual(self):
        root = element("a")
        root.add_child(XMLNode.virtual("F1"))
        assert estimated_wire_bytes(XMLTree(root)) == len(serialize(XMLTree(root)))
