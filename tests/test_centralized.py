"""Semantics tests for the centralized evaluator (the test oracle itself).

Every case here is hand-computed, so these tests anchor the whole
repository's notion of XBL semantics.
"""

import pytest

from repro.core import evaluate_tree
from repro.xmltree import XMLNode, XMLTree, element, parse_xml
from repro.xpath import compile_query


def ask(tree_text: str, query: str) -> bool:
    answer, _ = evaluate_tree(parse_xml(tree_text), compile_query(query))
    return answer


DOC = """
<portofolio>
  <broker>
    <name>Bache</name>
    <market>
      <name>NYSE</name>
      <stock><code>IBM</code><buy>80</buy><sell>78</sell></stock>
    </market>
  </broker>
  <broker>
    <name>Merill Lynch</name>
    <market>
      <name>NASDAQ</name>
      <stock><code>GOOG</code><buy>370</buy><sell>372</sell></stock>
    </market>
  </broker>
</portofolio>
"""


class TestPathSemantics:
    def test_child(self):
        assert ask(DOC, "[broker]") is True
        assert ask(DOC, "[stock]") is False  # not a direct child

    def test_child_chain(self):
        assert ask(DOC, "[broker/market/stock]") is True
        assert ask(DOC, "[broker/stock]") is False

    def test_descendant(self):
        assert ask(DOC, "[//stock]") is True
        assert ask(DOC, "[//nothing]") is False

    def test_descendant_mid_path(self):
        assert ask(DOC, "[broker//code]") is True

    def test_descendant_excludes_self_for_labels(self):
        # //a from the root selects descendants via a child step; the
        # root itself is not a child of anything.
        assert ask("<a><b/></a>", "[//a]") is False
        assert ask("<a><a/></a>", "[//a]") is True

    def test_nested_descendant_repetition(self):
        # a//a needs two distinct 'a' nodes on a descendant chain.
        assert ask("<r><a><x><a/></x></a></r>", "[a//a]") is True
        assert ask("<r><a><x/></a></r>", "[a//a]") is False

    def test_wildcard(self):
        assert ask(DOC, "[*]") is True
        assert ask("<leaf/>", "[*]") is False

    def test_wildcard_chain(self):
        assert ask(DOC, "[*/*/*/code]") is True

    def test_self_path(self):
        assert ask("<leaf/>", "[.]") is True

    def test_absolute_path_names_root(self):
        assert ask(DOC, "[/portofolio/broker]") is True
        assert ask(DOC, "[/wrong/broker]") is False


class TestQualifiers:
    def test_simple_qualifier(self):
        assert ask(DOC, "[//market[name]]") is True
        assert ask(DOC, "[//market[zzz]]") is False

    def test_qualifier_with_comparison(self):
        assert ask(DOC, '[//stock[code = "GOOG"]]') is True
        assert ask(DOC, '[//stock[code = "MSFT"]]') is False

    def test_conjunctive_qualifier_same_node(self):
        # One stock must have both properties.
        assert ask(DOC, '[//stock[code = "GOOG" and sell = "372"]]') is True
        assert ask(DOC, '[//stock[code = "GOOG" and sell = "78"]]') is False

    def test_mid_path_qualifier(self):
        assert ask(DOC, '[//market[name = "NYSE"]/stock/code]') is True
        assert ask(DOC, '[//market[name = "LSE"]/stock/code]') is False

    def test_nested_qualifiers(self):
        assert ask(DOC, '[//broker[market[stock[code = "IBM"]]]]') is True


class TestComparisons:
    def test_text_equality(self):
        assert ask(DOC, '[//code/text() = "IBM"]') is True
        assert ask(DOC, '[//code/text() = "ibm"]') is False  # case-sensitive

    def test_equals_sugar(self):
        assert ask(DOC, '[//name = "Bache"]') is True

    def test_label_test_at_root(self):
        assert ask(DOC, "[label() = portofolio]") is True
        assert ask(DOC, "[label() = broker]") is False

    def test_text_on_element_itself(self):
        # text() = str compares the node's own text (Example 2.1 style).
        assert ask("<a><b>v</b></a>", '[b/text() = "v"]') is True
        assert ask("<a><b><c>v</c></b></a>", '[b/text() = "v"]') is False

    def test_bare_text_at_root(self):
        assert ask("<a>hello</a>", '[text() = "hello"]') is True
        assert ask("<a><b>hello</b></a>", '[text() = "hello"]') is False


class TestBooleans:
    def test_conjunction(self):
        assert ask(DOC, "[//code and //sell]") is True
        assert ask(DOC, "[//code and //zzz]") is False

    def test_disjunction(self):
        assert ask(DOC, "[//zzz or //sell]") is True
        assert ask(DOC, "[//zzz or //yyy]") is False

    def test_negation(self):
        assert ask(DOC, "[not //zzz]") is True
        assert ask(DOC, "[not //code]") is False

    def test_section22_example(self):
        query = (
            '[//broker[//stock/code/text() = "GOOG" and '
            'not(//stock/code/text() = "YHOO")]]'
        )
        assert ask(DOC, query) is True

    def test_de_morgan_consistency(self):
        assert ask(DOC, "[not(//code or //zzz)]") == ask(
            DOC, "[not //code and not //zzz]"
        )


class TestStats:
    def test_node_and_op_counts(self):
        tree = parse_xml("<a><b/><c/></a>")
        qlist = compile_query("[//b]")
        answer, stats = evaluate_tree(tree, qlist)
        assert answer is True
        assert stats.nodes_visited == 3
        assert stats.qlist_ops == 3 * len(qlist)
        assert stats.wall_seconds >= 0

    def test_virtual_nodes_rejected(self):
        root = element("a")
        root.add_child(XMLNode.virtual("F1"))
        with pytest.raises(ValueError):
            evaluate_tree(XMLTree(root), compile_query("[//b]"))
