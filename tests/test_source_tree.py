"""Unit tests for placement and the source tree."""

import pytest

from repro.fragments import Fragment, FragmentedTree, Placement, SourceTree
from repro.xmltree import XMLNode, element


@pytest.fixture
def chain():
    """F0 <- F1 <- F2, plus F3 directly under F0 (the paper's Fig. 2 shape)."""
    f0 = element("r")
    f0.add_child(XMLNode.virtual("F1"))
    f0.add_child(XMLNode.virtual("F3"))
    f1 = element("x")
    f1.add_child(XMLNode.virtual("F2"))
    fragments = {
        "F0": Fragment("F0", f0),
        "F1": Fragment("F1", f1),
        "F2": Fragment("F2", element("y")),
        "F3": Fragment("F3", element("z")),
    }
    return FragmentedTree(fragments, "F0")


@pytest.fixture
def placement():
    return Placement({"F0": "S0", "F1": "S1", "F2": "S2", "F3": "S2"})


@pytest.fixture
def source_tree(chain, placement):
    return SourceTree.from_fragmented_tree(chain, placement)


class TestPlacement:
    def test_site_of(self, placement):
        assert placement.site_of("F2") == "S2"

    def test_fragments_of(self, placement):
        assert placement.fragments_of("S2") == ["F2", "F3"]

    def test_sites_order(self, placement):
        assert placement.sites() == ["S0", "S1", "S2"]

    def test_assign_and_remove(self, placement):
        placement.assign("F9", "S9")
        assert placement.site_of("F9") == "S9"
        placement.remove("F9")
        with pytest.raises(KeyError):
            placement.site_of("F9")

    def test_copy_is_independent(self, placement):
        copy = placement.copy()
        copy.assign("F0", "elsewhere")
        assert placement.site_of("F0") == "S0"


class TestSourceTree:
    def test_paper_fig2_example(self, source_tree):
        # "both fragments F2 and F3 are stored in the same site S2"
        assert source_tree.fragments_of("S2") == ["F2", "F3"]
        assert source_tree.sites() == ["S0", "S1", "S2"]

    def test_coordinator(self, source_tree):
        assert source_tree.coordinator_site == "S0"

    def test_shape(self, source_tree):
        assert source_tree.parent_of("F2") == "F1"
        assert source_tree.parent_of("F0") is None
        assert source_tree.children_of("F0") == ["F1", "F3"]

    def test_depths(self, source_tree):
        assert source_tree.depth_of("F0") == 0
        assert source_tree.depth_of("F3") == 1
        assert source_tree.depth_of("F2") == 2
        assert source_tree.max_depth() == 2

    def test_fragments_at_depth(self, source_tree):
        assert source_tree.fragments_at_depth(1) == ["F1", "F3"]

    def test_preorder(self, source_tree):
        assert source_tree.fragment_ids() == ["F0", "F1", "F2", "F3"]

    def test_card(self, source_tree):
        assert source_tree.card() == 4

    def test_wire_bytes(self, source_tree):
        assert source_tree.wire_bytes() > 0

    def test_snapshot_semantics(self, chain, placement, source_tree):
        # Later placement changes do not affect an existing snapshot.
        placement.assign("F2", "S0")
        assert source_tree.site_of("F2") == "S2"
        fresh = SourceTree.from_fragmented_tree(chain, placement)
        assert fresh.site_of("F2") == "S0"
