"""Round-trip: ``parse -> normalize -> unparse -> parse`` is a fixed point.

Unparsing a parsed query must produce text that (a) reparses, (b)
unparses to *itself* (the fixed point -- one round-trip canonicalizes),
and (c) preserves the semantics end to end: the normal form and the
compiled QList of the round-tripped text match the original's, and both
evaluate identically on a document.
"""

import random

import pytest

from repro.core import evaluate_tree
from repro.workloads.portfolio import build_portfolio_tree
from repro.workloads.queries import random_query
from repro.xpath import build_qlist, normalize, parse_query
from repro.xpath.unparse import unparse_bool, unparse_normalized

CORPUS = [
    "[//stock]",
    "[*]",
    "[.]",
    '[//stock[code = "GOOG" and sell = "376"]]',
    '[//broker[//stock/code/text() = "GOOG" and not(//stock/code/text() = "YHOO")]]',
    "[not //market]",
    "[label() = portofolio and //sell]",
    "[broker/market/stock or //zzz]",
    "[//person[profile/education = \"college\"]]",
    "[not(//item[shipping])]",
    '[//item/description/text/text() = "gold gold gold gold"]',
    "[//a[b[c[d]]]]",
    "[a/*//b[.//c or not(d and e)]]",
    "[label() = x or (//y and not label() = z)]",
]


def _random_corpus(count: int = 40, seed: int = 2006) -> list[str]:
    rng = random.Random(seed)
    return [random_query(rng) for _ in range(count)]


@pytest.mark.parametrize("text", CORPUS + _random_corpus())
class TestRoundTrip:
    def test_unparse_reparses_to_fixed_point(self, text):
        ast = parse_query(text)
        rendered = unparse_bool(ast)
        reparsed = parse_query(rendered)
        # One round-trip canonicalizes: a second changes nothing.
        assert unparse_bool(reparsed) == rendered

    def test_normal_form_preserved(self, text):
        ast = parse_query(text)
        rendered = unparse_bool(ast)
        assert normalize(parse_query(rendered)) == normalize(ast)

    def test_compiled_qlist_preserved(self, text):
        original = build_qlist(normalize(parse_query(text)))
        roundtripped = build_qlist(
            normalize(parse_query(unparse_bool(parse_query(text))))
        )
        assert roundtripped.entries == original.entries

    def test_semantics_preserved_on_document(self, text):
        tree = build_portfolio_tree()
        original = build_qlist(normalize(parse_query(text)))
        rendered = unparse_bool(parse_query(text))
        roundtripped = build_qlist(normalize(parse_query(rendered)))
        assert evaluate_tree(tree, roundtripped)[0] == evaluate_tree(tree, original)[0]


class TestNormalizedRendering:
    """``unparse_normalized`` is notation, not round-trip syntax -- but it
    must stay stable under normalize (normalization is idempotent)."""

    @pytest.mark.parametrize("text", CORPUS)
    def test_normalize_idempotent_in_rendering(self, text):
        normalized = normalize(parse_query(text))
        assert unparse_normalized(normalized) == unparse_normalized(normalized)
        assert "ε" in unparse_normalized(normalized) or unparse_normalized(normalized)
