"""Unit tests for compFm and the two composition algebras."""

import itertools

import pytest

from repro.boolexpr import (
    FALSE,
    TRUE,
    CanonicalAlgebra,
    PaperAlgebra,
    Var,
    comp_fm,
)
from repro.boolexpr.compose import AND, NEG, OR


@pytest.fixture
def x():
    return Var("F1", "V", 0)


@pytest.fixture
def y():
    return Var("F2", "V", 0)


class TestCompFmConstantCases:
    """Fig. 3(b) case c0: both operands are plain truth values."""

    @pytest.mark.parametrize("a", [TRUE, FALSE])
    @pytest.mark.parametrize("b", [TRUE, FALSE])
    def test_and_or_truth_tables(self, a, b):
        assert comp_fm(a, b, AND).evaluate({}) == (a.value and b.value)
        assert comp_fm(a, b, OR).evaluate({}) == (a.value or b.value)

    @pytest.mark.parametrize("a", [TRUE, FALSE])
    def test_neg(self, a):
        assert comp_fm(a, None, NEG).evaluate({}) == (not a.value)


class TestCompFmMixedCases:
    """Cases c1/c2: one truth value, one residual formula."""

    def test_true_and_formula(self, x):
        assert comp_fm(TRUE, x, AND) is x
        assert comp_fm(x, TRUE, AND) is x

    def test_false_and_formula(self, x):
        assert comp_fm(FALSE, x, AND) is FALSE
        assert comp_fm(x, FALSE, AND) is FALSE

    def test_true_or_formula(self, x):
        assert comp_fm(TRUE, x, OR) is TRUE
        assert comp_fm(x, TRUE, OR) is TRUE

    def test_false_or_formula(self, x):
        assert comp_fm(FALSE, x, OR) is x
        assert comp_fm(x, FALSE, OR) is x


class TestCompFmFormulaCase:
    """Case c3: both residual -- a connective is built."""

    def test_and(self, x, y):
        formula = comp_fm(x, y, AND)
        assert formula.variables() == {x, y}
        assert formula.evaluate({x: True, y: True}) is True
        assert formula.evaluate({x: True, y: False}) is False

    def test_neg(self, x):
        assert comp_fm(x, None, NEG).evaluate({x: True}) is False

    def test_binary_op_requires_second_operand(self, x):
        with pytest.raises(ValueError):
            comp_fm(x, None, AND)

    def test_unknown_operator_rejected(self, x, y):
        with pytest.raises(ValueError):
            comp_fm(x, y, "XOR")


class TestAlgebrasAgreeSemantically:
    """Canonical and paper-literal composition define the same functions."""

    def test_random_compositions(self, x, y):
        canonical = CanonicalAlgebra()
        paper = PaperAlgebra()
        operands = [TRUE, FALSE, x, y]
        for a, b in itertools.product(operands, repeat=2):
            for op in (AND, OR):
                lhs = canonical.compose(a, b, op)
                rhs = paper.compose(a, b, op)
                for vx in (False, True):
                    for vy in (False, True):
                        env = {x: vx, y: vy}
                        assert lhs.evaluate(env) == rhs.evaluate(env), (a, b, op, env)

    def test_paper_algebra_builds_binary_nodes(self, x, y):
        paper = PaperAlgebra()
        formula = paper.and_(paper.and_(x, y), x)
        # No flattening, no dedup: strictly binary, duplicates kept.
        assert formula.size() == 5

    def test_canonical_algebra_dedups(self, x, y):
        canonical = CanonicalAlgebra()
        formula = canonical.and_(canonical.and_(x, y), x)
        assert formula.size() == 3

    def test_paper_algebra_keeps_duplicate_or_chain(self, x):
        paper = PaperAlgebra()
        formula = x
        for _ in range(10):
            formula = paper.or_(formula, x)
        assert formula.size() == 21  # grows linearly without dedup
        canonical = CanonicalAlgebra()
        formula2 = x
        for _ in range(10):
            formula2 = canonical.or_(formula2, x)
        assert formula2 is x
