"""Unit tests for the distributed-simulation substrate."""

import pytest

from repro.distsim import Cluster, NetworkModel, Run, Site
from repro.fragments import Fragment, FragmentedTree, Placement
from repro.xmltree import XMLNode, element


def two_fragment_tree():
    f0 = element("r", element("a"))
    f0.add_child(XMLNode.virtual("F1"))
    return FragmentedTree(
        {"F0": Fragment("F0", f0), "F1": Fragment("F1", element("x", element("y")))},
        "F0",
    )


class TestNetworkModel:
    def test_transfer_time_formula(self):
        model = NetworkModel(latency_seconds=0.001, bandwidth_bytes_per_second=1000)
        assert model.transfer_seconds(500) == pytest.approx(0.001 + 0.5)

    def test_same_site_is_free(self):
        model = NetworkModel()
        assert model.transfer_seconds(10**9, same_site=True) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_seconds(-1)

    def test_ingress(self):
        model = NetworkModel(latency_seconds=0.001, bandwidth_bytes_per_second=1000)
        assert model.ingress_seconds(2000, senders=4) == pytest.approx(0.001 + 2.0)
        assert model.ingress_seconds(0, senders=0) == 0.0


class TestSite:
    def test_fragment_store(self):
        site = Site("S0")
        fragment = Fragment("F0", element("a", element("b")))
        site.add_fragment(fragment)
        assert site.has_fragment("F0")
        assert site.fragment("F0") is fragment
        assert site.fragment_ids() == ["F0"]
        assert site.data_size() == 2

    def test_duplicate_rejected(self):
        site = Site("S0")
        site.add_fragment(Fragment("F0", element("a")))
        with pytest.raises(ValueError):
            site.add_fragment(Fragment("F0", element("b")))

    def test_remove(self):
        site = Site("S0")
        site.add_fragment(Fragment("F0", element("a")))
        site.remove_fragment("F0")
        assert not site.has_fragment("F0")


class TestCluster:
    def test_construction_places_fragments(self):
        cluster = Cluster(two_fragment_tree(), Placement({"F0": "S0", "F1": "S1"}))
        assert cluster.site("S0").has_fragment("F0")
        assert cluster.site("S1").has_fragment("F1")
        assert cluster.coordinator_site == "S0"
        assert cluster.total_size() == 4
        assert cluster.card() == 2

    def test_single_site_constructor(self):
        cluster = Cluster.single_site(two_fragment_tree())
        assert len(cluster.sites()) == 1
        assert cluster.site("S0").fragment_ids() == ["F0", "F1"]

    def test_one_site_per_fragment_constructor(self):
        cluster = Cluster.one_site_per_fragment(two_fragment_tree())
        assert cluster.site_of("F0") == "S0"
        assert cluster.site_of("F1") == "S1"

    def test_source_tree_cached_and_invalidated(self):
        cluster = Cluster(two_fragment_tree(), Placement({"F0": "S0", "F1": "S1"}))
        first = cluster.source_tree()
        assert cluster.source_tree() is first
        cluster.move_fragment("F1", "S0")
        assert cluster.source_tree() is not first
        assert cluster.source_tree().site_of("F1") == "S0"

    def test_move_fragment(self):
        cluster = Cluster(two_fragment_tree(), Placement({"F0": "S0", "F1": "S1"}))
        cluster.move_fragment("F1", "S0")
        assert cluster.site("S0").has_fragment("F1")
        assert not cluster.site("S1").has_fragment("F1")

    def test_split_fragment_updates_placement(self):
        cluster = Cluster(two_fragment_tree(), Placement({"F0": "S0", "F1": "S1"}))
        node = cluster.fragment("F0").root.children[0]
        new_id = cluster.split_fragment("F0", node, "F9", target_site="S1")
        assert new_id == "F9"
        assert cluster.site_of("F9") == "S1"
        assert cluster.source_tree().parent_of("F9") == "F0"

    def test_merge_fragment_updates_placement(self):
        cluster = Cluster(two_fragment_tree(), Placement({"F0": "S0", "F1": "S1"}))
        virtual = cluster.fragment("F0").virtual_nodes()[0]
        absorbed = cluster.merge_fragment("F0", virtual)
        assert absorbed == "F1"
        assert cluster.card() == 1
        assert not cluster.site("S1").has_fragment("F1")


class TestRun:
    @pytest.fixture
    def cluster(self):
        return Cluster(two_fragment_tree(), Placement({"F0": "S0", "F1": "S1"}))

    def test_visits(self, cluster):
        run = Run(cluster)
        run.visit("S0")
        run.visit("S1")
        run.visit("S1")
        assert run.metrics.visits["S1"] == 2
        assert run.metrics.total_visits() == 3
        assert run.metrics.max_visits_per_site() == 2

    def test_messages_and_bytes(self, cluster):
        run = Run(cluster)
        seconds = run.message("S0", "S1", 1000, "query")
        assert seconds > 0
        assert run.metrics.messages == 1
        assert run.metrics.bytes_total == 1000
        assert run.metrics.bytes_by_kind["query"] == 1000

    def test_intra_site_message_free_and_untracked(self, cluster):
        run = Run(cluster)
        assert run.message("S0", "S0", 1000, "query") == 0.0
        assert run.metrics.messages == 0
        assert run.metrics.bytes_total == 0

    def test_compute_times_and_attributes(self, cluster):
        run = Run(cluster)
        result, seconds = run.compute("S0", lambda: sum(range(1000)))
        assert result == 499500
        assert seconds >= 0
        assert run.metrics.compute_seconds_total == seconds

    def test_add_ops(self, cluster):
        run = Run(cluster)
        run.add_ops(10, 80)
        assert run.metrics.nodes_processed == 10
        assert run.metrics.qlist_ops == 80

    def test_finish_freezes(self, cluster):
        run = Run(cluster)
        run.finish(1.5)
        assert run.metrics.elapsed_seconds == 1.5
        with pytest.raises(RuntimeError):
            run.finish(2.0)

    def test_metrics_summary_keys(self, cluster):
        run = Run(cluster)
        run.visit("S0")
        run.finish(0.0)
        summary = run.metrics.summary()
        assert summary["sites_contacted"] == 1
        assert "bytes_total" in summary and "qlist_ops" in summary
