"""Scale-out serving: coordinator pool, consistent-hash routing, plan cache.

The scale-out layer must be invisible in the answers: whichever
coordinator a request routes to, the reply -- answers AND the
deterministic simulated ledger -- must be bitwise identical to the
in-process oracle, under every routing policy and while sites die and
fail over mid-run.  What routing *is* allowed to change is locality:
a resent batch must land on the same coordinator (warm compiled plan,
warm site links), which the stickiness and plan-cache tests pin down.
"""

import random

import pytest

from netfixtures import hard_deadline, leak_check
from repro.serving import ServingCluster
from repro.serving.coordinator import PLAN_CACHE_SIZE, Coordinator
from repro.serving.gateway import ROUTING_POLICIES
from repro.serving.routing import DEFAULT_VNODES, HashRing, plan_fingerprint
from repro.workloads.pubsub import subscription_texts
from repro.workloads.topologies import star_ft1
from test_serving_differential import (
    assert_matches_oracle,
    deterministic_ledger,
    random_batch,
    random_topology,
)

# ---------------------------------------------------------------------------
# Routing units: fingerprints and the hash ring
# ---------------------------------------------------------------------------


class TestPlanFingerprint:
    def test_stable_and_distinct(self):
        batch = ("[//a]", "[not //b]")
        assert plan_fingerprint(batch) == plan_fingerprint(tuple(batch))
        assert plan_fingerprint(batch) != plan_fingerprint(("[//a]",))
        # Order matters: a different wire program is a different key.
        assert plan_fingerprint(batch) != plan_fingerprint(batch[::-1])
        # No concatenation aliasing across entry boundaries.
        assert plan_fingerprint(("ab", "c")) != plan_fingerprint(("a", "bc"))

    def test_qlist_wire_forms_fingerprint_by_content(self):
        entries = (("down", "a", 0), ("exists", "b", 1))
        wire = ("qlist", entries)
        assert plan_fingerprint((wire,)) == plan_fingerprint((("qlist", list(entries)),))
        assert plan_fingerprint((wire,)) != plan_fingerprint(("[//a]",))

    def test_unroutable_batches_return_none(self):
        # Empty and malformed batches fall back to least-inflight routing
        # instead of pre-empting the coordinator's typed bad-request error.
        assert plan_fingerprint(()) is None
        assert plan_fingerprint((123,)) is None
        assert plan_fingerprint((("qlist", 5, "extra"),)) is None


class TestHashRing:
    def test_routing_is_deterministic_and_total(self):
        ring = HashRing(["c0", "c1", "c2"])
        keys = [plan_fingerprint((text,)) for text in subscription_texts(32, seed=3)]
        first = [ring.route(key) for key in keys]
        second = [HashRing(["c0", "c1", "c2"]).route(key) for key in keys]
        assert first == second
        assert set(first) <= {"c0", "c1", "c2"}
        # Virtual nodes spread a real key set across the whole pool.
        assert len(set(first)) == 3

    def test_adding_a_node_remaps_a_minority_of_keys(self):
        keys = [plan_fingerprint((f"[//q{i}]",)) for i in range(400)]
        two = HashRing(["c0", "c1"])
        three = HashRing(["c0", "c1", "c2"])
        moved = sum(1 for key in keys if two.route(key) != three.route(key))
        # Consistent hashing: ~1/3 of keys move to the new node, and no
        # key moves between the two surviving nodes' arcs beyond noise.
        assert moved < len(keys) * 0.55
        assert all(
            three.route(key) == "c2" or three.route(key) == two.route(key)
            for key in keys
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["c0", "c0"])
        with pytest.raises(ValueError):
            HashRing(["c0"], vnodes=0)
        assert len(HashRing(["c0"], vnodes=DEFAULT_VNODES)) == 1


# ---------------------------------------------------------------------------
# Differential: every routing policy, bitwise vs the in-process oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("routing", ROUTING_POLICIES)
def test_two_coordinators_match_oracle_under_every_policy(routing):
    rng = random.Random(97)
    cluster = random_topology(rng)
    batches = [random_batch(rng, rng.randint(1, 4)) for _ in range(3)]
    with hard_deadline(120), leak_check() as clusters:
        with ServingCluster(cluster, coordinators=2, routing=routing) as serving:
            clusters.append(serving)
            for queries in batches:
                assert_matches_oracle(cluster, serving, "parbox", queries)


def test_failover_with_two_coordinators_live():
    """Kill a site's primary replica with both coordinators serving:
    whichever pool member handles the next batches must fail over to the
    replica with answers and ledger unchanged."""
    rng = random.Random(5)
    cluster = None
    while cluster is None or len(cluster.source_tree().sites()) < 2:
        cluster = random_topology(rng)
    batches = [random_batch(rng, 3) for _ in range(4)]
    victim = sorted(cluster.source_tree().sites())[-1]
    with hard_deadline(180):
        with ServingCluster(
            cluster, coordinators=2, replicas=2, site_timeout=5.0
        ) as serving:
            for queries in batches:
                assert_matches_oracle(cluster, serving, "parbox", queries)
            serving.kill_site(victim, replica=0)
            for queries in batches:
                assert_matches_oracle(cluster, serving, "parbox", queries)
            # The failover is visible in the pool-wide retry counter.
            assert serving.gateway.coordinator.stats["retries"] >= 1


def test_kill_and_restart_between_batches_with_two_coordinators():
    rng = random.Random(23)
    cluster = None
    while cluster is None or len(cluster.source_tree().sites()) < 2:
        cluster = random_topology(rng)
    queries = random_batch(rng, 4)
    victim = sorted(cluster.source_tree().sites())[-1]
    with hard_deadline(180):
        with ServingCluster(cluster, coordinators=2, site_timeout=5.0) as serving:
            assert_matches_oracle(cluster, serving, "parbox", queries)
            serving.kill_site(victim)
            serving.restart_site(victim)
            assert_matches_oracle(cluster, serving, "parbox", queries)


# ---------------------------------------------------------------------------
# Stickiness, balance, per-coordinator accounting
# ---------------------------------------------------------------------------


def _text_cluster():
    return star_ft1(3, 0.05, seed=7, nodes_per_mb=24)


def test_hash_routing_is_sticky_and_matches_the_ring():
    """Raw-text batches route exactly where the public fingerprint+ring
    says they should, and resends always land on the same coordinator."""
    cluster = _text_cluster()
    texts = subscription_texts(12, seed=11)
    ring = HashRing(["c0", "c1"])
    with hard_deadline(120):
        with ServingCluster(cluster, coordinators=2) as serving:
            with serving.client() as client:
                seen = set()
                for text in texts:
                    batch = (text, "[//never]")
                    expected = ring.route(plan_fingerprint(batch))
                    for _ in range(2):  # the resend must not move
                        reply = client.query(batch, "parbox")
                        assert reply.details["coordinator"] == expected
                    seen.add(expected)
    # The subscription pool is wide enough to exercise both arcs.
    assert seen == {"c0", "c1"}


def test_net_engine_reports_the_serving_coordinator():
    cluster = _text_cluster()
    with hard_deadline(120):
        with ServingCluster(cluster, coordinators=2) as serving:
            with serving.session(engine="parbox") as session:
                names = set()
                for _ in range(3):
                    session.evaluate_batch(["[//a]", "[not //b]"])
                    names.add(session.engine.last_coordinator)
    assert len(names) == 1 and names <= {"c0", "c1"}


def test_skew_policy_pins_every_batch_to_c0():
    cluster = _text_cluster()
    with hard_deadline(120):
        with ServingCluster(cluster, coordinators=2, routing="skew") as serving:
            with serving.client() as client:
                for text in subscription_texts(6, seed=13):
                    reply = client.query((text,), "parbox")
                    assert reply.details["coordinator"] == "c0"
                stats = client.server_stats()
    assert stats.get("gateway_routed_total{coordinator=c0,policy=skew}") == 6.0
    assert "gateway_routed_total{coordinator=c1,policy=skew}" not in stats


def test_per_coordinator_series_ride_alongside_aggregates():
    """New per-coordinator series appear; the pre-scale-out aggregate
    series keep their exact label shape (other suites pin them)."""
    cluster = _text_cluster()
    with hard_deadline(120):
        with ServingCluster(cluster, coordinators=2) as serving:
            with serving.session(engine="parbox") as session:
                session.evaluate_batch(["[//a]"])
                session.evaluate_batch(["[not //b]"])
            with serving.client() as client:
                stats = client.server_stats()
    assert stats["gateway_replies_total{status=ok}"] == 2.0
    per_coordinator = [
        key for key in stats if key.startswith("gateway_coordinator_replies_total{")
    ]
    assert per_coordinator
    assert sum(stats[key] for key in per_coordinator) == 2.0
    assert all("coordinator=c" in key and "status=ok" in key for key in per_coordinator)
    inflight = [
        key for key in stats if key.startswith("gateway_coordinator_inflight{")
    ]
    assert {stats[key] for key in inflight} == {0.0}


# ---------------------------------------------------------------------------
# The compiled-plan cache
# ---------------------------------------------------------------------------


def test_plan_cache_hits_on_resends_and_reports_through_obs():
    cluster = _text_cluster()
    with hard_deadline(120):
        with ServingCluster(cluster, coordinators=2) as serving:
            with serving.client() as client:
                batch = ("[//a]", "[not //b]")
                for _ in range(5):
                    client.query(batch, "parbox")
                stats = client.server_stats()
            pool = serving.gateway.coordinators
            cache = [coordinator.plan_cache_stats() for coordinator in pool]
    # Sticky routing sends all five sends to one coordinator: one miss
    # compiles, four hits skip planning and re-validation.
    assert sum(entry["misses"] for entry in cache) == 1
    assert sum(entry["hits"] for entry in cache) == 4
    assert sum(entry["entries"] for entry in cache) == 1
    # The same counts surface through the metrics registry.
    hits = [
        value
        for key, value in stats.items()
        if key.startswith("coordinator_plan_cache_total{") and "result=hit" in key
    ]
    assert sum(hits) == 4.0


def test_plan_cache_is_bounded_lru():
    cluster = _text_cluster()
    endpoints = {site: ("127.0.0.1", 1) for site in cluster.source_tree().sites()}
    coordinator = Coordinator(cluster, endpoints, plan_cache_size=2)
    assert PLAN_CACHE_SIZE >= 2
    for text in ("[//a]", "[//b]", "[//c]"):
        coordinator._plan_for((text,))
    assert coordinator.plan_cache_stats()["entries"] == 2
    # "[//a]" was evicted; "[//c]" and "[//b]" survive ("[//b]" refreshed).
    coordinator._plan_for(("[//b]",))
    assert coordinator.plan_cache_stats()["hits"] == 1
    coordinator._plan_for(("[//a]",))
    assert coordinator.plan_cache_stats()["entries"] == 2
    assert coordinator.plan_cache_stats()["misses"] == 4


def test_plan_cache_returns_identical_plans_and_answers():
    """A cache hit must evaluate exactly like the first compile did."""
    cluster = _text_cluster()
    with hard_deadline(120):
        with ServingCluster(cluster) as serving:
            with serving.session(engine="parbox") as session:
                first = session.evaluate_batch(["[//a]", "[not //b]"])
                second = session.evaluate_batch(["[//a]", "[not //b]"])
    assert first.answers == second.answers
    assert deterministic_ledger(first.metrics) == deterministic_ledger(second.metrics)


# ---------------------------------------------------------------------------
# Gateway knobs
# ---------------------------------------------------------------------------


def test_max_workers_defaults_to_max_inflight_and_decouples():
    cluster = _text_cluster()
    with hard_deadline(120):
        with ServingCluster(cluster, max_inflight=3) as serving:
            assert serving.gateway.max_workers == 3
        with ServingCluster(cluster, max_inflight=3, max_workers=7) as serving:
            assert serving.gateway.max_workers == 7
            assert serving.gateway.max_inflight == 3
            with serving.session(engine="parbox") as session:
                assert session.evaluate_batch(["[//a]"]).answers
