"""Property-based tests for incremental view maintenance.

Random update sequences (inserts, deletes, splits, merges) against a
random initial cluster: after every step the incrementally maintained
answer must equal a from-scratch re-evaluation.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.views import MaterializedView
from repro.xmltree import XMLNode, XMLTree
from repro.xpath import compile_query
from tests.test_properties import (
    build_random_tree,
    random_fragmentation,
    random_placement,
    valid_random_query,
)

LABELS = ("a", "b", "c", "seal")


def _random_update(rng: random.Random, view: MaterializedView) -> str:
    cluster = view.cluster
    fragment_ids = list(cluster.fragmented_tree.fragments)
    fragment_id = rng.choice(fragment_ids)
    fragment = cluster.fragment(fragment_id)
    action = rng.choice(["insert", "insert", "delete", "split", "merge"])

    if action == "insert":
        parents = [n for n in fragment.root.iter_subtree() if not n.is_virtual]
        parent = rng.choice(parents)
        view.insert_node(
            fragment_id, parent, rng.choice(LABELS), text=rng.choice([None, "x", "7"])
        )
        return "insert"

    if action == "delete":
        deletable = [
            n
            for n in fragment.root.iter_subtree()
            if n is not fragment.root and not n.is_virtual and not _subtree_has_virtual(n)
        ]
        if not deletable:
            return "skip"
        view.delete_node(fragment_id, rng.choice(deletable))
        return "delete"

    if action == "split":
        candidates = [
            n for n in fragment.root.iter_subtree() if n is not fragment.root and not n.is_virtual
        ]
        if not candidates:
            return "skip"
        view.apply_split(fragment_id, rng.choice(candidates))
        return "split"

    virtuals = fragment.virtual_nodes()
    if not virtuals:
        return "skip"
    view.apply_merge(fragment_id, rng.choice(virtuals))
    return "merge"


def _subtree_has_virtual(node: XMLNode) -> bool:
    return any(n.is_virtual for n in node.iter_subtree())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_maintained_answer_equals_scratch(seed):
    rng = random.Random(seed)
    tree = build_random_tree(rng, max_nodes=20)
    cluster = random_placement(rng, random_fragmentation(rng, tree))
    qlist = compile_query(valid_random_query(rng))
    view = MaterializedView.create(cluster, qlist)
    assert view.ans == view.recompute_from_scratch()
    for _ in range(rng.randint(1, 6)):
        _random_update(rng, view)
        assert view.ans == view.recompute_from_scratch()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_structural_updates_never_change_answer(seed):
    rng = random.Random(seed)
    tree = build_random_tree(rng, max_nodes=20)
    cluster = random_placement(rng, random_fragmentation(rng, tree))
    qlist = compile_query("[//a and (//b or not //seal)]")
    view = MaterializedView.create(cluster, qlist)
    initial = view.ans
    for _ in range(4):
        fragment_ids = list(cluster.fragmented_tree.fragments)
        fragment_id = rng.choice(fragment_ids)
        fragment = cluster.fragment(fragment_id)
        if rng.random() < 0.5:
            candidates = [
                n
                for n in fragment.root.iter_subtree()
                if n is not fragment.root and not n.is_virtual
            ]
            if candidates:
                view.apply_split(fragment_id, rng.choice(candidates))
        else:
            virtuals = fragment.virtual_nodes()
            if virtuals:
                view.apply_merge(fragment_id, rng.choice(virtuals))
        assert view.ans == initial
