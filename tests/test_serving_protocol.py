"""Property tests for the serving wire protocol.

The framing layer's contract: every message round-trips bit-exactly
through encode/decode under arbitrary read fragmentation, and **no**
byte sequence -- truncated, corrupted, adversarial or random -- ever
crashes the framer with anything but the typed
:class:`~repro.serving.protocol.ProtocolError` family.
"""

import asyncio
import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.distsim.metrics import Metrics
from repro.serving.protocol import (
    HEADER,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    MESSAGE_TYPES,
    ErrorReply,
    ExecuteReply,
    ExecuteRequest,
    FrameError,
    Framer,
    FrameSplitter,
    LoadFragments,
    Loaded,
    Message,
    MetricsReply,
    MetricsRequest,
    PayloadError,
    Ping,
    Pong,
    ProtocolError,
    QueryReply,
    QueryRequest,
    Rejected,
    Shutdown,
    decode_payload,
    encode_message,
    metrics_from_wire,
    metrics_to_wire,
    read_message,
)

# ---------------------------------------------------------------------------
# One representative (and one adversarially-shaped) instance per kind
# ---------------------------------------------------------------------------

SAMPLE_MESSAGES = [
    LoadFragments(fragments=(("F0", "<a><b/></a>"), ("F1", "<c>x</c>"))),
    LoadFragments(fragments=()),  # zero fragments is legal
    Loaded(fragment_ids=("F0", "F1")),
    ExecuteRequest(
        request_id=7,
        site_id="S1",
        fragment_ids=("F0",),
        qlist_obj=(("label", "a", ()), ("and", None, (0, 0))),
        algebra="canonical",
        segments=((0, 2),),
        label="bottomUp",
    ),
    ExecuteRequest(
        request_id=0,
        site_id="",
        fragment_ids=(),
        qlist_obj=(),
        algebra="",
        segments=(),
        label="",
    ),  # all-empty fields are well-formed
    ExecuteReply(request_id=7, results=((("F0", 2, 3, 0, 0, (), ()), 5, 10, (10,)),), seconds=0.25),
    ExecuteReply(request_id=1, results=(), seconds=0.0),
    ErrorReply(request_id=7, code="unknown-fragment", message="no F9"),
    QueryRequest(request_id=3, queries=("[//a]", ("qlist", (("label", "a", ()),))), engine="parbox"),
    QueryRequest(
        request_id=4,
        queries=("[//a]",),
        engine="",
        trace=("a" * 32, "b" * 16),
    ),  # traced request: (trace_id, parent span)
    QueryReply(request_id=3, answers=(True, False), metrics_obj={"visits": {"S0": 1}}, details={"engine": "ParBoX"}),
    QueryReply(
        request_id=4,
        answers=(True,),
        metrics_obj={},
        details={},
        spans=(("a" * 32, "c" * 16, "b" * 16, "site.execute", "site:S0", 1700000000.0, 0.01, {"fragments": 1}),),
    ),
    Rejected(request_id=3, code="overloaded", message="shed"),
    MetricsRequest(request_id=9),
    MetricsReply(
        request_id=9,
        snapshot={"gateway_requests_total": {"type": "counter", "help": "", "labelnames": [], "values": {"": 3.0}}},
        text="# TYPE gateway_requests_total counter\ngateway_requests_total 3.0\n",
    ),
    Ping(nonce=42),
    Pong(nonce=42, version=1),
    Shutdown(),
]


def test_sample_covers_every_message_kind():
    covered = {type(message).KIND for message in SAMPLE_MESSAGES}
    assert covered == set(MESSAGE_TYPES), "add a sample for every message kind"


@pytest.mark.parametrize("message", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__)
def test_round_trip_each_kind(message):
    frame = encode_message(message)
    magic, kind, length = HEADER.unpack(frame[: HEADER.size])
    assert magic == MAGIC and kind == type(message).KIND
    assert length == len(frame) - HEADER.size
    decoded = decode_payload(kind, frame[HEADER.size :])
    assert decoded == message


@pytest.mark.parametrize("chunk", [1, 2, 3, 7, 64, 10_000])
def test_splitter_handles_interleaved_partial_reads(chunk):
    """Frames survive any read fragmentation, including byte-at-a-time."""
    stream = b"".join(encode_message(message) for message in SAMPLE_MESSAGES)
    framer = Framer()
    decoded = []
    for start in range(0, len(stream), chunk):
        decoded.extend(framer.feed(stream[start : start + chunk]))
    assert decoded == SAMPLE_MESSAGES
    assert framer.pending_bytes == 0


def test_splitter_yields_many_frames_from_one_feed():
    stream = b"".join(encode_message(Ping(nonce=i)) for i in range(20))
    assert FrameSplitter().feed(stream) == [
        (Ping.KIND, frame[HEADER.size :])
        for frame in (encode_message(Ping(nonce=i)) for i in range(20))
    ]


# ---------------------------------------------------------------------------
# Adversarial inputs
# ---------------------------------------------------------------------------


def test_zero_length_payload_is_rejected_typed():
    # A zero-length payload is a well-formed *frame*; it must fail at
    # the payload layer (no pickle in zero bytes), never crash.
    frame = HEADER.pack(MAGIC, Ping.KIND, 0)
    with pytest.raises(PayloadError):
        Framer().feed(frame)


def test_max_size_frame_round_trips():
    big = LoadFragments(fragments=(("F0", "x" * 1_000_000),))
    frame = encode_message(big)
    splitter = FrameSplitter()
    # Feed in two uneven halves to cross the header/payload boundary.
    frames = splitter.feed(frame[: HEADER.size + 1])
    frames += splitter.feed(frame[HEADER.size + 1 :])
    assert len(frames) == 1
    assert decode_payload(*frames[0]) == big


def test_oversized_declared_length_is_frame_error():
    frame = HEADER.pack(MAGIC, Ping.KIND, MAX_PAYLOAD_BYTES + 1)
    with pytest.raises(FrameError):
        FrameSplitter().feed(frame)


def test_oversized_encode_is_frame_error():
    with pytest.raises(FrameError):
        encode_message(LoadFragments(fragments=(("F0", "x" * (MAX_PAYLOAD_BYTES + 1)),)))


def test_bad_magic_is_frame_error_and_poisons():
    splitter = FrameSplitter()
    with pytest.raises(FrameError):
        splitter.feed(b"XXlookslikegarbage")
    # Poisoned: even valid frames are refused afterwards.
    with pytest.raises(FrameError):
        splitter.feed(encode_message(Ping(nonce=1)))


def test_unknown_kind_is_payload_error():
    payload = pickle.dumps((1,))
    frame = HEADER.pack(MAGIC, 250, len(payload)) + payload
    with pytest.raises(PayloadError):
        Framer().feed(frame)


def test_wrong_arity_payload_is_payload_error():
    payload = pickle.dumps((1, 2, 3))  # Ping wants 2 fields
    with pytest.raises(PayloadError):
        decode_payload(Ping.KIND, payload)


def test_wrong_field_type_is_payload_error():
    payload = pickle.dumps((("not", "an", "int"), 1))
    with pytest.raises(PayloadError):
        decode_payload(Ping.KIND, payload)


def test_non_tuple_payload_is_payload_error():
    with pytest.raises(PayloadError):
        decode_payload(Ping.KIND, pickle.dumps("pong?"))


def test_payload_may_not_reference_globals():
    # A crafted payload that tries to instantiate a class on decode
    # must be refused by the restricted unpickler, typed.
    crafted = pickle.dumps((Metrics(), 1))
    with pytest.raises(PayloadError):
        decode_payload(Ping.KIND, crafted)


def test_validate_rejects_malformed_loadfragments():
    with pytest.raises(PayloadError):
        LoadFragments.from_fields(((("F0", b"bytes-not-str"),),))


def test_queryrequest_rejects_empty_batch_and_bad_tags():
    with pytest.raises(PayloadError):
        QueryRequest.from_fields((1, (), "parbox"))
    with pytest.raises(PayloadError):
        QueryRequest.from_fields((1, (("blob", object),), "parbox"))


# ---------------------------------------------------------------------------
# Fuzz: arbitrary bytes never crash the framer
# ---------------------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(data=st.binary(min_size=0, max_size=400))
def test_fuzz_random_bytes_raise_typed_errors_only(data):
    framer = Framer()
    try:
        framer.feed(data)
    except ProtocolError:
        pass  # the only permitted failure mode


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fuzz_corrupted_valid_streams(seed):
    """Flip bytes inside an otherwise-valid stream: typed errors only,
    and everything decoded before the corruption is intact."""
    rng = random.Random(seed)
    stream = bytearray(
        b"".join(encode_message(m) for m in rng.sample(SAMPLE_MESSAGES, 5))
    )
    for _ in range(rng.randint(1, 4)):
        index = rng.randrange(len(stream))
        stream[index] ^= 1 << rng.randrange(8)
    framer = Framer()
    decoded = []
    try:
        for start in range(0, len(stream), 13):
            decoded.extend(framer.feed(bytes(stream[start : start + 13])))
    except ProtocolError:
        pass
    for message in decoded:
        assert isinstance(message, Message)


@settings(max_examples=100, deadline=None)
@given(prefix=st.binary(min_size=1, max_size=20))
def test_fuzz_random_prefix_then_valid_frame(prefix):
    """A poisoned stream stays poisoned: garbage + valid frame never
    silently resynchronizes."""
    framer = Framer()
    stream = prefix + encode_message(Ping(nonce=5))
    try:
        decoded = framer.feed(stream)
    except ProtocolError:
        return
    # Only possible when the prefix happened to be a valid frame start
    # that swallowed the rest; anything decoded must be a real message.
    for message in decoded:
        assert isinstance(message, Message)


# ---------------------------------------------------------------------------
# asyncio reader helper
# ---------------------------------------------------------------------------


def _feed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_read_message_round_trip_and_clean_eof():
    async def scenario():
        reader = _feed_reader(
            encode_message(Ping(nonce=9)) + encode_message(Shutdown())
        )
        assert await read_message(reader) == Ping(nonce=9)
        assert await read_message(reader) == Shutdown()
        assert await read_message(reader) is None  # clean EOF

    asyncio.run(scenario())


@pytest.mark.parametrize("cut", [1, HEADER.size - 1, HEADER.size, HEADER.size + 3])
def test_read_message_truncation_is_frame_error(cut):
    async def scenario():
        frame = encode_message(Ping(nonce=9))
        assert cut < len(frame)
        with pytest.raises(FrameError):
            await read_message(_feed_reader(frame[:cut]))

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Metrics wire form
# ---------------------------------------------------------------------------


def test_metrics_wire_round_trip_counter_for_counter():
    metrics = Metrics()
    metrics.visits.update({"S0": 1, "S1": 2})
    metrics.messages = 7
    metrics.bytes_total = 1234
    metrics.bytes_by_kind.update({"query": 1000, "triplet": 234})
    metrics.nodes_processed = 55
    metrics.qlist_ops = 220
    metrics.segment_ops.update({0: 100, 1: 120})
    metrics.site_seconds.update({"S0": 0.5})
    metrics.elapsed_seconds = 1.5
    metrics.critical_site = "S1"
    metrics.parallel_batches = 2
    restored = metrics_from_wire(metrics_to_wire(metrics))
    assert restored.visits == metrics.visits
    assert restored.bytes_by_kind == metrics.bytes_by_kind
    assert restored.segment_ops == metrics.segment_ops
    assert restored.summary() == metrics.summary()
