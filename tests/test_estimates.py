"""The Fig. 4 cost model as predictions, validated against measurements."""

import pytest

from repro.core import (
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    ParBoXEngine,
)
from repro.core.estimates import (
    estimate_lazy_worst_case,
    estimate_maintenance,
    estimate_naive_centralized,
    estimate_naive_distributed,
    estimate_parbox,
)
from repro.views import MaterializedView
from repro.workloads.portfolio import build_portfolio_cluster
from repro.workloads.queries import query_of_size, seal_query
from repro.workloads.topologies import chain_ft2, star_ft1
from repro.xmltree import XMLNode


@pytest.fixture
def star():
    return star_ft1(5, 4.0, seed=60)


@pytest.fixture
def qlist():
    return query_of_size(8)


class TestParBoXPredictions:
    def test_visits_exact(self, star, qlist):
        estimate = estimate_parbox(star, qlist)
        measured = ParBoXEngine(star).evaluate(qlist)
        assert estimate.max_visits_per_site == measured.metrics.max_visits_per_site()
        assert estimate.total_visits == measured.metrics.total_visits()

    def test_total_ops_exact(self, star, qlist):
        estimate = estimate_parbox(star, qlist)
        measured = ParBoXEngine(star).evaluate(qlist)
        assert estimate.total_ops == measured.metrics.qlist_ops

    def test_parallel_ops_bound(self, star, qlist):
        # max-site load x |q| must bound each individual site's work.
        estimate = estimate_parbox(star, qlist)
        assert estimate.parallel_ops <= estimate.total_ops
        assert estimate.parallel_ops >= estimate.total_ops / len(star.sites())

    def test_communication_bounds_formula_terms(self, star, qlist):
        """The 1 + 3 card(F_j) per-entry bound must dominate reality."""
        from repro.core import bottom_up

        estimate = estimate_parbox(star, qlist)
        total_terms = 0
        st = star.source_tree()
        for fid in st.fragment_ids():
            if st.site_of(fid) == st.coordinator_site:
                continue
            triplet, _ = bottom_up(star.fragment(fid), qlist)
            total_terms += triplet.formula_size()
        assert total_terms <= estimate.communication_terms

    def test_co_located_predictions(self, qlist):
        from repro.workloads.topologies import co_located

        cluster = co_located(6, 3.0, seed=61)
        estimate = estimate_parbox(cluster, qlist)
        assert estimate.max_visits_per_site == 1
        assert estimate.total_visits == 1
        assert estimate.communication_terms == 0  # everything coordinator-local
        measured = ParBoXEngine(cluster).evaluate(qlist)
        assert measured.metrics.bytes_total == 0


class TestBaselinePredictions:
    def test_naive_centralized_shipping(self, star, qlist):
        estimate = estimate_naive_centralized(star, qlist)
        measured = NaiveCentralizedEngine(star).evaluate(qlist)
        # Communication estimated in shipped nodes; bytes per node are
        # bounded (label + text); check proportionality.
        assert estimate.communication_terms > 0
        assert measured.details["shipped_bytes"] >= estimate.communication_terms
        assert estimate.total_visits == len(star.sites()) - 1

    def test_naive_distributed_visits(self, qlist):
        cluster = build_portfolio_cluster()
        q = query_of_size(8)
        estimate = estimate_naive_distributed(cluster, q)
        measured = NaiveDistributedEngine(cluster).evaluate(q)
        assert estimate.max_visits_per_site == measured.metrics.max_visits_per_site() == 2
        assert estimate.total_visits == measured.metrics.total_visits() == 4

    def test_sequentiality_encoded(self, star, qlist):
        estimate = estimate_naive_distributed(star, qlist)
        assert estimate.parallel_ops == estimate.total_ops


class TestLazyPredictions:
    def test_worst_case_bounds_measured(self):
        cluster = chain_ft2(6, 3.0, seed=62)
        qlist = seal_query("NOWHERE")  # forces full descent
        estimate = estimate_lazy_worst_case(cluster, qlist)
        measured = LazyParBoXEngine(cluster).evaluate(qlist)
        assert measured.metrics.max_visits_per_site() <= estimate.max_visits_per_site
        assert measured.metrics.qlist_ops <= estimate.total_ops
        assert measured.metrics.total_visits() <= estimate.total_visits

    def test_early_stop_beats_worst_case(self):
        cluster = chain_ft2(6, 3.0, seed=62)
        qlist = seal_query("F0")
        estimate = estimate_lazy_worst_case(cluster, qlist)
        measured = LazyParBoXEngine(cluster).evaluate(qlist)
        assert measured.metrics.qlist_ops < estimate.total_ops


class TestMaintenancePredictions:
    def test_refresh_costs_bounded(self, star, qlist):
        view = MaterializedView.create(star, qlist)
        star.fragment("F2").root.add_child(XMLNode("note", text="x"))
        estimate = estimate_maintenance(star, qlist, "F2")
        report = view.refresh_fragment("F2")
        assert len(report.sites_visited) == estimate.total_visits == 1
        # nodes_recomputed counts the fragment (plus the one-node update).
        assert report.nodes_recomputed * len(qlist) <= estimate.total_ops + len(qlist)
