"""The observability layer: metrics registry, span trees, event logs.

Three tiers of coverage:

* **units** -- the :mod:`repro.obs` leaf modules in isolation
  (counter/gauge/histogram semantics, Prometheus exposition, percentile
  estimation, span wire round-trips, the tree renderer, JSON event-log
  rotation);
* **integration** -- one networked batch through a real
  :class:`~repro.serving.cluster.ServingCluster` must produce a single
  *connected* cross-process span tree (gateway -> coordinator -> every
  visited site) and a metrics exposition whose counters match observed
  behavior; the resident process executor's workers must likewise
  attach to the ambient session span;
* **CLI** -- ``repro trace`` renders exported span files; ``repro serve
  --check --obs-dir`` writes the scrape/span artifacts the CI smoke
  uploads.
"""

import json
import logging
import math

import pytest
from hypothesis import given, settings, strategies as st

from netfixtures import hard_deadline
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import EventLog, JsonLineHandler, install_event_log, uninstall_event_log
from repro.obs.metrics import (
    MetricsRegistry,
    histogram_percentiles,
    render_snapshot_text,
)
from repro.obs.trace import (
    Span,
    SpanStore,
    SpanTimer,
    TraceContext,
    load_spans,
    render_spans,
)


# ---------------------------------------------------------------------------
# Metrics units
# ---------------------------------------------------------------------------


class TestCounters:
    def test_counter_accumulates_and_snapshots(self):
        registry = MetricsRegistry("t")
        counter = registry.counter("events_total", "things that happened")
        counter.inc()
        counter.inc(2.5)
        assert registry.snapshot()["events_total"]["values"][""] == 3.5

    def test_labeled_counter_tracks_each_series(self):
        registry = MetricsRegistry("t")
        counter = registry.counter("hits_total", labelnames=("kind",))
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc(4)
        counter.labels(kind="a").inc()
        values = registry.snapshot()["hits_total"]["values"]
        assert values == {"kind=a": 2.0, "kind=b": 4.0}

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("n")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registration_is_idempotent_but_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        assert registry.counter("x_total") is first
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("k",))


class TestGaugesAndHistograms:
    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc(1)
        assert gauge._bare()._snapshot() == 4.0

    def test_histogram_buckets_are_cumulative_le(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("s", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 100.0):
            histogram.observe(value)
        snap = registry.snapshot()["s"]["values"][""]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(100.65)
        # le semantics: 0.1 falls in the 0.1 bucket, 100 beyond the last edge.
        assert dict(snap["buckets"]) == {0.1: 2, 1.0: 3, 10.0: 3}

    def test_percentile_estimation_interpolates(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("s", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 0.9):
            histogram.observe(value)
        snap = registry.snapshot()["s"]["values"][""]
        quantiles = histogram_percentiles(snap, (0.5, 0.99))
        assert 0.01 < quantiles[0.5] <= 0.1
        assert 0.1 < quantiles[0.99] <= 1.0

    def test_percentiles_of_empty_histogram_are_none(self):
        registry = MetricsRegistry()
        registry.histogram("s", buckets=(1.0,))
        snap = registry.snapshot()["s"]["values"]
        assert snap == {} or all(
            histogram_percentiles(v, (0.5,))[0.5] is None for v in snap.values()
        )


#: Bucket edges for the percentile property (uneven widths on purpose).
_PROP_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 10.0)


class TestPercentileProperties:
    """The estimator contract the load harness and ``repro top`` rely on.

    For any sample set within the bucket range and any quantiles in
    (0, 1], the histogram estimate must be (a) monotone in q, (b) inside
    [0, last bucket edge], and (c) within one bucket width of the exact
    empirical quantile -- fixed buckets lose *resolution*, never *order*.
    """

    @settings(max_examples=150, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-4, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        qs=st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=6,
        ),
    )
    def test_estimates_are_monotone_bounded_and_bucket_accurate(self, samples, qs):
        registry = MetricsRegistry()
        histogram = registry.histogram("s", buckets=_PROP_BUCKETS)
        for value in samples:
            histogram.observe(value)
        snap = registry.snapshot()["s"]["values"][""]
        estimates = histogram_percentiles(snap, sorted(qs))

        ordered = [estimates[q] for q in sorted(qs)]
        assert all(value is not None for value in ordered)
        # (a) monotone in q.
        assert all(b >= a for a, b in zip(ordered, ordered[1:]))
        # (b) bounded by the bucket range.
        assert all(0.0 <= value <= _PROP_BUCKETS[-1] for value in ordered)
        # (c) within one bucket width of the exact empirical quantile:
        # both the estimate and the ceil(q*n)-th smallest sample live in
        # the crossing bucket, so they differ by at most its width.
        ranked = sorted(samples)
        for q in sorted(qs):
            rank = q * len(ranked)
            exact = ranked[max(0, math.ceil(rank) - 1)]
            edges = (0.0,) + _PROP_BUCKETS
            width = max(
                hi - lo
                for lo, hi in zip(edges, edges[1:])
                if lo <= exact <= hi or lo <= estimates[q] <= hi
            )
            assert abs(estimates[q] - exact) <= width + 1e-9, (
                f"q={q}: estimate {estimates[q]} vs exact {exact} "
                f"differ by more than a bucket width"
            )


class TestExposition:
    def test_prometheus_text_has_help_type_and_series(self):
        registry = MetricsRegistry("gw")
        registry.counter("requests_total", "Requests admitted").inc(3)
        registry.histogram("seconds", "Latency", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_text()
        assert "# HELP requests_total Requests admitted" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3.0" in text
        assert "# TYPE seconds histogram" in text
        assert 'seconds_bucket{le="0.1"} 1' in text
        assert 'seconds_bucket{le="+Inf"} 1' in text
        assert "seconds_count 1" in text

    def test_snapshot_survives_json_and_rerenders(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("k",)).labels(k="x").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        wire = json.loads(json.dumps(registry.snapshot()))
        assert render_snapshot_text(wire) == registry.render_text()

    def test_global_install_is_reversible(self):
        assert obs_metrics.installed() is None
        registry = obs_metrics.install()
        try:
            assert obs_metrics.installed() is registry
        finally:
            obs_metrics.uninstall()
        assert obs_metrics.installed() is None


# ---------------------------------------------------------------------------
# Trace units
# ---------------------------------------------------------------------------


class TestSpanWire:
    def test_span_wire_round_trip(self):
        span = Span(
            trace_id="t" * 32,
            span_id="s" * 16,
            parent_id=None,
            name="gateway.request",
            component="gateway",
            start=1700000000.0,
            duration=0.012,
            attrs={"queries": 2},
        )
        assert Span.from_wire(span.to_wire()) == span
        assert Span.from_obj(json.loads(json.dumps(span.to_obj()))) == span

    def test_context_wire_tolerates_short_tuples(self):
        assert TraceContext.from_wire(()) is None
        only_trace = TraceContext.from_wire(("t" * 32,))
        assert only_trace.trace_id == "t" * 32 and only_trace.span_id == ""
        full = TraceContext.from_wire(("t" * 32, "p" * 16))
        assert full.span_id == "p" * 16

    def test_timer_produces_child_context_and_duration(self):
        timer = SpanTimer("t" * 32, None, "work", "test", k="v")
        child = SpanTimer(timer.trace_id, timer.context().span_id, "inner", "test")
        span = child.finish(extra="x")
        assert span.parent_id == timer.context().span_id
        assert span.duration >= 0
        assert span.attrs == {"extra": "x"}
        parent = timer.finish()
        assert parent.attrs == {"k": "v"}


class TestSpanStoreAndRenderer:
    def test_store_is_bounded(self):
        store = SpanStore(capacity=3)
        for index in range(5):
            store.record(
                Span("t" * 32, f"{index:016d}", None, "s", "c", float(index), 0.0, {})
            )
        assert len(store) == 3
        assert [s.span_id for s in store.spans()] == [
            "0000000000000002",
            "0000000000000003",
            "0000000000000004",
        ]

    def test_export_then_load_then_render_tree(self):
        store = SpanStore()
        root = SpanTimer("t" * 32, None, "gateway.request", "gateway")
        child = SpanTimer("t" * 32, root.context().span_id, "site.execute", "site:S0")
        store.record(child.finish())
        store.record(root.finish())
        spans = load_spans(json.loads(store.export_json()))
        text = render_spans(spans)
        lines = text.splitlines()
        assert lines[0].startswith("trace " + "t" * 32)
        assert "(2 spans)" in lines[0]
        assert lines[1].startswith("  gateway.request")
        assert lines[2].startswith("    site.execute")

    def test_render_orphans_promoted_and_empty_case(self):
        assert render_spans([]) == "(no spans)"
        orphan = Span("t" * 32, "a" * 16, "missing-parent", "lost", "c", 0.0, 0.0, {})
        text = render_spans([orphan])
        assert "lost" in text

    def test_ambient_span_contextmanager_nests(self):
        store = obs_trace.install_spans()
        try:
            with obs_trace.span("outer", "test") as outer:
                with obs_trace.span("inner", "test"):
                    pass
        finally:
            obs_trace.uninstall_spans()
        spans = {s.name: s for s in store.spans()}
        assert spans["inner"].parent_id == outer.context().span_id
        assert spans["outer"].parent_id is None

    def test_span_is_noop_without_collector(self):
        assert obs_trace.installed_spans() is None
        with obs_trace.span("outer", "test") as timer:
            assert timer is None
        assert obs_trace.active_context() is None


# ---------------------------------------------------------------------------
# Event-log units
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_one_json_line_per_event_per_component(self, tmp_path):
        log = EventLog(tmp_path)
        log.emit("gateway", "shed", request_id=7)
        log.emit("gateway", "request", request_id=8, status="ok")
        log.emit("site-S0", "boot", pid=123)
        log.close()
        gateway_lines = [
            json.loads(line)
            for line in (tmp_path / "gateway.jsonl").read_text().splitlines()
        ]
        assert [entry["event"] for entry in gateway_lines] == ["shed", "request"]
        assert gateway_lines[0]["request_id"] == 7
        assert all("ts" in entry for entry in gateway_lines)
        site_entry = json.loads((tmp_path / "site-S0.jsonl").read_text())
        assert site_entry["pid"] == 123

    def test_rotation_keeps_one_predecessor(self, tmp_path):
        log = EventLog(tmp_path, max_bytes=200)
        for index in range(50):
            log.emit("c", "tick", n=index)
        log.close()
        assert (tmp_path / "c.jsonl").exists()
        assert (tmp_path / "c.jsonl.1").exists()
        # Every surviving line is intact JSON (rotation never tears a line).
        for name in ("c.jsonl", "c.jsonl.1"):
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_logging_handler_bridges_stdlib_records(self, tmp_path):
        log = install_event_log(tmp_path)
        handler = JsonLineHandler(log)
        logger = logging.getLogger("repro.serving.testobs")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            logger.info("hello %s", "world")
        finally:
            logger.removeHandler(handler)
            uninstall_event_log()
        entry = json.loads((tmp_path / "testobs.jsonl").read_text())
        assert entry["event"] == "log"
        assert entry["message"] == "hello world"
        assert entry["level"].lower() == "info"


# ---------------------------------------------------------------------------
# Integration: one networked batch -> one connected span tree
# ---------------------------------------------------------------------------


def small_cluster():
    from repro.distsim.cluster import Cluster
    from repro.fragments import fragment_balanced
    from repro.xmltree import parse_xml

    tree = parse_xml("<a>" + "<b><c/></b>" * 12 + "</a>")
    return Cluster.one_site_per_fragment(fragment_balanced(tree, 4))


class TestServingSpanTree:
    def test_traced_batch_yields_connected_tree(self):
        from repro.serving import ServingCluster

        cluster = small_cluster()
        with hard_deadline(60), ServingCluster(cluster) as serving:
            with serving.client() as client:
                reply = client.query(("[//c]", "[not //zzz]"), trace=True)
            spans = [Span.from_wire(wire) for wire in reply.spans]

        assert spans, "traced batch returned no spans"
        trace_ids = {span.trace_id for span in spans}
        assert len(trace_ids) == 1, "one batch must be one trace"
        by_id = {span.span_id: span for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [root.name for root in roots] == ["gateway.request"]
        # Connected: every non-root's parent is present in the same tree.
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, f"orphan span {span.name}"
        # All three layers appear, and every site the ledger visited
        # contributed an execute span.
        components = {span.component for span in spans}
        assert "gateway" in components
        assert "coordinator" in components
        site_components = {c for c in components if c.startswith("site:")}
        assert site_components == {f"site:S{i}" for i in range(4)}
        # Parent/child durations nest plausibly.
        for span in spans:
            if span.parent_id:
                assert span.duration <= by_id[span.parent_id].duration * 50 + 1.0

    def test_gateway_keeps_the_tree_in_its_span_store(self):
        from repro.serving import ServingCluster

        cluster = small_cluster()
        with hard_deadline(60), ServingCluster(cluster) as serving:
            with serving.client() as client:
                client.query(("[//c]",), trace=True)
            store = serving.gateway.spans
            trace_ids = store.trace_ids()
            assert len(trace_ids) == 1
            tree = store.spans(trace_ids[0])
            assert {span.component for span in tree} >= {"gateway", "coordinator"}
            rendered = render_spans(tree)
            assert "gateway.request" in rendered

    def test_untraced_batch_records_nothing(self):
        from repro.serving import ServingCluster

        cluster = small_cluster()
        with hard_deadline(60), ServingCluster(cluster) as serving:
            with serving.client() as client:
                reply = client.query(("[//c]",))
            assert reply.spans == ()
            assert len(serving.gateway.spans) == 0

    def test_metrics_exposition_matches_observed_requests(self):
        from repro.serving import ServingCluster

        cluster = small_cluster()
        with hard_deadline(60), ServingCluster(cluster) as serving:
            with serving.client() as client:
                for _ in range(3):
                    client.query(("[//c]",))
                reply = client.metrics()
                stats = client.server_stats()

        assert stats["gateway_requests_total"] == 3.0
        assert stats["gateway_replies_total{status=ok}"] == 3.0
        assert stats.get("gateway_shed_total", 0.0) == 0.0
        # Every query dispatched to all 4 sites, no retries on loopback.
        assert stats["coordinator_events_total{event=attempts}"] == 12.0
        assert "coordinator_events_total{event=retries}" not in stats
        # The exposition text carries the histogram with 3 samples.
        assert "gateway_request_seconds" in reply.text
        assert "gateway_request_seconds_count 3" in reply.text
        histogram = reply.snapshot["gateway_request_seconds"]["values"][""]
        assert histogram["count"] == 3
        quantiles = histogram_percentiles(histogram, (0.5, 0.99))
        assert quantiles[0.5] is not None and quantiles[0.5] > 0

    def test_site_servers_answer_metrics_requests(self):
        import socket

        from repro.serving import ServingCluster
        from repro.serving.protocol import Framer, MetricsRequest, encode_message

        cluster = small_cluster()
        with hard_deadline(60), ServingCluster(cluster) as serving:
            with serving.client() as client:
                client.query(("[//c]",))
            server = next(iter(serving.sites.values()))[0]
            with socket.create_connection((server.host, server.port), timeout=10) as sock:
                sock.sendall(encode_message(MetricsRequest(request_id=1)))
                framer = Framer()
                replies = []
                while not replies:
                    replies = framer.feed(sock.recv(65536))
        (reply,) = replies
        values = reply.snapshot["site_requests_total"]["values"]
        assert values[""] >= 1.0
        assert "site_execute_seconds" in reply.snapshot
        assert reply.snapshot["site_fragments_resident"]["values"][""] >= 1.0


class TestProcessExecutorTrace:
    def test_worker_spans_attach_to_session_root(self):
        from repro.core import QuerySession

        store = obs_trace.install_spans()
        try:
            with QuerySession(small_cluster(), engine="parbox", executor="process") as session:
                session.evaluate_batch(["[//c]", "[not //zzz]"])
        finally:
            obs_trace.uninstall_spans()

        spans = store.spans()
        roots = [span for span in spans if span.parent_id is None]
        assert [root.name for root in roots] == ["session.batch"]
        workers = [span for span in spans if span.name == "worker.execute"]
        assert workers, "resident workers recorded no spans"
        by_id = {span.span_id: span for span in spans}
        for worker in workers:
            assert worker.component.startswith("worker:")
            assert worker.trace_id == roots[0].trace_id
            assert worker.parent_id in by_id
        # The ledger-visited sites all appear as worker span attrs.
        assert {worker.attrs["site"] for worker in workers} == {
            f"S{i}" for i in range(4)
        }

    def test_no_collector_no_spans_no_trace_in_pipe(self):
        from repro.core import QuerySession

        with QuerySession(small_cluster(), engine="parbox", executor="process") as session:
            result = session.evaluate_batch(["[//c]"])
        assert result.answers == (True,)
        assert obs_trace.installed_spans() is None


class TestExecutorMetricsMirror:
    def test_resident_stats_mirrored_when_registry_installed(self):
        from repro.core import QuerySession

        registry = obs_metrics.install()
        try:
            with QuerySession(small_cluster(), engine="parbox", executor="process") as session:
                session.evaluate_batch(["[//c]"])
            snapshot = registry.snapshot()
        finally:
            obs_metrics.uninstall()
        events = snapshot["executor_events_total"]["values"]
        assert events["event=ships"] >= 4.0
        assert events["event=jobs"] >= 4.0
        # Session-level counters ride the same registry.
        assert snapshot["session_batches_total"]["values"][""] == 1.0
        assert snapshot["session_queries_total"]["values"][""] == 1.0


class TestMaintainerMetrics:
    def test_refresh_rounds_counted_when_registry_installed(self):
        from repro.stream.maintainer import StreamMaintainer
        from repro.stream.updates import InsNode

        cluster = small_cluster()
        registry = obs_metrics.install()
        try:
            maintainer = StreamMaintainer(cluster)
            maintainer.subscribe("q0", "[//c]")
            fragment_id = sorted(cluster.fragmented_tree.fragments)[1]
            parent = cluster.fragment(fragment_id).root
            maintainer.apply([InsNode(fragment_id, parent.node_id, "zzz")])
            snapshot = registry.snapshot()
        finally:
            obs_metrics.uninstall()
        assert snapshot["stream_rounds_total"]["values"][""] == 1.0
        work = snapshot["stream_round_work_total"]["values"]
        assert work["kind=dirty_fragments"] >= 1.0
        assert "kind=traffic_bytes" in work


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliObs:
    def test_serve_check_obs_dir_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        doc = tmp_path / "doc.xml"
        doc.write_text("<a>" + "<b><c/></b>" * 8 + "</a>")
        obs_dir = tmp_path / "obs"
        code = main(
            [
                "serve",
                str(doc),
                "--fragments",
                "3",
                "--check",
                "--obs-dir",
                str(obs_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "self-check" in out
        assert (obs_dir / "metrics.txt").read_text().startswith("# HELP")
        snapshot = json.loads((obs_dir / "metrics.json").read_text())
        assert snapshot["gateway_requests_total"]["values"][""] >= 1.0
        spans_doc = json.loads((obs_dir / "spans.json").read_text())
        assert spans_doc["spans"], "check batch must be traced"

    def test_trace_command_renders_exported_file(self, tmp_path, capsys):
        from repro.cli import main

        store = SpanStore()
        root = SpanTimer("t" * 32, None, "gateway.request", "gateway")
        store.record(
            SpanTimer(
                "t" * 32, root.context().span_id, "site.execute", "site:S0"
            ).finish()
        )
        store.record(root.finish())
        path = tmp_path / "spans.json"
        path.write_text(store.export_json())
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "gateway.request" in out
        assert "site.execute" in out
        assert out.index("gateway.request") < out.index("site.execute")

    def test_trace_command_filters_by_trace_id(self, tmp_path, capsys):
        from repro.cli import main

        store = SpanStore()
        store.record(Span("a" * 32, "1" * 16, None, "first", "c", 0.0, 0.0, {}))
        store.record(Span("b" * 32, "2" * 16, None, "second", "c", 0.0, 0.0, {}))
        path = tmp_path / "spans.json"
        path.write_text(store.export_json())
        assert main(["trace", str(path), "--trace-id", "b" * 32]) == 0
        out = capsys.readouterr().out
        assert "second" in out and "first" not in out

    def test_connect_trace_renders_tree_against_live_gateway(self, capsys):
        from repro.cli import main
        from repro.serving import ServingCluster

        cluster = small_cluster()
        with hard_deadline(60), ServingCluster(cluster) as serving:
            code = main(
                ["connect", serving.address, "[//c]", "--trace"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "gateway.request" in out
        assert "site.execute" in out
