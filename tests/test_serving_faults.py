"""Fault-injection tests for the serving tier.

Every test interposes :class:`netfixtures.FaultyProxy` between the
coordinator and the site servers and mangles whole protocol frames in
transit.  The property under test, in every scenario:

    the client always gets either the *correct answer* or a *typed
    error* -- never a hang, never a crash, never a wrong answer.

Each test is additionally bounded by :func:`netfixtures.hard_deadline`,
so a regression that deadlocks the coordinator fails in seconds.
"""

import random
import socket

import pytest

from netfixtures import (
    TO_COORD,
    TO_SITE,
    FaultyProxy,
    hard_deadline,
    leak_check,
    proxy_factory_for,
)
from repro.core.session import QuerySession
from repro.serving import Overloaded, ServingCluster, SiteUnavailable
from test_properties import (
    build_random_tree,
    random_fragmentation,
    random_placement,
    valid_random_query,
)


def make_topology(seed: int, min_sites: int = 1):
    rng = random.Random(seed)
    while True:
        tree = build_random_tree(rng)
        cluster = random_placement(rng, random_fragmentation(rng, tree))
        if len(cluster.source_tree().sites()) >= min_sites:
            queries = [valid_random_query(rng) for _ in range(3)]
            return cluster, queries


def oracle_answers(cluster, queries, engine="parbox"):
    session = QuerySession(cluster, engine=engine)
    try:
        return session.evaluate_batch(queries).answers
    finally:
        session.close()


def proxied_cluster(cluster, **kwargs):
    registry: dict = {}
    serving = ServingCluster(
        cluster, proxy_factory=proxy_factory_for(registry), **kwargs
    )
    return serving, registry


def any_proxy(registry) -> FaultyProxy:
    return next(iter(registry.values()))[0]


# ---------------------------------------------------------------------------
# Dropped / delayed / duplicated / truncated / corrupted frames
# ---------------------------------------------------------------------------


def test_dropped_reply_is_retried_and_answer_is_correct():
    cluster, queries = make_topology(31)
    expected = oracle_answers(cluster, queries)
    serving, registry = proxied_cluster(cluster, site_timeout=1.0)
    with hard_deadline(60), serving:
        any_proxy(registry).drop_next(TO_COORD)
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected
        assert any_proxy(registry).counts["dropped"] == 1
        assert serving.gateway.coordinator.stats["retries"] >= 1
        # The same counters must be visible from the client side,
        # through the gateway's metrics registry.
        with serving.client() as client:
            stats = client.server_stats()
        assert stats["coordinator_events_total{event=retries}"] >= 1
        assert stats["gateway_requests_total"] >= 1


def test_dropped_request_is_retried_and_answer_is_correct():
    cluster, queries = make_topology(37)
    expected = oracle_answers(cluster, queries)
    serving, registry = proxied_cluster(cluster, site_timeout=1.0)
    with hard_deadline(60), serving:
        any_proxy(registry).drop_next(TO_SITE)
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected
        assert any_proxy(registry).counts["dropped"] == 1


def test_delay_below_timeout_is_absorbed():
    cluster, queries = make_topology(41)
    expected = oracle_answers(cluster, queries)
    serving, registry = proxied_cluster(cluster, site_timeout=5.0)
    with hard_deadline(60), serving:
        for proxies in registry.values():
            proxies[0].delay(TO_COORD, 0.05)
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected
        assert serving.gateway.coordinator.stats["retries"] == 0


def test_delay_beyond_timeout_surfaces_site_unavailable_not_a_hang():
    cluster, queries = make_topology(43)
    serving, registry = proxied_cluster(cluster, site_timeout=0.3)
    with hard_deadline(60), serving:
        for proxies in registry.values():
            # Both attempts (primary, then the reconnect retry) stall.
            proxies[0].delay(TO_SITE, 2.0)
        with serving.client() as client:
            with pytest.raises(SiteUnavailable):
                client.query(tuple(queries))
        # The failure is recorded, and the tier still works once healed.
        assert serving.gateway.coordinator.stats["failures"] >= 1
        for proxies in registry.values():
            proxies[0].clear_faults()
        expected = oracle_answers(cluster, queries)
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected


def test_truncated_frame_causes_retry_not_hang():
    cluster, queries = make_topology(47)
    expected = oracle_answers(cluster, queries)
    serving, registry = proxied_cluster(cluster, site_timeout=2.0)
    with hard_deadline(60), serving:
        any_proxy(registry).truncate_next(TO_COORD)
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected
        assert any_proxy(registry).counts["truncated"] == 1


def test_corrupted_frame_causes_retry_not_wrong_answer():
    cluster, queries = make_topology(53)
    expected = oracle_answers(cluster, queries)
    serving, registry = proxied_cluster(cluster, site_timeout=2.0)
    with hard_deadline(60), serving:
        any_proxy(registry).corrupt_next(TO_COORD)
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected
        assert any_proxy(registry).counts["corrupted"] == 1


def test_duplicated_reply_is_discarded_answer_still_correct():
    cluster, queries = make_topology(59)
    expected = oracle_answers(cluster, queries)
    serving, registry = proxied_cluster(cluster)
    with hard_deadline(60), serving:
        any_proxy(registry).duplicate_next(TO_COORD, frames=3)
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected
        assert any_proxy(registry).counts["duplicated"] >= 1
        assert serving.gateway.coordinator.stats["failures"] == 0


def test_fault_storm_every_kind_back_to_back():
    """Drop, then truncate, then corrupt, then duplicate across
    consecutive batches -- the answers never waver."""
    cluster, queries = make_topology(61)
    expected = oracle_answers(cluster, queries)
    serving, registry = proxied_cluster(cluster, site_timeout=1.0)
    with hard_deadline(120), serving:
        proxy = any_proxy(registry)
        for arm in (
            proxy.drop_next,
            proxy.truncate_next,
            proxy.corrupt_next,
            proxy.duplicate_next,
        ):
            arm(TO_COORD)
            with serving.session() as session:
                assert session.evaluate_batch(queries).answers == expected


# ---------------------------------------------------------------------------
# Gateway-side faults
# ---------------------------------------------------------------------------


def test_overload_is_shed_with_typed_rejection():
    cluster, queries = make_topology(67)
    serving = ServingCluster(cluster, max_inflight=1, max_queue=0)
    with hard_deadline(60), serving:
        # Make the (single) worker slot slow so a probe query arrives
        # while the first is still inflight.
        for servers in serving.sites.values():
            for server in servers:
                server.delay_seconds = 2.0
        import threading
        import time

        first_error: list = []

        def slow_query():
            try:
                with serving.client() as client:
                    client.query(tuple(queries))
            except Exception as error:  # noqa: BLE001 - collected for assert
                first_error.append(error)

        worker = threading.Thread(target=slow_query)
        worker.start()
        try:
            # Wait until the slow query *occupies* the single slot, so
            # the probe below deterministically exceeds capacity.
            deadline = time.monotonic() + 10
            while serving.gateway.inflight < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert serving.gateway.inflight >= 1, "slow query never got admitted"
            with serving.client(timeout=5.0) as client:
                with pytest.raises(Overloaded):
                    client.query(tuple(queries))
        finally:
            worker.join(timeout=30)
        assert serving.gateway.shed_count >= 1
        assert not first_error, f"inflight query should finish: {first_error}"
        # The shed is also visible remotely via the metrics registry.
        with serving.client(timeout=5.0) as client:
            stats = client.server_stats()
        assert stats["gateway_shed_total"] >= 1
        assert stats["gateway_replies_total{status=shed}"] >= 1


def test_gateway_survives_random_bytes_then_serves_fresh_client():
    cluster, queries = make_topology(71)
    expected = oracle_answers(cluster, queries)
    with hard_deadline(60), ServingCluster(cluster) as serving:
        host, port = serving.gateway.host, serving.gateway.port
        for payload in (b"\x00" * 64, b"GET / HTTP/1.1\r\n\r\n", bytes(range(256))):
            with socket.create_connection((host, port), timeout=5) as raw:
                raw.sendall(payload)
                raw.settimeout(5)
                try:
                    while raw.recv(4096):
                        pass  # drain until the gateway drops us
                except (TimeoutError, OSError):
                    pass
        with serving.session() as session:
            assert session.evaluate_batch(queries).answers == expected


def test_faulted_runs_leak_no_fds_or_tasks():
    cluster, queries = make_topology(73)
    expected = oracle_answers(cluster, queries)
    with hard_deadline(120), leak_check() as tracked:
        serving, registry = proxied_cluster(cluster, site_timeout=1.0)
        with serving:
            tracked.append(serving)
            proxy = any_proxy(registry)
            proxy.drop_next(TO_COORD)
            with serving.session() as session:
                assert session.evaluate_batch(queries).answers == expected
            proxy.truncate_next(TO_COORD)
            with serving.session() as session:
                assert session.evaluate_batch(queries).answers == expected
