"""Ground-truth tests against the paper's worked examples.

Example 2.1 fixes ``QList(q)`` for q = //stock[code/text() = "yhoo"];
Examples 3.1/3.2 print the exact (V, CV, DV) triplets of four fragments;
Example 3.3 unifies them to the answer ``true``.  This module rebuilds
that exact scenario -- using the paper's own 10-entry QList (built by
hand, since the printed example elides a ``*`` step; see
tests/test_xpath_normalize.py) -- and asserts our ``bottomUp`` and
``evalST`` reproduce every printed formula.

Known typo in the paper: ``CVF1`` and ``DVF1`` print ``0`` in their
first entry although children of F1's root include the virtual node F2,
so they must be ``x1`` / ``dx1`` (exactly as every other entry i of the
same vectors is ``xi`` / ``dxi``).  We assert the algorithmically
consistent values.
"""

import pytest

from repro.boolexpr import FALSE, TRUE, Var, make_or
from repro.core import bottom_up, eval_st
from repro.core.eval_st import build_equation_system
from repro.fragments import Fragment, FragmentedTree, Placement, SourceTree
from repro.xmltree.builder import element
from repro.xmltree.node import XMLNode
from repro.xpath.qlist import (
    OP_AND,
    OP_CHILD,
    OP_DESC,
    OP_LABEL_IS,
    OP_SELF_QUAL,
    OP_TEXT_IS,
    QEntry,
    QList,
)


def paper_qlist() -> QList:
    """Example 2.1's QList, exactly as printed (1-based in the paper)."""
    return QList(
        [
            QEntry(OP_LABEL_IS, value="code"),  # q1
            QEntry(OP_TEXT_IS, value="yhoo"),  # q2
            QEntry(OP_AND, args=(0, 1)),  # q3 = q1 ∧ q2
            QEntry(OP_SELF_QUAL, args=(2,)),  # q4 = ε[q3]
            QEntry(OP_CHILD, args=(3,)),  # q5 = */ε[q4]
            QEntry(OP_LABEL_IS, value="stock"),  # q6
            QEntry(OP_AND, args=(4, 5)),  # q7 = q5 ∧ q6
            QEntry(OP_SELF_QUAL, args=(6,)),  # q8 = ε[q7]
            QEntry(OP_DESC, args=(7,)),  # q9 = //ε[q8]
            QEntry(OP_SELF_QUAL, args=(8,)),  # q10 = ε[q9]
        ],
        source="paper-example-2.1",
    )


# Variable shorthands matching the paper: xi/dxi for F2, yi/dyi for F1,
# zi/dzi for F3 (1-based index i).
def x(i):
    return Var("F2", "V", i - 1)


def dx(i):
    return Var("F2", "DV", i - 1)


def y(i):
    return Var("F1", "V", i - 1)


def dy(i):
    return Var("F1", "DV", i - 1)


def z(i):
    return Var("F3", "V", i - 1)


def dz(i):
    return Var("F3", "DV", i - 1)


def build_example_fragments() -> FragmentedTree:
    """The fragment contents implied by Examples 3.1/3.2.

    * F0 = portofolio{ @F1, broker{ name(Bache), stock{}, @F3 } }
    * F1 = broker{ name(Merill Lynch), @F2 }
    * F2 = market{ name(NASDAQ), stock{ code(yhoo) } }
    * F3 = market{ stock{ code(ibm) } }

    (The printed vectors pin these shapes down: e.g. ``DVF0[6] = 1``
    requires a stock node inside F0 while ``DVF0[1] = dy1 ∨ dz1``
    requires it to have no code child.)
    """
    f0 = element("portofolio")
    f0.add_child(XMLNode.virtual("F1"))
    f0.add_child(
        element("broker", element("name", text="Bache"), element("stock"))
    )
    f0.children[1].add_child(XMLNode.virtual("F3"))

    f1 = element("broker", element("name", text="Merill Lynch"))
    f1.add_child(XMLNode.virtual("F2"))

    f2 = element(
        "market",
        element("name", text="NASDAQ"),
        element("stock", element("code", text="yhoo")),
    )
    f3 = element("market", element("stock", element("code", text="ibm")))

    return FragmentedTree(
        {
            "F0": Fragment("F0", f0),
            "F1": Fragment("F1", f1),
            "F2": Fragment("F2", f2),
            "F3": Fragment("F3", f3),
        },
        "F0",
    )


@pytest.fixture(scope="module")
def triplets():
    qlist = paper_qlist()
    tree = build_example_fragments()
    return {
        fid: bottom_up(fragment, qlist)[0]
        for fid, fragment in tree.fragments.items()
    }


class TestExample32Vectors:
    """Every formula of Example 3.2, entry by entry."""

    def test_vf0(self, triplets):
        expected = [
            FALSE, FALSE, FALSE, FALSE,
            y(4),
            FALSE, FALSE, FALSE,
            make_or(dy(8), dz(8)),
            make_or(dy(8), dz(8)),
        ]
        assert list(triplets["F0"].v) == expected

    def test_cvf0(self, triplets):
        expected = [
            y(1), y(2), y(3), y(4),
            make_or(y(5), z(4)),
            y(6), y(7), y(8),
            make_or(y(9), dz(8)),
            make_or(y(10), dz(8)),
        ]
        assert list(triplets["F0"].cv) == expected

    def test_dvf0(self, triplets):
        expected = [
            make_or(dy(1), dz(1)),
            make_or(dy(2), dz(2)),
            make_or(dy(3), dz(3)),
            make_or(dy(4), dz(4)),
            make_or(dy(5), dz(5), z(4), y(4)),
            TRUE,
            make_or(dy(7), dz(7)),
            make_or(dy(8), dz(8)),
            make_or(dy(8), dz(8), dy(9), dz(9)),
            make_or(dy(8), dz(8), dy(10), dz(10)),
        ]
        assert list(triplets["F0"].dv) == expected

    def test_vf1(self, triplets):
        expected = [
            FALSE, FALSE, FALSE, FALSE,
            x(4),
            FALSE, FALSE, FALSE,
            dx(8),
            dx(8),
        ]
        assert list(triplets["F1"].v) == expected

    def test_cvf1(self, triplets):
        # Paper prints CVF1[1] = 0; algorithmically it is x1 (typo --
        # every entry i of CVF1 is xi, the V-variables of virtual F2).
        assert list(triplets["F1"].cv) == [x(i) for i in range(1, 11)]

    def test_dvf1(self, triplets):
        # Paper prints DVF1[1] = 0; algorithmically dx1 (same typo).
        expected = [
            dx(1), dx(2), dx(3), dx(4),
            make_or(x(4), dx(5)),
            dx(6), dx(7), dx(8),
            make_or(dx(8), dx(9)),
            make_or(dx(8), dx(10)),
        ]
        assert list(triplets["F1"].dv) == expected

    def test_vf2(self, triplets):
        expected = [FALSE] * 8 + [TRUE, TRUE]
        assert list(triplets["F2"].v) == expected

    def test_cvf2(self, triplets):
        expected = [FALSE] * 4 + [TRUE] * 6
        assert list(triplets["F2"].cv) == expected

    def test_dvf2(self, triplets):
        assert list(triplets["F2"].dv) == [TRUE] * 10

    def test_vf3(self, triplets):
        assert list(triplets["F3"].v) == [FALSE] * 10

    def test_cvf3(self, triplets):
        expected = [FALSE] * 5 + [TRUE] + [FALSE] * 4
        assert list(triplets["F3"].cv) == expected

    def test_dvf3(self, triplets):
        expected = [TRUE] + [FALSE] * 4 + [TRUE] + [FALSE] * 4
        assert list(triplets["F3"].dv) == expected

    def test_leaf_triplets_are_ground(self, triplets):
        # "the vectors of leaf fragments in the source tree contain no
        # variables" -- F2 and F3 are the leaf fragments.
        assert triplets["F2"].is_ground()
        assert triplets["F3"].is_ground()

    def test_variable_ownership(self, triplets):
        assert triplets["F0"].referenced_fragments() == {"F1", "F3"}
        assert triplets["F1"].referenced_fragments() == {"F2"}


class TestExample33Unification:
    """The bottom-up unification dy8 <- dx8 <- 1, dz8 <- 0 => q = true."""

    def test_answer_formula_shape(self, triplets):
        assert triplets["F0"].v[9] == make_or(dy(8), dz(8))

    def test_unification_steps(self, triplets):
        system = build_equation_system(triplets)
        assert system.value_of(dx(8)) is True  # DVF2 unifies dx8 to 1
        assert system.value_of(dy(8)) is True  # DVF1 unifies dy8 to dx8
        assert system.value_of(dz(8)) is False  # DVF3 unifies dz8 to 0

    def test_answer_is_true(self, triplets):
        tree = build_example_fragments()
        placement = Placement({"F0": "S0", "F1": "S1", "F2": "S2", "F3": "S2"})
        source_tree = SourceTree.from_fragmented_tree(tree, placement)
        assert eval_st(triplets, source_tree, paper_qlist()) is True


class TestSection1Example:
    """Section 1: Q = [//A ∧ //B] over T = R{X{Z}, Y} (Fig. 1(a)).

    Q(R, X, Y, Z) = (rA ∨ xA ∨ yA ∨ zA) ∧ (rB ∨ xB ∨ yB ∨ zB); with A
    only in Z and B only in Y the answer is true, computed with one
    visit per fragment.
    """

    def _fragments(self):
        z = element("z", element("A"))
        y = element("y", element("B"))
        x = element("x")
        x.add_child(XMLNode.virtual("Z"))
        r = element("r")
        r.add_child(XMLNode.virtual("X"))
        r.add_child(XMLNode.virtual("Y"))
        return FragmentedTree(
            {
                "R": Fragment("R", r),
                "X": Fragment("X", x),
                "Y": Fragment("Y", y),
                "Z": Fragment("Z", z),
            },
            "R",
        )

    def test_answer(self):
        from repro.xpath import compile_query

        qlist = compile_query("[//A and //B]")
        tree = self._fragments()
        triplets = {fid: bottom_up(f, qlist)[0] for fid, f in tree.fragments.items()}
        placement = Placement({fid: f"S{fid}" for fid in tree.fragments})
        source_tree = SourceTree.from_fragmented_tree(tree, placement)
        assert eval_st(triplets, source_tree, qlist) is True

    def test_partial_answers_are_expressions_or_values(self):
        # "some of the returned values are truth values while others are
        # Boolean expressions"
        from repro.xpath import compile_query

        qlist = compile_query("[//A and //B]")
        tree = self._fragments()
        triplets = {fid: bottom_up(f, qlist)[0] for fid, f in tree.fragments.items()}
        assert triplets["Z"].is_ground() and triplets["Y"].is_ground()
        assert not triplets["X"].is_ground()
        assert not triplets["R"].is_ground()
