"""Protocol-level tests via the event trace."""

import pytest

from repro.core import (
    FullDistParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    ParBoXEngine,
)
from repro.core.engine import MSG_FRAGMENT_DATA, MSG_QUERY, MSG_TRIPLET
from repro.distsim.trace import Trace
from repro.workloads.portfolio import build_portfolio_cluster
from repro.xpath import compile_query


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


@pytest.fixture
def qlist():
    return compile_query("[//stock]")


def traced(engine_cls, cluster, qlist):
    trace = Trace()
    engine_cls(cluster, trace=trace).evaluate(qlist)
    return trace


class TestTraceMechanics:
    def test_events_recorded_in_order(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        sequences = [event.sequence for event in trace]
        assert sequences == sorted(sequences)
        assert len(trace) > 0

    def test_event_kinds(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        kinds = {event.kind for event in trace}
        assert kinds == {"visit", "message", "compute"}

    def test_filtering(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        assert all(e.kind == "visit" for e in trace.events("visit"))
        assert len(trace.events()) == len(trace)

    def test_render_lines(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        text = trace.render()
        assert text.count("\n") == len(trace) - 1
        assert "visit" in text and "message" in text and "compute" in text

    def test_no_trace_by_default(self, cluster, qlist):
        engine = ParBoXEngine(cluster)
        assert engine.trace is None
        engine.evaluate(qlist)  # must not fail without a trace


class TestParBoXProtocol:
    def test_query_broadcast_precedes_triplets(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        first_reply = trace.first_index(
            lambda e: e.kind == "message" and e.detail == MSG_TRIPLET
        )
        queries = [
            e for e in trace.events("message") if e.detail == MSG_QUERY
        ]
        assert queries, "the query must be broadcast"
        assert all(q.sequence < first_reply for q in queries[:1])

    def test_each_site_gets_query_once(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        recipients = [e.peer for e in trace.events("message") if e.detail == MSG_QUERY]
        assert sorted(recipients) == ["S0", "S1", "S2"]

    def test_one_reply_per_site(self, cluster, qlist):
        # S2 holds two fragments but sends a single combined reply.
        trace = traced(ParBoXEngine, cluster, qlist)
        replies = [e for e in trace.events("message") if e.detail == MSG_TRIPLET]
        assert sorted(e.site for e in replies) == ["S0", "S1", "S2"]

    def test_no_fragment_data_messages(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        assert not [e for e in trace.events("message") if e.detail == MSG_FRAGMENT_DATA]

    def test_compute_happens_on_owning_sites(self, cluster, qlist):
        trace = traced(ParBoXEngine, cluster, qlist)
        compute_sites = {e.site for e in trace.events("compute")}
        assert compute_sites == {"S0", "S1", "S2"}


class TestRenderFormats:
    """``TraceEvent.render`` line shapes are part of the CLI's output."""

    def test_visit_line(self):
        from repro.distsim.trace import TraceEvent

        assert TraceEvent(sequence=3, kind="visit", site="S2").render() == (
            "[003] visit    S2"
        )

    def test_message_line_with_byte_count(self):
        from repro.distsim.trace import TraceEvent

        event = TraceEvent(
            sequence=12,
            kind="message",
            site="S0",
            peer="S1",
            detail="triplet",
            amount=512.0,
        )
        assert event.render() == "[012] message  S0 -> S1  triplet (512 B)"

    def test_compute_line_in_milliseconds(self):
        from repro.distsim.trace import TraceEvent

        event = TraceEvent(
            sequence=7, kind="compute", site="S1", detail="bottomUp", amount=0.0125
        )
        assert event.render() == "[007] compute  S1  bottomUp (12.50 ms)"

    def test_empty_trace_renders_empty(self):
        assert Trace().render() == ""


class TestFirstIndex:
    def test_finds_earliest_match(self):
        trace = Trace()
        trace.record_visit("S0")
        trace.record_message("S0", "S1", "query", 128)
        trace.record_compute("S1", 0.01, label="bottomUp")
        assert trace.first_index(lambda e: e.kind == "message") == 1
        assert trace.first_index(lambda e: e.site == "S1") == 2

    def test_no_match_is_none(self):
        trace = Trace()
        trace.record_visit("S0")
        assert trace.first_index(lambda e: e.kind == "teleport") is None
        assert Trace().first_index(lambda e: True) is None


class TestCliTimeline:
    def test_query_trace_prints_wellformed_timeline(self, tmp_path, capsys):
        import re

        from repro.cli import main

        path = tmp_path / "doc.xml"
        path.write_text("<a><b><c/></b><b/></a>")
        assert main(["query", str(path), "[//c]", "--fragments", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        timeline = [line for line in out.splitlines() if re.match(r"\[\d{3}\] ", line)]
        assert timeline, "expected rendered trace lines in --trace output"
        # Sequence numbers are dense and ordered; every line is one of
        # the three event shapes.
        for index, line in enumerate(timeline):
            assert line.startswith(f"[{index:03d}] ")
            assert re.match(r"\[\d{3}\] (visit|message|compute)\s", line)
        assert any(
            re.search(r"message\s+\S+ -> \S+\s+\S+ \(\d+ B\)", line)
            for line in timeline
        )


class TestBaselineProtocols:
    def test_naive_centralized_ships_data(self, cluster, qlist):
        trace = traced(NaiveCentralizedEngine, cluster, qlist)
        shipments = [e for e in trace.events("message") if e.detail == MSG_FRAGMENT_DATA]
        assert shipments and all(e.peer == "S0" for e in shipments)

    def test_naive_distributed_control_returns_to_caller(self, cluster, qlist):
        trace = traced(NaiveDistributedEngine, cluster, qlist)
        # F2 lives on S2 under F1 on S1: results must flow S2 -> S1.
        assert trace.messages_between("S2", "S1")

    def test_fulldist_triplets_flow_up_the_source_tree(self, cluster, qlist):
        trace = traced(FullDistParBoXEngine, cluster, qlist)
        # F2 (S2) resolves into F1 (S1); F1 and F3 resolve into F0 (S0).
        assert trace.messages_between("S2", "S1")
        assert trace.messages_between("S1", "S0")
        assert trace.messages_between("S2", "S0")
