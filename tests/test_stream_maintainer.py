"""Tests for the continuous-query maintenance runtime (stream/)."""

import pytest

from repro.core import ENGINE_REGISTRY, ParBoXEngine, QuerySession
from repro.distsim.executors import ThreadSiteExecutor
from repro.stream import (
    Changefeed,
    ChangeEvent,
    DirtyIndex,
    InsNode,
    MergeFragment,
    Relabel,
    SplitFragment,
    StreamMaintainer,
)
from repro.workloads.portfolio import build_portfolio_cluster
from repro.workloads.topologies import star_ft1
from repro.workloads.updates import update_stream
from repro.xpath import compile_query


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


@pytest.fixture
def maintainer(cluster):
    maintainer = StreamMaintainer(cluster)
    maintainer.subscribe("has-stock", "[//stock]")
    maintainer.subscribe("goog-376", '[//stock[code = "GOOG" and sell = "376"]]')
    maintainer.subscribe("no-tsla", '[not(//code = "TSLA")]')
    return maintainer


def _sell_node(cluster):
    return next(
        n for n in cluster.fragment("F2").root.iter_subtree() if n.label == "sell"
    )


class TestDirtyIndex:
    def test_duplicate_joins_segment_without_growth(self):
        index = DirtyIndex()
        q = compile_query("[//a]")
        _, first_new = index.subscribe("x", q)
        combined_before = index.combined()
        _, second_new = index.subscribe("y", compile_query("[//a]"))
        assert first_new and not second_new
        assert index.combined() is combined_before  # not even re-derived
        assert index.duplicate_count() == 1

    def test_new_segment_appends_after_existing(self):
        index = DirtyIndex()
        a = compile_query("[//a]")
        b = compile_query("[//b and c]")
        index.subscribe("x", a)
        index.subscribe("y", b)
        assert index.spans() == ((0, len(a)), (len(a), len(b)))

    def test_unsubscribe_reoffsets_successors(self):
        index = DirtyIndex()
        a, b, c = (compile_query(q) for q in ("[//a]", "[//b]", "[//c]"))
        for name, q in (("x", a), ("y", b), ("z", c)):
            index.subscribe(name, q)
        index.unsubscribe("y")
        assert index.spans() == ((0, len(a)), (len(a), len(c)))
        assert [s.qlist for s in index.segments()] == [a, c]

    def test_plan_matches_fresh_plan_semantics(self, cluster):
        index = DirtyIndex()
        queries = {"x": "[//stock]", "y": "[//sell]", "z": "[//stock]"}
        for name, text in queries.items():
            index.subscribe(name, compile_query(text))
        plan = index.plan(["x", "y", "z"])
        assert plan.answer_indices[0] == plan.answer_indices[2]
        answers = ParBoXEngine(cluster).evaluate_many(plan).answers
        assert answers == (True, True, True)

    def test_slices_round_trip_standalone_evaluation(self, cluster):
        from repro.core import bottom_up

        index = DirtyIndex()
        queries = [compile_query(q) for q in ("[//stock]", '[not(//code = "TSLA")]')]
        for i, q in enumerate(queries):
            index.subscribe(f"q{i}", q)
        fragment = cluster.fragment("F1")
        combined_triplet, _ = bottom_up(fragment, index.combined())
        for segment, sliced in index.slices_of(combined_triplet):
            standalone, _ = bottom_up(fragment, segment.qlist)
            assert sliced == standalone


class TestSubscribeUnsubscribe:
    def test_initial_answers(self, maintainer):
        assert maintainer.answers() == {
            "has-stock": True,
            "goog-376": False,
            "no-tsla": True,
        }

    def test_duplicate_subscription_costs_nothing(self, cluster, maintainer):
        # A twin of a standing query must not touch any site.
        visits_probe = []

        class CountingExecutor(ThreadSiteExecutor):
            def run_jobs(self, jobs):
                visits_probe.extend(jobs)
                return super().run_jobs(jobs)

        m = StreamMaintainer(cluster, executor=CountingExecutor())
        m.subscribe("a", "[//stock]")
        jobs_after_first = len(visits_probe)
        assert m.subscribe("b", "[//stock]") is True  # answer served from cache
        assert len(visits_probe) == jobs_after_first  # no new site work
        assert m.duplicate_subscriptions() == 1

    def test_new_segment_evaluates_only_itself(self, cluster):
        jobs_log = []

        class CountingExecutor(ThreadSiteExecutor):
            def run_jobs(self, jobs):
                jobs_log.extend(jobs)
                return super().run_jobs(jobs)

        m = StreamMaintainer(cluster, executor=CountingExecutor())
        m.subscribe("a", "[//stock]")
        first_len = len(compile_query("[//stock]"))
        second_len = len(compile_query("[//sell]"))
        jobs_log.clear()
        m.subscribe("b", "[//sell]")
        # The subscribe jobs carry the new segment's QList only, not
        # the combined standing query.
        assert jobs_log and all(len(job.qlist) == second_len for job in jobs_log)
        assert m.combined_size() == first_len + second_len

    def test_unsubscribe_duplicate_keeps_answers(self, maintainer):
        maintainer.subscribe("has-stock-2", "[//stock]")
        maintainer.unsubscribe("has-stock-2")
        assert maintainer.answers() == {
            "has-stock": True,
            "goog-376": False,
            "no-tsla": True,
        }

    def test_unsubscribe_unique_segment_drops_cache_only(self, maintainer):
        maintainer.unsubscribe("goog-376")
        assert maintainer.names() == ["has-stock", "no-tsla"]
        assert maintainer.answers() == {"has-stock": True, "no-tsla": True}

    def test_parse_error_leaves_state_untouched(self, maintainer):
        from repro.xpath import QueryParseError

        with pytest.raises(QueryParseError):
            maintainer.subscribe("bad", "[[nope")
        assert maintainer.names() == ["has-stock", "goog-376", "no-tsla"]
        assert maintainer.subscribe("bad", "[//zzz]") is False

    def test_duplicate_name_rejected(self, maintainer):
        with pytest.raises(ValueError):
            maintainer.subscribe("has-stock", "[//a]")


class TestRefresh:
    def test_update_flips_exactly_the_affected(self, cluster, maintainer):
        sell = _sell_node(cluster)
        round_ = maintainer.apply([Relabel("F2", sell.node_id, text="376")])
        assert round_.changed == ("goog-376",)
        assert round_.dirty_fragments == ("F2",)
        assert round_.sites_visited == ("S2",)
        assert round_.metrics.dirty_site_visits == 1
        assert maintainer.answer("goog-376") is True

    def test_only_changed_slices_ship(self, cluster, maintainer):
        sell = _sell_node(cluster)
        round_ = maintainer.apply([Relabel("F2", sell.node_id, text="376")])
        # Only goog-376's segment changed in F2: one slice on the wire.
        assert round_.slices_shipped == 1
        assert round_.segments_resolved == 1

    def test_unchanged_refresh_ships_control_ack_only(self, cluster, maintainer):
        from repro.core.engine import CONTROL_BYTES

        round_ = maintainer.refresh(["F2"])
        assert not round_.triplet_changed
        assert round_.changed == ()
        assert round_.traffic_bytes == CONTROL_BYTES

    def test_changefeed_accumulates_and_drains(self, cluster, maintainer):
        sell = _sell_node(cluster)
        maintainer.apply([Relabel("F2", sell.node_id, text="376")])
        maintainer.apply([Relabel("F2", sell.node_id, text="377")])
        events = maintainer.changefeed.drain()
        assert [e.name for e in events] == ["goog-376", "goog-376"]
        assert (events[0].old_answer, events[0].new_answer) == (False, True)
        assert (events[1].old_answer, events[1].new_answer) == (True, False)
        assert maintainer.changefeed.drain() == []  # cursor advanced
        assert len(maintainer.changefeed) == 2  # history retained

    def test_multi_fragment_batch_visits_each_dirty_site_once(self, cluster, maintainer):
        f1 = cluster.fragment("F1").root
        f2 = cluster.fragment("F2").root
        f3 = cluster.fragment("F3").root
        round_ = maintainer.apply(
            [
                InsNode("F1", f1.node_id, "note"),
                InsNode("F2", f2.node_id, "note"),
                InsNode("F3", f3.node_id, "note"),
            ]
        )
        # F2 and F3 share S2: one visit, one combined job for both.
        assert sorted(round_.sites_visited) == ["S1", "S2"]
        assert round_.metrics.total_visits() == 2
        assert round_.metrics.dirty_site_visits == 2

    def test_split_and_merge_preserve_answers(self, cluster, maintainer):
        before = maintainer.answers()
        stock = cluster.fragment("F1").root.find_first(
            lambda n: not n.is_virtual and n.label == "stock"
        )
        split_round = maintainer.apply([SplitFragment("F1", stock.node_id)])
        assert split_round.structural
        assert split_round.changed == ()
        assert maintainer.answers() == before
        new_id = split_round.dirty_fragments[-1]
        merge_round = maintainer.apply([MergeFragment("F1", new_id)])
        assert merge_round.changed == ()
        assert maintainer.answers() == before

    def test_empty_batch_is_a_cheap_noop(self, maintainer):
        round_ = maintainer.apply([])
        assert round_.dirty_fragments == ()
        assert round_.traffic_bytes == 0
        assert round_.metrics.total_visits() == 0

    def test_refresh_rounds_counted(self, cluster, maintainer):
        round_ = maintainer.refresh(["F1"])
        assert round_.metrics.refresh_rounds == 1
        assert "refresh_rounds" in round_.metrics.summary()

    def test_refresh_unknown_fragment_raises(self, maintainer):
        # A typo'd id must not silently no-op into stale answers.
        with pytest.raises(KeyError):
            maintainer.refresh(["F99"])

    def test_partial_batch_failure_still_refreshes_applied_ops(
        self, cluster, maintainer
    ):
        from repro.stream import DelNode, UpdateError

        sell = _sell_node(cluster)
        good = Relabel("F2", sell.node_id, text="376")
        bad = DelNode("F2", 10**9)
        with pytest.raises(UpdateError):
            maintainer.apply([good, bad])
        # The relabel applied before the failure; the answers must
        # already reflect it (no silent divergence from the document).
        assert maintainer.answer("goog-376") is True
        scratch = ParBoXEngine(cluster).evaluate_many(maintainer.plan()).answers
        assert tuple(maintainer.answers().values()) == scratch


class TestWatchAPI:
    def test_watch_shares_cache_and_executor(self, cluster):
        with QuerySession(cluster, engine="parbox", executor="threads") as session:
            handle = session.watch(["[//stock]", "[//sell]"])
            assert handle.cache is session.cache
            assert handle.executor is session.engine.executor
            # Closing the handle must not tear down the shared executor.
            handle.close()
            assert session.evaluate("[//stock]").answer is True

    def test_watch_default_names_disambiguate_duplicates(self, cluster):
        with QuerySession(cluster) as session:
            handle = session.watch(["[//stock]", "[//stock]"])
            assert handle.names() == ["[//stock]", "[//stock]#2"]
            assert handle.duplicate_subscriptions() == 1
            handle.close()

    def test_watch_rejects_mismatched_names(self, cluster):
        with QuerySession(cluster) as session:
            with pytest.raises(ValueError):
                session.watch(["[//a]"], names=["x", "y"])
            with pytest.raises(ValueError):
                session.watch([])


class TestOracleAgreement:
    """Satellite: incremental maintenance == from-scratch, always."""

    ENGINES = ["parbox", "fulldist", "lazy"]
    EXECUTORS = ["serial", "threads", "process"]

    @pytest.mark.parametrize("engine_name", ENGINES)
    @pytest.mark.parametrize("executor_name", EXECUTORS)
    def test_random_stream_agrees_bitwise(self, engine_name, executor_name):
        cluster = star_ft1(4, 0.6, seed=17, nodes_per_mb=24)
        queries = [
            "[//bidder]",
            '[//probe = "on"]',
            "[//seal]",
            "[not(//note)]",
            "[//bidder]",  # duplicate: rides the first segment
        ]
        engine_cls = ENGINE_REGISTRY[engine_name]
        with engine_cls(cluster, executor=executor_name) as oracle:
            maintainer = StreamMaintainer(cluster, executor=oracle.executor)
            for index, text in enumerate(queries):
                maintainer.subscribe(f"q{index}", text)
            stream = update_stream(
                cluster,
                rounds=6,
                ops_per_round=3,
                seed=23,
                structural_every=2,
            )
            saw_structural = False
            for batch in stream:
                round_ = maintainer.apply(batch)
                saw_structural = saw_structural or round_.structural
                live = tuple(maintainer.answers().values())
                scratch = oracle.evaluate_many(maintainer.plan()).answers
                assert live == scratch, f"diverged at round {round_.seq}"
            assert saw_structural  # the stream really exercised split/merge

    def test_long_stream_with_naive_oracle(self):
        # One long run against the centralized oracle, serial executor.
        cluster = star_ft1(3, 0.5, seed=5, nodes_per_mb=24)
        maintainer = StreamMaintainer(cluster)
        for index, text in enumerate(
            ["[//item]", '[//seal = "seal-F1"]', "[not(//probe)]"]
        ):
            maintainer.subscribe(f"q{index}", text)
        oracle = ENGINE_REGISTRY["central"](cluster)
        for batch in update_stream(
            cluster, rounds=12, ops_per_round=2, seed=9, structural_every=4
        ):
            maintainer.apply(batch)
            assert (
                tuple(maintainer.answers().values())
                == oracle.evaluate_many(maintainer.plan()).answers
            )


class TestUpdateStreamGenerator:
    def test_oversized_batch_terminates(self):
        # More ops per round than targetable nodes: the batch must come
        # up short, not spin forever.
        cluster = build_portfolio_cluster()
        total_nodes = cluster.total_size()
        batches = list(
            update_stream(cluster, rounds=1, ops_per_round=3 * total_nodes, seed=1)
        )
        assert len(batches) == 1
        assert 0 < len(batches[0]) <= 3 * total_nodes

    def test_scheduled_merges_really_happen(self):
        from repro.stream import MergeFragment, SplitFragment, apply_updates

        cluster = star_ft1(3, 0.5, seed=2, nodes_per_mb=24)
        splits = merges = 0
        for batch in update_stream(
            cluster, rounds=10, ops_per_round=2, seed=6, structural_every=2
        ):
            splits += sum(isinstance(op, SplitFragment) for op in batch)
            merges += sum(isinstance(op, MergeFragment) for op in batch)
            apply_updates(cluster, batch)
        # The generator alternates split -> merge; pinning the split id
        # guarantees the scheduled merge actually fires.
        assert splits >= 2 and merges >= 2


class TestChangefeedPlumbing:
    def test_events_are_value_objects(self):
        feed = Changefeed()
        event = ChangeEvent(1, "q", "[//a]", False, True)
        feed.append(event)
        assert list(feed) == [event]
        assert feed.drain() == [event]
