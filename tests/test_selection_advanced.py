"""Advanced selection cases: state interplay, overlaps, deep chains."""

import pytest

from repro.core import SelectionEngine, select_centralized
from repro.distsim import Cluster
from repro.fragments import Fragment, FragmentedTree, Placement, fragment_at
from repro.xmltree import XMLNode, XMLTree, element, parse_xml
from repro.xpath import compile_query


def cluster_from(doc: str, cut_labels: list[str]) -> tuple[Cluster, XMLTree]:
    """Cut the document at the first node of each label; one site each."""
    tree = parse_xml(doc)
    cuts = [tree.root.find_by_label(label)[0] for label in cut_labels]
    ftree = fragment_at(tree, cuts)
    return Cluster.one_site_per_fragment(ftree), tree


class TestDescendantStates:
    def test_desc_spanning_fragment_boundary(self):
        cluster, tree = cluster_from(
            "<r><a><keep/><x><b><keep/></b></x></a></r>", ["x"]
        )
        qlist = compile_query("[//keep]")
        assert SelectionEngine(cluster).select(qlist).paths == select_centralized(tree, qlist)

    def test_desc_of_desc(self):
        doc = "<r><a><m><a><m/></a></m></a><m/></r>"
        cluster, tree = cluster_from(doc, ["a"])
        for text in ("[//a//m]", "[//m]", "[a//m]"):
            qlist = compile_query(text)
            assert SelectionEngine(cluster).select(qlist).paths == select_centralized(
                tree, qlist
            ), text

    def test_overlapping_child_and_desc_matches(self):
        # The same node reachable as both a child and a descendant match.
        doc = "<r><a><b/></a><b/></r>"
        cluster, tree = cluster_from(doc, ["a"])
        for text in ("[//b]", "[*/b or b]", "[//b or b]"):
            qlist = compile_query(text)
            assert SelectionEngine(cluster).select(qlist).paths == select_centralized(
                tree, qlist
            ), text


class TestQualifierStates:
    def test_qualifier_depends_on_remote_fragment(self):
        # a[//flag] where the flag lives in the sub-fragment: phase 1
        # must resolve the qualifier before phase 2 selects.
        doc = "<r><a><x><flag/></x></a><a><x/></a></r>"
        cluster, tree = cluster_from(doc, ["x"])
        qlist = compile_query("[a[x//flag]]")
        result = SelectionEngine(cluster).select(qlist)
        assert result.paths == select_centralized(tree, qlist)
        assert len(result.paths) == 1

    def test_negated_qualifier(self):
        doc = "<r><a><bad/></a><a><good/></a></r>"
        cluster, tree = cluster_from(doc, ["a"])
        qlist = compile_query("[a[not bad]]")
        assert SelectionEngine(cluster).select(qlist).paths == select_centralized(tree, qlist)

    def test_text_qualifier_across_fragments(self):
        doc = '<r><s><code>GOOG</code></s><s><code>YHOO</code></s></r>'
        cluster, tree = cluster_from(doc, ["s"])
        qlist = compile_query('[//s[code = "GOOG"]]')
        result = SelectionEngine(cluster).select(qlist)
        assert result.paths == select_centralized(tree, qlist)
        assert len(result.paths) == 1


class TestChainsOfFragments:
    def _chain(self, depth: int) -> tuple[Cluster, XMLTree]:
        """Each fragment: <hop><mark/>@next</hop>; whole tree for oracle."""
        fragments = {}
        for index in range(depth):
            root = element("hop", element("mark"))
            if index + 1 < depth:
                root.add_child(XMLNode.virtual(f"F{index + 1}"))
            fragments[f"F{index}"] = Fragment(f"F{index}", root)
        ftree = FragmentedTree(fragments, "F0")
        placement = Placement({fid: f"S{i}" for i, fid in enumerate(fragments)})
        return Cluster(ftree, placement), ftree.stitch()

    def test_marks_across_long_chain(self):
        cluster, whole = self._chain(12)
        qlist = compile_query("[//mark]")
        result = SelectionEngine(cluster).select(qlist)
        assert len(result.paths) == 12
        assert result.paths == select_centralized(whole, qlist)

    def test_child_chain_crossing_every_boundary(self):
        cluster, whole = self._chain(6)
        qlist = compile_query("[hop/hop/hop/mark]")
        result = SelectionEngine(cluster).select(qlist)
        assert result.paths == select_centralized(whole, qlist)
        assert len(result.paths) == 1

    def test_visits_stay_at_two(self):
        cluster, _ = self._chain(10)
        result = SelectionEngine(cluster).select(compile_query("[//mark]")).result
        assert result.metrics.max_visits_per_site() == 2


class TestWildcardAndSelf:
    @pytest.mark.parametrize(
        "query", ["[*]", "[*/*]", "[.]", "[//*]", "[*[mark]]", "[.//mark]"]
    )
    def test_structural_queries(self, query):
        doc = "<r><a><mark/></a><b><c><mark/></c></b></r>"
        cluster, tree = cluster_from(doc, ["b"])
        qlist = compile_query(query)
        assert SelectionEngine(cluster).select(qlist).paths == select_centralized(
            tree, qlist
        ), query


class TestResultObject:
    def test_len_and_bool_answer(self):
        doc = "<r><a/><a/></r>"
        cluster, _ = cluster_from(doc, ["a"])
        result = SelectionEngine(cluster).select(compile_query("[//a]"))
        assert len(result) == 2
        assert result.result.answer is True
        assert result.result.details["selected"] == 2
