"""Property: rebalancing never moves an answer, whoever executes it.

A random sequence of optimizer-style actions -- ``MoveFragment`` to
existing *and* fresh sites (including moves of the root fragment, i.e.
coordinator re-election), ``SplitFragment`` onto random target sites,
``MergeFragment`` of random edges -- interleaved with content edits
that genuinely flip probe answers, is applied through a standing
:class:`~repro.stream.maintainer.StreamMaintainer`.  After every round
the live book must agree bitwise with a from-scratch
``evaluate_many`` of the same plan, across engines x executors: the
exact guarantee ``QuerySession.rebalance`` relies on when it migrates
data under a live ``watch()``.
"""

import random

import pytest

from repro.core import ENGINE_REGISTRY
from repro.fragments import split_candidates
from repro.stream import (
    MergeFragment,
    MoveFragment,
    Relabel,
    SplitFragment,
    StreamMaintainer,
)
from repro.workloads.topologies import star_ft1

ENGINES = ["parbox", "fulldist", "lazy"]
EXECUTORS = ["serial", "threads", "process"]

QUERIES = [
    "[//bidder]",
    "[//seal]",
    '[//seal = "seal-F2-hot"]',
    "[not(//note)]",
    "[//bidder]",  # duplicate: rides the first segment
]


def _random_structural_op(cluster, rng):
    """One optimizer-style action drawn from live cluster state."""
    fragments = cluster.source_tree().fragment_ids()
    kind = rng.random()
    if kind < 0.3:
        # Merge a random edge (parent absorbs child; data may migrate).
        edges = [
            (parent, child)
            for parent in fragments
            for child in cluster.fragment(parent).sub_fragment_ids()
        ]
        if edges:
            parent, child = rng.choice(edges)
            return MergeFragment(parent, child)
    if kind < 0.6 and cluster.card() < 10:
        # Split a random fragment, placing the new half on a random site.
        fragment_id = rng.choice(fragments)
        candidates = split_candidates(cluster.fragment(fragment_id), limit=3)
        if candidates:
            candidate = rng.choice(candidates)
            sites = [site.site_id for site in cluster.sites()] + ["R-fresh"]
            return SplitFragment(
                fragment_id,
                candidate.node_id,
                target_site=rng.choice(sites),
            )
    # Move a random fragment (the root included: coordinator re-election)
    # to a random existing or fresh site.
    fragment_id = rng.choice(fragments)
    sites = [site.site_id for site in cluster.sites()] + [f"R{rng.randrange(3)}"]
    return MoveFragment(fragment_id, rng.choice(sites))


def _toggle_probe(cluster, state):
    """Flip the F2 probe seal wherever splits/merges have carried it."""
    for fragment_id, fragment in cluster.fragmented_tree.fragments.items():
        seal = fragment.root.find_first(
            lambda n: n.label == "seal" and (n.text or "").startswith("seal-F2")
        )
        if seal is not None:
            state["hot"] = not state["hot"]
            suffix = "-hot" if state["hot"] else ""
            return Relabel(fragment_id, seal.node_id, text=f"seal-F2{suffix}")
    return None


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("executor_name", EXECUTORS)
def test_random_rebalance_stream_agrees_bitwise(engine_name, executor_name):
    cluster = star_ft1(4, 0.6, seed=31, nodes_per_mb=24)
    engine_cls = ENGINE_REGISTRY[engine_name]
    rng = random.Random(97)
    state = {"hot": False}
    kinds_seen = set()
    with engine_cls(cluster, executor=executor_name) as oracle:
        maintainer = StreamMaintainer(cluster, executor=oracle.executor)
        for index, text in enumerate(QUERIES):
            maintainer.subscribe(f"q{index}", text)
        flips = 0
        for round_index in range(10):
            # Content edit first: a same-batch split could carve the
            # probe's subtree into a fresh fragment, invalidating a
            # later relabel's (fragment, node) address; a relabel can
            # never invalidate a structural op's target.
            ops = []
            if round_index % 2:
                probe = _toggle_probe(cluster, state)
                if probe is not None:
                    ops.append(probe)
            ops.append(_random_structural_op(cluster, rng))
            round_ = maintainer.apply(ops)
            kinds_seen.update(type(op).__name__ for op in ops)
            flips += len(round_.changed)
            live = tuple(maintainer.answers().values())
            scratch = oracle.evaluate_many(maintainer.plan()).answers
            assert live == scratch, f"diverged at round {round_.seq}: {round_.ops}"
        maintainer.close()
    # The stream must really have exercised the rebalancing vocabulary
    # and really have flipped answers (else agreement is vacuous).
    assert "MoveFragment" in kinds_seen
    assert kinds_seen & {"SplitFragment", "MergeFragment"}
    assert flips > 0


def test_migration_bytes_conserved_across_round_trip():
    """Moving a fragment away and back ships the same bytes both ways."""
    cluster = star_ft1(3, 0.5, seed=7, nodes_per_mb=24)
    maintainer = StreamMaintainer(cluster)
    maintainer.subscribe("q", "[//bidder]")
    out = maintainer.apply([MoveFragment("F1", "S2")])
    back = maintainer.apply([MoveFragment("F1", "S1")])
    assert out.migration_bytes == back.migration_bytes > 0
    assert cluster.site_of("F1") == "S1"
    maintainer.close()
