"""Unit tests for the XML node model."""

import pytest

from repro.xmltree import XMLNode, element


class TestConstruction:
    def test_label_and_text(self):
        node = XMLNode("stock", text="GOOG")
        assert node.label == "stock"
        assert node.text == "GOOG"
        assert node.children == []
        assert node.parent is None

    def test_node_ids_are_unique(self):
        ids = {XMLNode("a").node_id for _ in range(100)}
        assert len(ids) == 100

    def test_children_reparented_on_init(self):
        child = XMLNode("b")
        parent = XMLNode("a", children=[child])
        assert child.parent is parent
        assert parent.children == [child]

    def test_virtual_factory(self):
        node = XMLNode.virtual("F2")
        assert node.is_virtual
        assert node.fragment_ref == "F2"
        assert node.label == "@F2"

    def test_virtual_node_cannot_have_children(self):
        with pytest.raises(ValueError):
            XMLNode("x", children=[XMLNode("y")], fragment_ref="F1")


class TestMutation:
    def test_add_child_appends(self):
        parent = XMLNode("a")
        first, second = XMLNode("b"), XMLNode("c")
        parent.add_child(first)
        parent.add_child(second)
        assert [c.label for c in parent.children] == ["b", "c"]

    def test_add_child_at_index(self):
        parent = element("a", element("b"), element("d"))
        parent.add_child(XMLNode("c"), index=1)
        assert [c.label for c in parent.children] == ["b", "c", "d"]

    def test_add_child_rejects_attached_node(self):
        parent = XMLNode("a")
        child = parent.add_child(XMLNode("b"))
        with pytest.raises(ValueError):
            XMLNode("c").add_child(child)

    def test_add_child_rejects_cycle(self):
        a = XMLNode("a")
        b = a.add_child(XMLNode("b"))
        with pytest.raises(ValueError):
            b.add_child(a)

    def test_add_child_rejects_self(self):
        a = XMLNode("a")
        with pytest.raises(ValueError):
            a.add_child(a)

    def test_virtual_node_rejects_add_child(self):
        with pytest.raises(ValueError):
            XMLNode.virtual("F1").add_child(XMLNode("x"))

    def test_detach(self):
        parent = element("a", element("b"))
        child = parent.children[0]
        child.detach()
        assert child.parent is None
        assert parent.children == []

    def test_detach_root_is_noop(self):
        node = XMLNode("a")
        assert node.detach() is node

    def test_replace_with(self):
        parent = element("a", element("b"), element("c"))
        old = parent.children[0]
        replacement = XMLNode("x")
        returned = old.replace_with(replacement)
        assert returned is old
        assert old.parent is None
        assert [c.label for c in parent.children] == ["x", "c"]

    def test_replace_with_preserves_position(self):
        parent = element("a", element("b"), element("c"), element("d"))
        parent.children[1].replace_with(XMLNode.virtual("F9"))
        assert [c.label for c in parent.children] == ["b", "@F9", "d"]

    def test_replace_root_rejected(self):
        with pytest.raises(ValueError):
            XMLNode("a").replace_with(XMLNode("b"))


class TestTraversal:
    @pytest.fixture
    def tree(self):
        return element(
            "a",
            element("b", element("d"), element("e")),
            element("c", element("f")),
        )

    def test_preorder(self, tree):
        assert [n.label for n in tree.iter_subtree()] == ["a", "b", "d", "e", "c", "f"]

    def test_postorder(self, tree):
        assert [n.label for n in tree.iter_postorder()] == ["d", "e", "b", "f", "c", "a"]

    def test_postorder_visits_children_before_parents(self, tree):
        seen = set()
        for node in tree.iter_postorder():
            for child in node.children:
                assert child.node_id in seen
            seen.add(node.node_id)

    def test_ancestors(self, tree):
        deepest = tree.children[0].children[0]
        assert [n.label for n in deepest.iter_ancestors()] == ["b", "a"]

    def test_find_first(self, tree):
        found = tree.find_first(lambda n: n.label == "e")
        assert found is not None and found.label == "e"
        assert tree.find_first(lambda n: n.label == "zz") is None

    def test_find_by_label_skips_virtual(self):
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F1"))
        assert len(root.find_by_label("@F1")) == 0
        assert len(root.find_by_label("b")) == 1

    def test_deep_tree_traversal_is_iterative(self):
        # 10000-deep chain: would overflow a recursive traversal.
        root = XMLNode("n0")
        current = root
        for index in range(1, 10_000):
            current = current.add_child(XMLNode(f"n{index}"))
        assert sum(1 for _ in root.iter_subtree()) == 10_000
        assert sum(1 for _ in root.iter_postorder()) == 10_000


class TestMeasurements:
    def test_subtree_size_excludes_virtual(self):
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F1"))
        assert root.subtree_size() == 2

    def test_depth(self):
        tree = element("a", element("b", element("c")))
        leaf = tree.children[0].children[0]
        assert tree.depth() == 0
        assert leaf.depth() == 2

    def test_height(self):
        tree = element("a", element("b", element("c")), element("d"))
        assert tree.height() == 2
        assert tree.children[1].height() == 0


class TestCopyAndEquality:
    def test_deep_copy_is_structurally_equal(self):
        original = element("a", element("b", text="x"), element("c"))
        copy = original.deep_copy()
        assert original.structurally_equal(copy)
        assert copy.node_id != original.node_id

    def test_deep_copy_is_independent(self):
        original = element("a", element("b"))
        copy = original.deep_copy()
        copy.add_child(XMLNode("new"))
        assert not original.structurally_equal(copy)

    def test_copy_preserves_virtual(self):
        original = element("a")
        original.add_child(XMLNode.virtual("F7"))
        copy = original.deep_copy()
        assert copy.children[0].fragment_ref == "F7"

    def test_equality_sensitive_to_text(self):
        assert not element("a", text="x").structurally_equal(element("a", text="y"))

    def test_equality_sensitive_to_order(self):
        left = element("a", element("b"), element("c"))
        right = element("a", element("c"), element("b"))
        assert not left.structurally_equal(right)
