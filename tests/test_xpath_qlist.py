"""Unit tests for QList compilation."""

import pytest

from repro.xpath import compile_query
from repro.xpath.qlist import (
    OP_AND,
    OP_CHILD,
    OP_DESC,
    OP_EPSILON,
    OP_LABEL_IS,
    OP_NOT,
    OP_OR,
    OP_SELF_QUAL,
    OP_SELF_SEQ,
    OP_TEXT_IS,
    QEntry,
    QList,
)


class TestQEntryValidation:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            QEntry(OP_AND, args=(0,))
        with pytest.raises(ValueError):
            QEntry(OP_EPSILON, args=(0,))

    def test_payload_checked(self):
        with pytest.raises(ValueError):
            QEntry(OP_LABEL_IS)  # needs a label
        with pytest.raises(ValueError):
            QEntry(OP_EPSILON, value="x")  # must not carry one

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            QEntry("bogus")


class TestQListInvariants:
    def test_topological_order_enforced(self):
        with pytest.raises(ValueError):
            QList([QEntry(OP_NOT, args=(0,))])  # self-reference

    @pytest.mark.parametrize(
        "text",
        [
            "[//A]",
            "[//A and //B]",
            '[//stock[code/text() = "yhoo"]]',
            "[not(a or b) and c//d[e]]",
            '[/portofolio/broker/name = "Merill Lynch"]',
        ],
    )
    def test_compiled_lists_are_topological(self, text):
        qlist = compile_query(text)
        for index, entry in enumerate(qlist):
            assert all(arg < index for arg in entry.args)

    def test_answer_is_last(self):
        qlist = compile_query("[//A and //A or //A]")
        assert qlist.answer_index == len(qlist) - 1


class TestHashConsing:
    def test_shared_subqueries_compile_once(self):
        once = compile_query("[//stock]")
        twice = compile_query("[//stock and //stock]")
        # The duplicated conjunct adds only the AND entry.
        assert len(twice) == len(once) + 1

    def test_distinct_subqueries_not_merged(self):
        ab = compile_query("[//a and //b]")
        aa = compile_query("[//a and //a]")
        assert len(ab) > len(aa)


class TestExample21:
    """Example 2.1: q = //stock[code/text() = "yhoo"]."""

    def test_ten_entries(self):
        # The paper's QList also has exactly 10 entries (its elided '*'
        # and final ε-alias trade places with our explicit child step).
        qlist = compile_query('[//stock[code/text() = "yhoo"]]')
        assert len(qlist) == 10

    def test_entry_structure(self):
        # Topological order is not unique; the paper lists the inner
        # path's entries first (q1 = label()=code), our compiler emits
        # the left conjunct (label()=stock) first.  Same DAG either way.
        qlist = compile_query('[//stock[code/text() = "yhoo"]]')
        ops = [entry.op for entry in qlist]
        assert ops == [
            OP_LABEL_IS,  # q1 = label() = stock
            OP_LABEL_IS,  # q2 = label() = code
            OP_TEXT_IS,  # q3 = text() = "yhoo"
            OP_AND,  # q4 = q2 ∧ q3
            OP_SELF_QUAL,  # q5 = ε[q4]
            OP_CHILD,  # q6 = */q5
            OP_AND,  # q7 = q1 ∧ q6
            OP_SELF_QUAL,  # q8 = ε[q7]
            OP_CHILD,  # q9 = */q8   (the rules' explicit child step)
            OP_DESC,  # q10 = //q9
        ]
        assert qlist[0].value == "stock"
        assert qlist[1].value == "code"
        assert qlist[2].value == "yhoo"

    def test_pretty_rendering(self):
        qlist = compile_query('[//stock[code/text() = "yhoo"]]')
        text = qlist.pretty()
        assert "q4 = q2 ∧ q3" in text
        assert "q5 = ε[q4]" in text
        assert "q6 = */q5" in text


class TestSelfSeq:
    def test_mid_path_qualifier_uses_selfseq(self):
        # a[q]/b: the qualifier must not terminate the path.
        qlist = compile_query("[a[x]/b]")
        assert any(entry.op == OP_SELF_SEQ for entry in qlist)


class TestWireFormat:
    @pytest.mark.parametrize(
        "text",
        ["[//A]", '[//stock[code/text() = "yhoo"]]', "[not(a or b)]"],
    )
    def test_round_trip(self, text):
        qlist = compile_query(text)
        restored = QList.from_obj(qlist.to_obj())
        assert restored.entries == qlist.entries

    def test_wire_bytes_positive_and_monotone(self):
        small = compile_query("[//A]")
        large = compile_query('[//stock[code/text() = "yhoo"] and //b and //c]')
        assert 0 < small.wire_bytes() < large.wire_bytes()


class TestDescribe:
    def test_all_ops_render(self):
        qlist = compile_query('[not(//a[b/text() = "v"]) and (. or label() = z)]')
        rendered = [entry.describe() for entry in qlist]
        assert all(isinstance(r, str) and r for r in rendered)
