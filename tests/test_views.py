"""Tests for incremental view maintenance (Section 5)."""

import pytest

from repro.views import MaterializedView
from repro.workloads.portfolio import build_portfolio_cluster
from repro.workloads.topologies import chain_ft2, star_ft1
from repro.workloads.queries import query_of_size, seal_query
from repro.xpath import compile_query


@pytest.fixture
def cluster():
    return build_portfolio_cluster()


class TestCreation:
    def test_state_holds_all_triplets(self, cluster):
        view = MaterializedView.create(cluster, compile_query("[//stock]"))
        assert view.ans is True
        assert set(view.triplets) == {"F0", "F1", "F2", "F3"}

    def test_initial_answer_matches_scratch(self, cluster):
        view = MaterializedView.create(cluster, compile_query('[//code = "YHOO"]'))
        assert view.ans == view.recompute_from_scratch() is True


class TestContentUpdates:
    def test_insert_flips_answer(self, cluster):
        view = MaterializedView.create(cluster, compile_query('[//code = "TSLA"]'))
        assert view.ans is False
        f3_market = cluster.fragment("F3").root
        stock = view.cluster.fragment("F3").root  # same object
        assert stock is f3_market
        # Insert a new stock with the sought code into F3.
        report = view.insert_node("F3", f3_market, "stock")
        new_stock = f3_market.children[-1]
        report = view.insert_node("F3", new_stock, "code", text="TSLA")
        assert view.ans is True
        assert report.answer_changed
        assert report.triplet_changed

    def test_delete_flips_answer(self, cluster):
        view = MaterializedView.create(cluster, compile_query('[//code = "IBM"]'))
        assert view.ans is True
        f0 = cluster.fragment("F0")
        ibm_stock = next(
            n for n in f0.root.iter_subtree() if n.label == "code" and n.text == "IBM"
        ).parent
        report = view.delete_node("F0", ibm_stock)
        assert view.ans is False
        assert report.answer_changed

    def test_irrelevant_update_short_circuits(self, cluster):
        view = MaterializedView.create(cluster, compile_query('[//code = "GOOG"]'))
        report = view.insert_node("F0", cluster.fragment("F0").root, "note", text="hi")
        assert not report.triplet_changed
        assert not report.answer_changed

    def test_maintenance_is_localized(self, cluster):
        view = MaterializedView.create(cluster, compile_query("[//stock]"))
        report = view.refresh_fragment("F2")
        assert report.sites_visited == ("S2",)
        assert report.is_localized()
        assert report.nodes_recomputed == cluster.fragment("F2").size()

    def test_delete_root_rejected(self, cluster):
        view = MaterializedView.create(cluster, compile_query("[//stock]"))
        with pytest.raises(ValueError):
            view.delete_node("F1", cluster.fragment("F1").root)

    def test_answer_always_matches_scratch(self, cluster):
        qlist = compile_query('[//stock[code = "GOOG" and sell = "373"]]')
        view = MaterializedView.create(cluster, qlist)
        f3 = cluster.fragment("F3")
        goog_sell = next(
            n for n in f3.root.iter_subtree() if n.label == "sell" and n.text == "373"
        )
        view.delete_node("F3", goog_sell)
        assert view.ans == view.recompute_from_scratch()
        parent_stock = f3.root.find_by_label("stock")[1]
        view.insert_node("F3", parent_stock, "sell", text="373")
        assert view.ans == view.recompute_from_scratch() is True


class TestTrafficBounds:
    def test_traffic_independent_of_data_size(self):
        """Maintenance traffic must not grow with |T| (paper claim (b))."""
        qlist = query_of_size(8)
        reports = []
        for scale in (1.0, 8.0):
            cluster = star_ft1(4, scale, seed=50)
            view = MaterializedView.create(cluster, qlist)
            target = cluster.fragment("F2")
            target.root.add_child(_leaf("note"))
            reports.append(view.refresh_fragment("F2"))
        small, large = reports
        assert large.traffic_bytes <= small.traffic_bytes * 1.5

    def test_traffic_independent_of_update_size(self):
        qlist = query_of_size(8)
        cluster = star_ft1(4, 2.0, seed=51)
        view = MaterializedView.create(cluster, qlist)
        target = cluster.fragment("F2").root
        target.add_child(_leaf("note"))
        single = view.refresh_fragment("F2")
        for _ in range(200):
            target.add_child(_leaf("note"))
        bulk = view.refresh_fragment("F2")
        assert bulk.traffic_bytes <= single.traffic_bytes * 1.5

    def test_recomputation_localized_to_fragment(self):
        qlist = query_of_size(8)
        cluster = star_ft1(4, 2.0, seed=52)
        view = MaterializedView.create(cluster, qlist)
        report = view.refresh_fragment("F3")
        assert report.nodes_recomputed == cluster.fragment("F3").size()
        assert report.nodes_recomputed < cluster.total_size() / 2


class TestStructuralUpdates:
    def test_split_preserves_answer(self, cluster):
        qlist = compile_query('[//stock[code = "GOOG"]]')
        view = MaterializedView.create(cluster, qlist)
        before = view.ans
        market = cluster.fragment("F0").root.find_by_label("market")[0]
        report = view.apply_split("F0", market, "F4", target_site="S3")
        assert view.ans == before
        assert not report.answer_changed
        assert "F4" in view.triplets
        assert view.cluster.site_of("F4") == "S3"
        assert view.recompute_from_scratch() == before

    def test_example_51_sequence(self, cluster):
        """Example 5.1: insert a stock subtree, then split at the market."""
        qlist = compile_query('[//stock[code = "HPQ"]]')
        view = MaterializedView.create(cluster, qlist)
        f0 = cluster.fragment("F0")
        broker = f0.root.children[0]
        market = broker.find_by_label("market")[0]
        view.insert_node("F0", market, "stock")
        new_stock = market.children[-1]
        view.insert_node("F0", new_stock, "code", text="HPQ2")
        report = view.apply_split("F0", market, "F4", target_site="S3")
        assert report.operation == "split"
        assert view.ans == view.recompute_from_scratch() is True

    def test_merge_preserves_answer(self, cluster):
        qlist = compile_query('[//code = "YHOO"]')
        view = MaterializedView.create(cluster, qlist)
        before = view.ans
        virtual_f3 = next(
            n for n in cluster.fragment("F0").root.iter_subtree() if n.fragment_ref == "F3"
        )
        report = view.apply_merge("F0", virtual_f3)
        assert report.operation == "merge"
        assert view.ans == before
        assert "F3" not in view.triplets
        assert view.recompute_from_scratch() == before

    def test_merge_non_virtual_noop(self, cluster):
        view = MaterializedView.create(cluster, compile_query("[//stock]"))
        real = cluster.fragment("F0").root.children[0]
        report = view.apply_merge("F0", real)
        assert report.operation == "merge-noop"
        assert report.traffic_bytes == 0

    def test_split_then_update_then_merge(self):
        cluster = chain_ft2(3, 1.0, seed=53)
        qlist = seal_query("F2")
        view = MaterializedView.create(cluster, qlist)
        assert view.ans is True
        # Split a subtree out of F1, update inside it, merge back.
        f1 = cluster.fragment("F1")
        candidate = next(
            n for n in f1.root.children if not n.is_virtual and n.children
        )
        view.apply_split("F1", candidate, "FX")
        view.insert_node("FX", cluster.fragment("FX").root, "note", text="x")
        virtual = next(
            n for n in cluster.fragment("F1").root.iter_subtree() if n.fragment_ref == "FX"
        )
        view.apply_merge("F1", virtual)
        assert view.ans == view.recompute_from_scratch() is True


def _leaf(label):
    from repro.xmltree import XMLNode

    return XMLNode(label, text="x")
