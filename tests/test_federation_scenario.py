"""A long-running federation scenario exercising the whole stack together.

Models the life of a small data federation: sites join (splits), data
arrives (inserts), subscriptions stand (registry), analysts ask
node-selection questions, and sites consolidate (merges) -- asserting
global consistency invariants after every step.
"""

import pytest

from repro.core import ALL_ENGINES, ParBoXEngine, SelectionEngine, evaluate_tree, select_centralized
from repro.distsim import Cluster
from repro.fragments import fragment_balanced
from repro.views import MaterializedView, SubscriptionRegistry
from repro.workloads.xmark import generate_xmark_site
from repro.xmltree import element
from repro.xpath import compile_query

WATCH_QUERIES = {
    "gold": '[//item[name = "gold-bar"]]',
    "people": "[//person]",
    "empty-regions": "[not(//item)]",
}


@pytest.fixture
def federation():
    tree = generate_xmark_site(2.0, seed=2024, nodes_per_mb=80)
    cluster = Cluster.one_site_per_fragment(fragment_balanced(tree, 3))
    return cluster


def assert_consistent(cluster):
    """All engines agree with the stitched-document oracle."""
    whole = cluster.fragmented_tree.stitch()
    for text in ("[//person]", "[//bidder]", '[//item[name = "gold-bar"]]'):
        qlist = compile_query(text)
        oracle, _ = evaluate_tree(whole, qlist)
        for engine_cls in ALL_ENGINES:
            assert engine_cls(cluster).evaluate(qlist).answer == oracle, engine_cls.name
    select_q = compile_query("[//person/name]")
    assert SelectionEngine(cluster).select(select_q).paths == select_centralized(
        whole, select_q
    )


class TestFederationLifecycle:
    def test_full_story(self, federation):
        cluster = federation
        registry = SubscriptionRegistry(cluster)
        for name, text in WATCH_QUERIES.items():
            registry.subscribe(name, compile_query(text))
        assert registry.answer("gold") is False
        assert registry.answer("people") is True
        assert_consistent(cluster)

        # --- a new department joins: split a subtree to a fresh site ---
        f0 = cluster.fragment("F0")
        candidate = next(
            n
            for n in f0.root.children
            if not n.is_virtual and n.subtree_size() > 3
        )
        view = MaterializedView.create(cluster, compile_query("[//person]"))
        view.apply_split("F0", candidate, "DEPT", target_site="S-NEW")
        assert "S-NEW" in cluster.source_tree().sites()
        assert_consistent(cluster)

        # The registry predates the split: rebuilding picks it up.
        registry.recompute_from_scratch()
        assert registry.answer("people") is True

        # --- data arrives at the new department -----------------------
        dept = cluster.fragment("DEPT")
        dept.root.add_child(
            element("item", element("name", text="gold-bar"))
        )
        report = registry.notify_fragment_updated("DEPT")
        assert "gold" in report.changed
        assert registry.answer("gold") is True
        assert_consistent(cluster)

        # --- analysts select across the federation --------------------
        qlist = compile_query('[//item[name = "gold-bar"]]')
        selection = SelectionEngine(cluster).select(qlist)
        assert len(selection.paths) == 1
        assert selection.result.metrics.max_visits_per_site() <= 2

        # --- consolidation: the department merges back ----------------
        virtual = next(
            n for n in cluster.fragment("F0").root.iter_subtree() if n.fragment_ref == "DEPT"
        )
        view.apply_merge("F0", virtual)
        assert "DEPT" not in cluster.fragmented_tree.fragments
        assert_consistent(cluster)
        registry.recompute_from_scratch()
        assert registry.answer("gold") is True

    def test_parbox_guarantees_hold_throughout(self, federation):
        cluster = federation
        qlist = compile_query("[//person and //bidder]")
        some_fragment = next(
            fid for fid in cluster.fragmented_tree.fragments if fid != "F0"
        )
        for _ in range(3):
            result = ParBoXEngine(cluster).evaluate(qlist)
            assert result.metrics.max_visits_per_site() == 1
            assert result.metrics.nodes_processed == cluster.total_size()
            # mutate a little between rounds
            cluster.fragment(some_fragment).root.add_child(element("note", text="x"))
