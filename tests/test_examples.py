"""Every example must actually run -- the guard against API drift.

The ``examples/`` scripts are executable documentation: each exposes a
``main()`` behind a ``__main__`` guard.  Nothing else in the suite
imports them, so an API change could silently break every recipe users
copy first.  This module runs each example **in-process** (imported
fresh from its file path, stdout captured) and asserts it finishes
without raising and prints something -- the same contract the CI docs
job enforces.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_PATHS = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    """Import one example from its file path, isolated per test."""
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # Registered so dataclasses/pickle inside the example resolve the
    # module by name; dropped again in the test to keep runs isolated.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_examples_directory_is_covered():
    """Adding an example automatically adds its smoke test."""
    assert len(EXAMPLE_PATHS) >= 6
    assert all(path.name != "__init__.py" for path in EXAMPLE_PATHS)


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.stem)
def test_example_runs_clean(path, capsys, monkeypatch):
    # Examples may read sys.argv for optional knobs; give them the same
    # argv a bare `python examples/<name>.py` would see.
    monkeypatch.setattr(sys, "argv", [str(path)])
    module = _load(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    exit_code = module.main()
    assert exit_code in (None, 0), f"{path.name} exited with {exit_code}"
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.stem)
def test_example_has_main_guard(path):
    """Importing an example must not execute it (the guard exists)."""
    import ast

    source = path.read_text()
    assert 'if __name__ == "__main__":' in source, f"{path.name} lacks a __main__ guard"
    assert ast.get_docstring(ast.parse(source)), f"{path.name} lacks a module docstring"
