"""Unit tests for fragmentation: cutting, stitching, split/merge."""

import pytest

from repro.fragments import (
    Fragment,
    FragmentationError,
    FragmentedTree,
    fragment_at,
    fragment_balanced,
    fragment_per_node,
    merge_fragment,
    split_fragment,
)
from repro.xmltree import XMLNode, XMLTree, element


def sample_tree() -> XMLTree:
    return XMLTree(
        element(
            "r",
            element("a", element("a1"), element("a2", element("deep"))),
            element("b", element("b1")),
            element("c"),
        )
    )


class TestFragment:
    def test_size_and_subs(self):
        root = element("a", element("b"))
        root.add_child(XMLNode.virtual("F2"))
        root.add_child(XMLNode.virtual("F3"))
        fragment = Fragment("F1", root)
        assert fragment.size() == 2
        assert fragment.sub_fragment_ids() == ["F2", "F3"]
        assert len(fragment.virtual_nodes()) == 2

    def test_virtual_root_rejected(self):
        with pytest.raises(FragmentationError):
            Fragment("F1", XMLNode.virtual("F2"))

    def test_wire_bytes_positive(self):
        assert Fragment("F", element("a", element("b"))).wire_bytes() > 0


class TestFragmentAt:
    def test_basic_cut(self):
        tree = sample_tree()
        target = tree.root.children[0]  # subtree 'a'
        ftree = fragment_at(tree, [target], ids=["FA"])
        assert set(ftree.fragments) == {"F0", "FA"}
        assert ftree.fragments["FA"].size() == 4
        assert ftree.fragments["F0"].sub_fragment_ids() == ["FA"]

    def test_copy_semantics_default(self):
        tree = sample_tree()
        before = tree.size()
        fragment_at(tree, [tree.root.children[0]])
        assert tree.size() == before  # input untouched

    def test_nested_cuts(self):
        tree = sample_tree()
        outer = tree.root.children[0]
        inner = outer.children[1].children[0]  # 'deep'
        ftree = fragment_at(tree, [outer, inner], ids=["FA", "FD"])
        assert ftree.parent_of("FD") == "FA"
        assert ftree.parent_of("FA") == "F0"
        assert ftree.depth_of("FD") == 2

    def test_total_size_preserved(self):
        tree = sample_tree()
        cuts = [tree.root.children[0], tree.root.children[1]]
        ftree = fragment_at(tree, cuts)
        assert ftree.total_size() == tree.size()

    def test_cut_at_root_rejected(self):
        tree = sample_tree()
        with pytest.raises(FragmentationError):
            fragment_at(tree, [tree.root])

    def test_duplicate_ids_rejected(self):
        tree = sample_tree()
        with pytest.raises(FragmentationError):
            fragment_at(tree, [tree.root.children[0], tree.root.children[1]], ids=["X", "X"])

    def test_stitch_round_trip(self):
        tree = sample_tree()
        cuts = [tree.root.children[0], tree.root.children[0].children[1], tree.root.children[2]]
        ftree = fragment_at(tree, cuts)
        assert ftree.stitch().structurally_equal(tree)

    def test_stitch_is_non_destructive(self):
        tree = sample_tree()
        ftree = fragment_at(tree, [tree.root.children[1]])
        first = ftree.stitch()
        second = ftree.stitch()
        assert first.structurally_equal(second)
        assert ftree.fragments["F0"].sub_fragment_ids()  # still fragmented


class TestFragmentBalanced:
    def test_produces_requested_count(self):
        tree = sample_tree()
        ftree = fragment_balanced(tree, 3)
        assert ftree.card() == 3
        assert ftree.total_size() == tree.size()

    def test_single_fragment(self):
        tree = sample_tree()
        ftree = fragment_balanced(tree, 1)
        assert ftree.card() == 1
        assert ftree.stitch().structurally_equal(tree)

    def test_round_trip(self):
        tree = sample_tree()
        for count in (2, 3, 4):
            assert fragment_balanced(tree, count).stitch().structurally_equal(tree)


class TestFragmentPerNode:
    def test_pathological_cardinality(self):
        tree = sample_tree()
        ftree = fragment_per_node(tree)
        assert ftree.card() == tree.size()
        for fragment in ftree.fragments.values():
            assert fragment.size() == 1
        assert ftree.stitch().structurally_equal(tree)


class TestValidation:
    def test_unknown_reference_rejected(self):
        root = element("a")
        root.add_child(XMLNode.virtual("GHOST"))
        with pytest.raises(FragmentationError):
            FragmentedTree({"F0": Fragment("F0", root)}, "F0")

    def test_unreachable_fragment_rejected(self):
        with pytest.raises(FragmentationError):
            FragmentedTree(
                {"F0": Fragment("F0", element("a")), "F1": Fragment("F1", element("b"))},
                "F0",
            )

    def test_double_reference_rejected(self):
        root = element("a")
        root.add_child(XMLNode.virtual("F1"))
        root.add_child(XMLNode.virtual("F1"))
        with pytest.raises(FragmentationError):
            FragmentedTree(
                {"F0": Fragment("F0", root), "F1": Fragment("F1", element("b"))},
                "F0",
            )

    def test_missing_root_rejected(self):
        with pytest.raises(FragmentationError):
            FragmentedTree({}, "F0")


class TestFragmentTreeRelations:
    def test_depths_and_traversal(self):
        tree = sample_tree()
        outer = tree.root.children[0]
        inner = outer.children[1]
        ftree = fragment_at(tree, [outer, inner], ids=["FA", "FI"])
        assert ftree.max_depth() == 2
        assert ftree.fragments_at_depth(0) == ["F0"]
        assert ftree.fragments_at_depth(1) == ["FA"]
        assert ftree.fragments_at_depth(2) == ["FI"]
        assert list(ftree.iter_depth_first())[0] == "F0"

    def test_children_in_document_order(self):
        tree = sample_tree()
        ftree = fragment_at(
            tree, [tree.root.children[0], tree.root.children[2]], ids=["FA", "FC"]
        )
        assert ftree.children_of("F0") == ["FA", "FC"]


class TestSplitMerge:
    def test_split_creates_subfragment(self):
        tree = sample_tree()
        ftree = fragment_at(tree, [])
        target = ftree.fragments["F0"].root.children[0]
        new_id = split_fragment(ftree, "F0", target, "FNEW")
        assert new_id == "FNEW"
        assert ftree.parent_of("FNEW") == "F0"
        assert ftree.stitch().structurally_equal(tree)

    def test_split_at_fragment_root_rejected(self):
        ftree = fragment_at(sample_tree(), [])
        with pytest.raises(FragmentationError):
            split_fragment(ftree, "F0", ftree.fragments["F0"].root)

    def test_split_foreign_node_rejected(self):
        ftree = fragment_at(sample_tree(), [])
        with pytest.raises(FragmentationError):
            split_fragment(ftree, "F0", element("alien", element("x")).children[0])

    def test_merge_restores(self):
        tree = sample_tree()
        ftree = fragment_at(tree, [])
        target = ftree.fragments["F0"].root.children[0]
        split_fragment(ftree, "F0", target, "FNEW")
        virtual = ftree.fragments["F0"].virtual_nodes()[0]
        absorbed = merge_fragment(ftree, "F0", virtual)
        assert absorbed == "FNEW"
        assert ftree.card() == 1
        assert ftree.stitch().structurally_equal(tree)

    def test_merge_non_virtual_is_noop(self):
        ftree = fragment_at(sample_tree(), [])
        real_node = ftree.fragments["F0"].root.children[0]
        assert merge_fragment(ftree, "F0", real_node) is None

    def test_merge_preserves_grandchildren(self):
        # Merging F1 into F0 when F1 has a sub-fragment F2: F2 becomes a
        # direct sub-fragment of F0.
        tree = sample_tree()
        outer = tree.root.children[0]
        inner = outer.children[1]
        ftree = fragment_at(tree, [outer, inner], ids=["FA", "FI"])
        virtual = [n for n in ftree.fragments["F0"].root.iter_subtree() if n.is_virtual][0]
        merge_fragment(ftree, "F0", virtual)
        assert ftree.parent_of("FI") == "F0"
        assert ftree.stitch().structurally_equal(tree)

    def test_split_of_split_fragment(self):
        ftree = fragment_at(sample_tree(), [])
        target = ftree.fragments["F0"].root.children[0]
        split_fragment(ftree, "F0", target, "FA")
        deep = ftree.fragments["FA"].root.children[1]
        split_fragment(ftree, "FA", deep, "FB")
        assert ftree.parent_of("FB") == "FA"
