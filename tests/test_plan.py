"""The batch planner: compilation cache, dedup, slicing, attribution."""

import pytest

from repro.core.plan import (
    BatchPlan,
    QueryCache,
    attribute_costs,
    coerce_plan,
    plan_batch,
)
from repro.distsim.metrics import Metrics
from repro.xpath import compile_query
from repro.xpath.qlist import build_qlist, concatenate_qlists
from repro.workloads.queries import query_of_size


class TestQueryCache:
    def test_compile_produces_pipeline_stages(self):
        cache = QueryCache()
        compiled = cache.compile('[//stock[code = "GOOG"]]')
        assert compiled.text == '[//stock[code = "GOOG"]]'
        assert compiled.qlist.source == compiled.text
        assert len(compiled.qlist) > 0
        assert compiled.ast is not None and compiled.normalized is not None

    def test_repeat_text_hits_cache(self):
        cache = QueryCache()
        first = cache.compile("[//stock]")
        second = cache.compile("[//stock]")
        assert first is second  # not recompiled, the same object
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats()["hit_rate"] == 0.5
        assert "[//stock]" in cache and len(cache) == 1

    def test_qlist_coercion_passes_through_compiled(self):
        cache = QueryCache()
        qlist = compile_query("[//stock]")
        assert cache.qlist(qlist) is qlist
        assert cache.hits == 0 and cache.misses == 0  # no text involved

    def test_distinct_texts_do_not_collide(self):
        cache = QueryCache()
        a = cache.compile("[//stock]")
        b = cache.compile("[//broker]")
        assert a.qlist.entries != b.qlist.entries
        assert cache.misses == 2


class TestPlanBatch:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty batch"):
            plan_batch([])

    def test_single_query_reuses_qlist(self):
        qlist = compile_query("[//stock]")
        plan = plan_batch([qlist])
        assert plan.combined is qlist  # the batch-of-one fast path
        assert plan.answer_indices == (qlist.answer_index,)
        assert plan.segments == ((0, len(qlist)),)
        assert plan.unique_count == 1 and len(plan) == 1

    def test_concatenation_matches_legacy_helper(self):
        qlists = [query_of_size(2), query_of_size(8), query_of_size(15)]
        plan = plan_batch(qlists)
        legacy, legacy_answers = concatenate_qlists(qlists)
        assert plan.combined.entries == legacy.entries
        assert list(plan.answer_indices) == legacy_answers

    def test_combined_is_topologically_valid(self):
        plan = plan_batch([query_of_size(8), query_of_size(23), query_of_size(2)])
        for index, entry in enumerate(plan.combined):
            assert all(arg < index for arg in entry.args)

    def test_answer_indices_point_at_each_query_answer(self):
        qlists = [query_of_size(2), query_of_size(8)]
        plan = plan_batch(qlists)
        for qlist, answer_index, (offset, length) in zip(
            qlists, plan.answer_indices, plan.segments
        ):
            assert answer_index == offset + qlist.answer_index
            assert offset + length <= len(plan.combined)

    def test_duplicates_collapse_to_one_segment(self):
        stock = compile_query("[//stock]")
        stock_again = compile_query("[//stock]")  # distinct object, same entries
        other = compile_query("[//broker]")
        plan = plan_batch([stock, other, stock_again])
        assert len(plan) == 3
        assert plan.unique_count == 2
        assert plan.duplicate_count() == 1
        assert plan.segment_of == (0, 1, 0)
        # Both copies answer at the same combined entry.
        assert plan.answer_indices[0] == plan.answer_indices[2]
        assert plan.entries_saved() == len(stock)
        assert len(plan.combined) == len(stock) + len(other)
        assert plan.queries_in_segment(0) == [0, 2]

    def test_dedup_needs_identical_entries_not_text(self):
        # Logically equal but differently-compiled queries stay separate.
        a = compile_query("[//stock]")
        b = compile_query("[.//stock]")
        plan = plan_batch([a, b])
        assert plan.unique_count == (1 if a.entries == b.entries else 2)

    def test_coerce_plan_accepts_texts_and_plans(self):
        plan = coerce_plan(["[//stock]", compile_query("[//broker]")])
        assert len(plan) == 2
        assert coerce_plan(plan) is plan


class TestAttribution:
    def _metrics(self):
        metrics = Metrics()
        metrics.visits.update({"S0": 1, "S1": 1})
        metrics.messages = 4
        metrics.bytes_total = 1000
        metrics.elapsed_seconds = 2.0
        return metrics

    def test_exact_ops_and_amortized_shares(self):
        plan = plan_batch([query_of_size(2), query_of_size(8)])
        metrics = self._metrics()
        metrics.segment_ops[0] = 20
        metrics.segment_ops[1] = 80
        costs = attribute_costs(plan, [True, False], metrics)
        assert [c.answer for c in costs] == [True, False]
        assert costs[0].qlist_ops == 20 and costs[1].qlist_ops == 80
        # bytes weighted by query size (2 vs 8 entries).
        assert costs[0].bytes_sent == pytest.approx(1000 * 2 / 10)
        assert costs[1].bytes_sent == pytest.approx(1000 * 8 / 10)
        # batch-level costs amortized evenly.
        for cost in costs:
            assert cost.visits == pytest.approx(1.0)
            assert cost.messages == pytest.approx(2.0)
            assert cost.elapsed_seconds == pytest.approx(1.0)

    def test_duplicates_split_their_shared_segment(self):
        stock = compile_query("[//stock]")
        plan = plan_batch([stock, compile_query("[//stock]")])
        metrics = self._metrics()
        metrics.segment_ops[0] = 100
        costs = attribute_costs(plan, [True, True], metrics)
        assert costs[0].shared_with == 1 and costs[1].shared_with == 1
        assert costs[0].qlist_ops == pytest.approx(50.0)
        assert costs[1].qlist_ops == pytest.approx(50.0)

    def test_batch_of_one_gets_the_whole_ledger(self):
        qlist = query_of_size(8)
        plan = plan_batch([qlist])
        metrics = self._metrics()
        metrics.segment_ops[0] = 64
        (cost,) = attribute_costs(plan, [True], metrics)
        assert cost.visits == 2.0
        assert cost.messages == 4.0
        assert cost.bytes_sent == pytest.approx(1000.0)
        assert cost.qlist_ops == 64


class TestPlanIsEvaluatable:
    """The combined QList is a plain QList: every consumer just works."""

    def test_wire_roundtrip(self):
        from repro.xpath.qlist import QList

        plan = plan_batch([query_of_size(8), query_of_size(15)])
        rebuilt = QList.from_obj(plan.combined.to_obj())
        assert rebuilt.entries == plan.combined.entries

    def test_segments_cover_combined_exactly(self):
        texts = ["[//stock]", "[//broker]", "[//stock]", "[//market or //zzz]"]
        plan = coerce_plan(texts)
        covered = sorted(
            index
            for offset, length in plan.segments
            for index in range(offset, offset + length)
        )
        assert covered == list(range(len(plan.combined)))
