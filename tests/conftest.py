def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: boots real child processes or long scenarios"
    )
