"""Setup shim for environments whose pip/setuptools lack PEP 660 support."""
from setuptools import setup

setup()
