"""Packaging for the ParBoX reproduction.

``pip install -e .`` installs the ``repro`` package from ``src/`` and a
``repro`` console command wrapping :func:`repro.cli.main`.  Plain
``setup.py`` (rather than pyproject metadata) is kept deliberately so
environments whose pip/setuptools lack PEP 660 editable-install support
can still install the package.
"""

from setuptools import find_packages, setup

setup(
    name="parbox-repro",
    version="0.2.0",
    description=(
        "Reproduction of 'Using Partial Evaluation in Distributed Query "
        "Evaluation' (VLDB 2006): Boolean XPath over fragmented XML trees "
        "with the ParBoX algorithm family, an accounted distribution "
        "simulator and real concurrent site execution"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # Standard library only: the simulator, the engines and the three
    # site executors (serial / threads / process) need no third-party
    # runtime dependencies.  Tests additionally need pytest.
    install_requires=[],
    extras_require={
        "test": ["pytest"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Database",
        "Topic :: Text Processing :: Markup :: XML",
    ],
)
