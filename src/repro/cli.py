"""Command-line interface.

The subcommands::

    repro explain '<query>'
        Show the surface AST, the β-normal form and the compiled QList.

    repro query <file.xml> '<query>' ['<query>' ...] [--fragments N]
                 [--engine NAME] [--sites N] [--batch-size B]
                 [--executor serial|threads|process]
                 [--trace] [--all-engines]
        Fragment the document, place the fragments on simulated sites
        and evaluate the Boolean query; prints the answer and the cost
        ledger (visits / messages / bytes / simulated elapsed / real
        wall clock).  ``--executor`` chooses how site-local work really
        executes: serially (deterministic baseline), on a thread pool
        (one worker per site) or on a process pool (CPU-bound formula
        evaluation).  Several queries evaluate as one *batch* through a
        QuerySession -- one broadcast per ``--batch-size`` chunk
        (default: all in one batch), duplicate queries deduplicated --
        and the report shows per-query answers plus the amortized
        per-query costs.

    repro stream <file.xml> '<query>' ['<query>' ...] [--fragments N]
                 [--rounds R] [--ops K] [--hot H] [--structural-every M]
                 [--executor serial|threads|process] [--seed S]
        Keep the queries standing and maintain them over a generated
        skewed update stream: each round applies one batch of typed
        updates (insNode / delNode / relabel, optionally split/merge),
        re-evaluates **only the dirty fragments' sites** and prints the
        answers that flipped plus the maintenance cost ledger
        (dirty sites / delta traffic / nodes recomputed per round).

    repro rebalance <file.xml> '<query>' ['<query>' ...] [--fragments N]
                 [--sites N] [--capacity NODES] [--max-sites M]
                 [--profile-rounds R] [--moves-only] [--seed S]
        Optimize the fragment->site placement for the given query
        workload (update rates are profiled from a generated stream):
        prints the chosen split/merge/move plan, enacts it under a
        live ``watch()`` of the same queries -- standing answers are
        preserved bitwise while the data migrates -- and reports the
        predicted and *measured* cost before/after plus the metered
        migration traffic.

    repro serve <file.xml> [--fragments N] [--sites N] [--port P]
                 [--site-mode inline|process] [--replicas R]
                 [--engine NAME] [--check] [--obs-dir DIR]
        Boot the *networked* serving tier for the document: one site
        server per simulated site (in-process asyncio servers, or real
        child processes with ``--site-mode process``), a coordinator
        that pushes each site its fragments once, and a front-door
        gateway on ``--port``.  ``--check`` runs a self-query through a
        loopback client after boot and exits (the CI smoke); otherwise
        the command serves until interrupted.  ``--obs-dir DIR`` makes
        the self-check traced and writes the observability artifacts
        (``metrics.txt``, ``metrics.json``, ``spans.json``) to DIR.

    repro connect HOST:PORT '<query>' ['<query>' ...] [--engine NAME]
                 [--trace]
        Evaluate queries against a running gateway: the same batched
        session surface as ``repro query``, but over TCP -- answers and
        the cost ledger come back from the serving tier.  ``--trace``
        additionally asks the gateway for the batch's cross-process
        span tree and renders it.

    repro trace <spans.json> [--trace-id ID]
        Render an exported span file (``repro.obs.trace`` JSON form,
        e.g. ``serve --check --obs-dir``'s ``spans.json``) as an
        indented per-trace timeline.

    repro top HOST:PORT [--interval S] [--iterations N]
        Poll a running gateway's metrics registry and print live
        throughput, shed/retry counts, in-flight depth and latency
        percentiles -- a tiny ``top(1)`` for the serving tier.

    repro loadtest [--quick] [--out DIR] [--baseline [PATH]]
                 [--analyze-only] [--trace-every N]
        Drive the factorial load experiment over the serving tier: for
        every run in the declared table (topology family x fragment
        count x engine x executor x batch size x arrival rate) boot a
        ``ServingCluster``, fire an *open-loop* request schedule at its
        gateway, and write per-run raw artifacts plus the aggregate
        ``run_table.csv`` to ``--out``.  A separate analysis step then
        prints per-factor deltas and, with ``--baseline``, enforces the
        regression gate against the committed ``BENCH_loadtest.json``.
        ``--analyze-only`` skips collection and re-analyzes an existing
        ``--out`` directory.

    repro select <file.xml> '<path-query>' [--fragments N] [--limit K]
        The Section 8 extension: print the selected nodes.

    repro fragment <file.xml> --fragments N [--out DIR]
        Cut a document and write each fragment (with virtual-node
        placeholders) as XML, plus a source-tree summary.

    repro bench [...]
        Forward to the benchmark harness (``python -m repro.bench``).

Invoke as ``python -m repro`` or via small wrappers around
:func:`main`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from repro.core import ENGINE_REGISTRY, SelectionEngine
from repro.distsim import Cluster
from repro.distsim.executors import EXECUTOR_REGISTRY, resolve_executor
from repro.distsim.trace import Trace
from repro.fragments import Placement, fragment_balanced
from repro.xmltree import parse_xml, serialize
from repro.xpath import build_qlist, normalize, parse_query
from repro.xpath.unparse import unparse_bool, unparse_normalized


def _load_tree(path: str):
    text = Path(path).read_text()
    return parse_xml(text)


def _build_cluster(tree, fragments: int, sites: Optional[int]) -> Cluster:
    decomposition = fragment_balanced(tree, fragments)
    if sites is None or sites >= decomposition.card():
        return Cluster.one_site_per_fragment(decomposition)
    assignment = {}
    for index, fragment_id in enumerate(decomposition.iter_depth_first()):
        assignment[fragment_id] = f"S{index % sites}"
    return Cluster(decomposition, Placement(assignment))


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_explain(args: argparse.Namespace) -> int:
    expr = parse_query(args.query)
    normalized = normalize(expr)
    qlist = build_qlist(normalized, source=args.query)
    print("surface     :", unparse_bool(expr))
    print("normal form :", unparse_normalized(normalized))
    print(f"QList (|q| = {len(qlist)}):")
    print(qlist.pretty())
    print(f"broadcast size: {qlist.wire_bytes()} bytes")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    if args.batch_size is not None and args.batch_size < 1:
        # Validate uniformly, whether or not the flag ends up chunking
        # anything (a single query never does).
        print("error: batch_size must be >= 1", file=sys.stderr)
        return 2
    tree = _load_tree(args.file)
    cluster = _build_cluster(tree, args.fragments, args.sites)
    if len(args.query) > 1:
        return _run_query_batch(args, cluster)
    query_text = args.query[0]
    qlist = build_qlist(normalize(parse_query(query_text)), source=query_text)
    engine_names = list(ENGINE_REGISTRY) if args.all_engines else [args.engine]
    # Deduplicate aliases while keeping order.
    seen_classes = []
    for name in engine_names:
        engine_cls = ENGINE_REGISTRY.get(name.lower())
        if engine_cls is None:
            print(f"unknown engine {name!r}; choose from {sorted(set(ENGINE_REGISTRY))}")
            return 2
        if engine_cls not in seen_classes:
            seen_classes.append(engine_cls)

    print(
        f"document: {cluster.total_size()} nodes, {cluster.card()} fragments, "
        f"{len(cluster.sites())} sites; |QList| = {len(qlist)}; "
        f"executor = {args.executor}"
    )
    # One executor instance shared across engines, so a process pool
    # forks its workers once for the whole comparison.
    executor = resolve_executor(args.executor)
    with executor:
        for engine_cls in seen_classes:
            trace = Trace() if args.trace else None
            engine = engine_cls(cluster, trace=trace, executor=executor)
            result = engine.evaluate(qlist)
            summary = result.metrics.summary()
            print(
                f"{engine_cls.name:18s} answer={result.answer}  "
                f"visits(max)={summary['max_visits_per_site']}  "
                f"msgs={summary['messages']}  bytes={summary['bytes_total']}  "
                f"elapsed={summary['elapsed_seconds'] * 1000:.2f}ms  "
                f"wall={summary['wall_seconds'] * 1000:.2f}ms"
            )
            if trace is not None:
                print(trace.render())
    return 0


def _run_query_batch(args: argparse.Namespace, cluster: Cluster) -> int:
    """Evaluate several queries as batches through a QuerySession."""
    from repro.core import QuerySession

    if args.all_engines:
        print(
            "--all-engines applies to single queries; pick one engine for a batch",
            file=sys.stderr,
        )
        return 2
    # Engine-name and batch-size validation live in QuerySession; its
    # ValueError is reported by main() like every other CLI error
    # (stderr, exit 2).
    trace = Trace() if args.trace else None
    with QuerySession(
        cluster,
        engine=args.engine,
        trace=trace,
        executor=args.executor,
        batch_size=args.batch_size,
    ) as session:
        outcome = session.evaluate_many(args.query)
        stats = session.cache_stats()
    print(
        f"document: {cluster.total_size()} nodes, {cluster.card()} fragments, "
        f"{len(cluster.sites())} sites; {len(args.query)} queries in "
        f"{len(outcome.batches)} batch(es); executor = {args.executor}"
    )
    for text, answer, cost in zip(args.query, outcome.answers, outcome.per_query):
        shared = f"  (shared x{cost.shared_with + 1})" if cost.shared_with else ""
        print(f"  answer={str(answer):5s}  |q|={cost.qlist_len:<3d} {text}{shared}")
    print(
        f"per query (amortized): visits={outcome.visits_per_query:.2f}  "
        f"msgs={outcome.messages_per_query:.2f}  "
        f"bytes={outcome.bytes_per_query:.0f}  "
        f"[totals: visits={outcome.visits_total} msgs={outcome.messages_total} "
        f"bytes={outcome.bytes_total}]"
    )
    print(
        f"compiled {stats['misses']} unique queries "
        f"({stats['hits']} cache hits)"
    )
    if trace is not None:
        print(trace.render())
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Maintain standing queries over a generated update stream."""
    from repro.core import QuerySession
    from repro.workloads.updates import update_stream

    tree = _load_tree(args.file)
    cluster = _build_cluster(tree, args.fragments, args.sites)
    total_sites = len(cluster.sites())
    print(
        f"document: {cluster.total_size()} nodes, {cluster.card()} fragments, "
        f"{total_sites} sites; {len(args.query)} standing queries; "
        f"executor = {args.executor}"
    )
    with QuerySession(cluster, engine="parbox", executor=args.executor) as session:
        maintainer = session.watch(args.query)
        print(
            f"subscribed: combined |QList| = {maintainer.combined_size()} "
            f"({maintainer.duplicate_subscriptions()} duplicates collapsed)"
        )
        for name, answer in maintainer.answers().items():
            print(f"  {str(answer):5s} {name}")

        total_bytes = 0
        total_nodes = 0
        stream = update_stream(
            cluster,
            rounds=args.rounds,
            ops_per_round=args.ops,
            seed=args.seed,
            hot_fragments=args.hot,
            structural_every=args.structural_every,
        )
        for batch in stream:
            round_ = maintainer.apply(batch)
            total_bytes += round_.traffic_bytes
            total_nodes += round_.nodes_recomputed
            flips = (
                "; flipped: " + ", ".join(round_.changed) if round_.changed else ""
            )
            print(
                f"round {round_.seq}: {len(round_.ops)} ops, dirty="
                f"{list(round_.dirty_fragments)}, sites={list(round_.sites_visited)}"
                f"/{total_sites}, {round_.traffic_bytes} bytes, "
                f"{round_.nodes_recomputed} nodes{flips}"
            )
        events = list(maintainer.changefeed)
        print(
            f"\n{args.rounds} update rounds: {total_bytes} bytes total "
            f"({total_bytes / max(1, args.rounds):.0f}/round), "
            f"{total_nodes} nodes recomputed, {len(events)} changefeed event(s)"
        )
        for event in events:
            print(
                f"  round {event.round_seq}: {event.name} "
                f"{event.old_answer} -> {event.new_answer}"
            )
        maintainer.close()
    return 0


def cmd_rebalance(args: argparse.Namespace) -> int:
    """Optimize placement for a query workload and enact it live."""
    from repro.core import QuerySession
    from repro.placement import Constraints, Workload, profile_update_stream

    tree = _load_tree(args.file)
    cluster = _build_cluster(tree, args.fragments, args.sites)
    rates = profile_update_stream(
        cluster, rounds=args.profile_rounds, seed=args.seed
    )
    print(
        f"document: {cluster.total_size()} nodes, {cluster.card()} fragments, "
        f"{len(cluster.sites())} sites; workload: {len(args.query)} queries, "
        f"update profile {dict(sorted(rates.items()))}"
    )
    capacity = args.capacity
    if capacity is None and args.max_sites is None:
        # Unconstrained, the optimum degenerates to "co-locate everything
        # with the coordinator"; default to 150% of the mean site load so
        # the default invocation shows a real trade-off.
        capacity = int(cluster.total_size() / max(1, len(cluster.sites())) * 1.5)
        print(f"(no constraints given: defaulting to --capacity {capacity})")
    constraints = Constraints(
        site_capacity=capacity,
        max_sites=args.max_sites,
        allow_splits=not args.moves_only,
        allow_merges=not args.moves_only,
    )
    with QuerySession(cluster, engine="parbox") as session:
        workload = Workload.from_queries(
            args.query, cache=session.cache, update_rates=rates
        )
        before = session.evaluate_many(args.query)
        watch = session.watch(args.query)
        outcome = session.rebalance(
            workload=workload, maintainer=watch, constraints=constraints
        )
        live_answers = tuple(watch.answers().values())
        watch.close()
        after = session.evaluate_many(args.query)
    plan = outcome.plan
    print(plan.describe())
    if not plan.is_noop():
        print(
            f"enacted live: {len(outcome.migrations)} migration(s), "
            f"{outcome.migration_bytes} bytes shipped"
        )
    agree = live_answers == after.answers == before.answers
    print(
        f"answers preserved through rebalance: {agree} "
        f"({sum(after.answers)}/{len(after.answers)} true)"
    )
    print(
        f"measured workload traffic: {before.bytes_total} -> {after.bytes_total} "
        f"bytes/epoch ({before.bytes_total - after.bytes_total:+d})"
    )
    return 0 if agree else 1


def _write_obs_artifacts(obs_dir: str, client, spans) -> None:
    """Scrape the gateway and write metrics + span artifacts to a dir."""
    from repro.obs.trace import SpanStore

    out = Path(obs_dir)
    out.mkdir(parents=True, exist_ok=True)
    metrics_reply = client.metrics()
    (out / "metrics.txt").write_text(metrics_reply.text)
    (out / "metrics.json").write_text(json.dumps(metrics_reply.snapshot, indent=2))
    store = SpanStore()
    store.ingest_wire(spans)
    (out / "spans.json").write_text(store.export_json(indent=2))
    print(f"observability artifacts written to {out}/")


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the networked serving tier and serve until interrupted."""
    from repro.serving import SERVABLE_ENGINES, ServingCluster

    if args.engine.lower() not in SERVABLE_ENGINES:
        print(
            f"error: engine {args.engine!r} is not servable; "
            f"choose from {list(SERVABLE_ENGINES)}",
            file=sys.stderr,
        )
        return 2
    tree = _load_tree(args.file)
    cluster = _build_cluster(tree, args.fragments, args.sites)
    serving = ServingCluster(
        cluster,
        replicas=args.replicas,
        site_mode=args.site_mode,
        site_timeout=args.site_timeout,
        default_engine=args.engine,
        gateway_port=args.port,
        coordinators=args.coordinators,
        max_workers=args.max_workers,
        routing=args.routing,
    )
    serving.start()
    try:
        print(
            f"serving {cluster.total_size()} nodes / {cluster.card()} fragments "
            f"across {len(serving.sites)} {args.site_mode} site(s) "
            f"x{args.replicas} replica(s), "
            f"{args.coordinators} coordinator(s) [{args.routing}]"
        )
        for site_id, servers in sorted(serving.sites.items()):
            ports = ", ".join(str(server.port) for server in servers)
            print(f"  site {site_id}: port(s) {ports}")
        print(f"gateway: {serving.address}  (engine: {args.engine})")
        if args.check:
            with serving.client() as client:
                client.ping()
                reply = client.query(
                    ("[//a]", "[not //b]"), args.engine, trace=bool(args.obs_dir)
                )
                if args.obs_dir:
                    _write_obs_artifacts(args.obs_dir, client, reply.spans)
            print(
                f"self-check: answers={list(reply.answers)} "
                f"engine={reply.details.get('engine')} ok"
            )
            return 0
        print("serving; Ctrl-C to stop")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nstopping")
        return 0
    finally:
        serving.close()


def cmd_connect(args: argparse.Namespace) -> int:
    """Evaluate queries against a running gateway."""
    from repro.core import QuerySession

    spec = f"net:{args.address}" + (f"/{args.engine}" if args.engine else "")
    with QuerySession(None, engine=spec) as session:
        if args.trace:
            session.engine.trace_batches = True
        outcome = session.evaluate_many(args.query)
        spans = session.engine.last_spans if args.trace else ()
    batch = outcome.batches[0]
    print(
        f"gateway {args.address}: {len(args.query)} queries via "
        f"{batch.engine} in {len(outcome.batches)} batch(es)"
    )
    for text, answer, cost in zip(args.query, outcome.answers, outcome.per_query):
        shared = f"  (shared x{cost.shared_with + 1})" if cost.shared_with else ""
        print(f"  answer={str(answer):5s}  |q|={cost.qlist_len:<3d} {text}{shared}")
    print(
        f"per query (amortized): visits={outcome.visits_per_query:.2f}  "
        f"msgs={outcome.messages_per_query:.2f}  "
        f"bytes={outcome.bytes_per_query:.0f}  "
        f"[totals: visits={outcome.visits_total} msgs={outcome.messages_total} "
        f"bytes={outcome.bytes_total}]"
    )
    if args.trace:
        from repro.obs.trace import Span, render_spans

        print(render_spans([Span.from_wire(wire) for wire in spans]))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render an exported span file as an indented timeline."""
    from repro.obs.trace import load_spans, render_spans

    obj = json.loads(Path(args.file).read_text())
    spans = load_spans(obj)
    print(render_spans(spans, trace_id=args.trace_id))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Poll a gateway's metrics registry; print live serving vitals."""
    from repro.obs.metrics import histogram_percentiles
    from repro.serving import GatewayClient

    host, _, port_text = args.address.rpartition(":")
    if not host:
        print(f"error: expected HOST:PORT, got {args.address!r}", file=sys.stderr)
        return 2
    client = GatewayClient(host, int(port_text))
    try:
        previous: Optional[dict] = None
        for iteration in range(args.iterations):
            if iteration:
                time.sleep(args.interval)
            snapshot = client.metrics().snapshot

            def total(name: str, snap=None) -> float:
                entry = (snap if snap is not None else snapshot).get(name, {})
                return sum(entry.get("values", {}).values())

            requests = total("gateway_requests_total")
            rate = (
                (requests - total("gateway_requests_total", previous)) / args.interval
                if previous is not None
                else 0.0
            )
            latency = snapshot.get("gateway_request_seconds", {}).get("values", {})
            pct = histogram_percentiles(
                next(iter(latency.values()), {"buckets": [], "sum": 0.0, "count": 0}),
                (0.5, 0.95, 0.99),
            )
            inflight = snapshot.get("gateway_inflight", {}).get("values", {})
            events = snapshot.get("coordinator_events_total", {}).get("values", {})

            def fmt(value: Optional[float]) -> str:
                return f"{value * 1000:.1f}ms" if value is not None else "-"

            print(
                f"requests={requests:.0f} ({rate:.1f}/s)  "
                f"shed={total('gateway_shed_total'):.0f}  "
                f"retries={events.get('event=retries', 0):.0f}  "
                f"repushes={events.get('event=repushes', 0):.0f}  "
                f"inflight={next(iter(inflight.values()), 0):.0f}  "
                f"p50={fmt(pct[0.5])} p95={fmt(pct[0.95])} p99={fmt(pct[0.99])}"
            )
            previous = snapshot
    finally:
        client.close()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Run (or re-analyze) the factorial load experiment."""
    from repro.loadgen import analyze, execute_table, render_deltas, table_for_scale

    scale = "quick" if args.quick else "default"
    out_dir = Path(args.out)
    run_table_path = out_dir / "run_table.csv"
    if args.analyze_only:
        if not run_table_path.exists():
            print(f"error: {run_table_path} not found; run without --analyze-only first",
                  file=sys.stderr)
            return 2
        # Scale is read from the CSV itself in analyze-only mode.
        scale = None
    else:
        table = table_for_scale(scale)
        print(table.describe())
        execute_table(
            table, out_dir, progress=print, trace_every=args.trace_every
        )
        print(f"artifacts written to {out_dir}/ (aggregate: {run_table_path})")
    result = analyze(
        run_table_path,
        baseline_path=Path(args.baseline) if args.baseline else None,
        scale=scale,
    )
    print(render_deltas(result["deltas"]))
    failures = result["failures"]
    if failures is None:
        if args.baseline:
            print(
                f"(no baseline entry for scale {result['scale']!r} in "
                f"{args.baseline}; gate skipped)"
            )
        return 0
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[PASS] regression gate vs {args.baseline} @ {result['scale']} scale")
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    tree = _load_tree(args.file)
    cluster = _build_cluster(tree, args.fragments, args.sites)
    qlist = build_qlist(normalize(parse_query(args.query)), source=args.query)
    selection = SelectionEngine(cluster).select(qlist)
    print(
        f"{len(selection.paths)} node(s) selected; "
        f"max visits/site = {selection.result.metrics.max_visits_per_site()}"
    )
    limit = args.limit if args.limit > 0 else len(selection.paths)
    root = tree.root
    for path in selection.paths[:limit]:
        node = root
        for index in path:
            node = node.children[index]
        text = f" {node.text!r}" if node.text else ""
        print(f"  /{'/'.join(map(str, path)) or '.'} -> <{node.label}>{text}")
    if limit < len(selection.paths):
        print(f"  ... {len(selection.paths) - limit} more")
    return 0


def cmd_fragment(args: argparse.Namespace) -> int:
    tree = _load_tree(args.file)
    decomposition = fragment_balanced(tree, args.fragments)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = {
        "root_fragment": decomposition.root_fragment_id,
        "fragments": {},
    }
    for fragment_id, fragment in decomposition.fragments.items():
        path = out_dir / f"{fragment_id}.xml"
        path.write_text(serialize(fragment.root, indent=2))
        manifest["fragments"][fragment_id] = {
            "file": path.name,
            "size": fragment.size(),
            "sub_fragments": fragment.sub_fragment_ids(),
        }
    (out_dir / "manifest.json").write_text(json.dumps(manifest, indent=2))
    print(
        f"wrote {decomposition.card()} fragments "
        f"({decomposition.total_size()} nodes) to {out_dir}/"
    )
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ParBoX: distributed Boolean XPath via partial evaluation"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    explain = sub.add_parser("explain", help="show normal form and QList of a query")
    explain.add_argument("query")
    explain.set_defaults(func=cmd_explain)

    query = sub.add_parser("query", help="evaluate Boolean queries over an XML file")
    query.add_argument("file")
    query.add_argument("query", nargs="+", help="one or more queries (several = one batch)")
    query.add_argument("--fragments", type=int, default=4)
    query.add_argument("--sites", type=int, default=None)
    query.add_argument("--engine", default="parbox")
    query.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="with several queries: chunk them to B per broadcast (default: one batch)",
    )
    query.add_argument(
        "--executor",
        default="serial",
        choices=sorted(EXECUTOR_REGISTRY),
        help="site-execution strategy (default: serial)",
    )
    query.add_argument("--all-engines", action="store_true")
    query.add_argument("--trace", action="store_true")
    query.set_defaults(func=cmd_query)

    stream = sub.add_parser(
        "stream", help="maintain standing queries over a fragment-update stream"
    )
    stream.add_argument("file")
    stream.add_argument("query", nargs="+", help="standing queries to keep live")
    stream.add_argument("--fragments", type=int, default=4)
    stream.add_argument("--sites", type=int, default=None)
    stream.add_argument("--rounds", type=int, default=8, help="update batches to apply")
    stream.add_argument("--ops", type=int, default=4, help="updates per batch")
    stream.add_argument("--hot", type=int, default=1, help="hot fragments absorbing most updates")
    stream.add_argument(
        "--structural-every",
        type=int,
        default=0,
        help="every M-th batch leads with a split/merge (0 = never)",
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--executor",
        default="serial",
        choices=sorted(EXECUTOR_REGISTRY),
        help="site-execution strategy for dirty-site refreshes",
    )
    stream.set_defaults(func=cmd_stream)

    rebalance = sub.add_parser(
        "rebalance", help="optimize fragment placement for a query workload"
    )
    rebalance.add_argument("file")
    rebalance.add_argument("query", nargs="+", help="the query workload to optimize for")
    rebalance.add_argument("--fragments", type=int, default=4)
    rebalance.add_argument("--sites", type=int, default=None)
    rebalance.add_argument(
        "--capacity", type=int, default=None, help="max nodes one site may store"
    )
    rebalance.add_argument(
        "--max-sites", type=int, default=None, help="max sites the plan may use"
    )
    rebalance.add_argument(
        "--profile-rounds",
        type=int,
        default=8,
        help="update-stream rounds to profile rates from",
    )
    rebalance.add_argument(
        "--moves-only",
        action="store_true",
        help="restrict the plan to moves (no split/merge)",
    )
    rebalance.add_argument("--seed", type=int, default=0)
    rebalance.set_defaults(func=cmd_rebalance)

    serve = sub.add_parser(
        "serve", help="boot the networked serving tier (gateway + site servers)"
    )
    serve.add_argument("file")
    serve.add_argument("--fragments", type=int, default=4)
    serve.add_argument("--sites", type=int, default=None)
    serve.add_argument("--port", type=int, default=0, help="gateway port (0 = OS-assigned)")
    serve.add_argument(
        "--site-mode",
        default="inline",
        choices=("inline", "process"),
        help="sites as in-process servers or real child processes",
    )
    serve.add_argument("--replicas", type=int, default=1, help="site servers per site")
    serve.add_argument(
        "--coordinators",
        type=int,
        default=1,
        help="coordinators behind the gateway (scale-out pool size)",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="gateway worker threads (default: tracks max inflight)",
    )
    serve.add_argument(
        "--routing",
        default="hash",
        choices=("hash", "least", "skew"),
        help="coordinator routing policy (hash = sticky by plan fingerprint)",
    )
    serve.add_argument("--engine", default="parbox", help="default engine for queries")
    serve.add_argument(
        "--site-timeout", type=float, default=10.0, help="per-site request deadline (s)"
    )
    serve.add_argument(
        "--check",
        action="store_true",
        help="boot, run a loopback self-query, then exit (smoke mode)",
    )
    serve.add_argument(
        "--obs-dir",
        default="",
        help="with --check: write metrics.txt/metrics.json/spans.json here",
    )
    serve.set_defaults(func=cmd_serve)

    connect = sub.add_parser("connect", help="evaluate queries against a running gateway")
    connect.add_argument("address", help="gateway HOST:PORT")
    connect.add_argument("query", nargs="+", help="one or more queries (one batch)")
    connect.add_argument(
        "--engine", default="", help="engine on the gateway (default: its configured one)"
    )
    connect.add_argument(
        "--trace", action="store_true", help="render the batch's cross-process span tree"
    )
    connect.set_defaults(func=cmd_connect)

    trace = sub.add_parser("trace", help="render an exported span file as a timeline")
    trace.add_argument("file", help="span JSON file (e.g. serve --obs-dir's spans.json)")
    trace.add_argument("--trace-id", default=None, help="render only this trace")
    trace.set_defaults(func=cmd_trace)

    top = sub.add_parser("top", help="poll a gateway's live serving metrics")
    top.add_argument("address", help="gateway HOST:PORT")
    top.add_argument("--interval", type=float, default=1.0, help="seconds between polls")
    top.add_argument("--iterations", type=int, default=5, help="polls before exiting")
    top.set_defaults(func=cmd_top)

    # "repro bench [...]" forwards verbatim to the harness in main()
    # (argparse.REMAINDER cannot pass through leading options); this
    # stub only makes the subcommand show up in --help.
    sub.add_parser(
        "bench",
        help="run the benchmark harness (forwards to python -m repro.bench)",
        add_help=False,
    )

    loadtest = sub.add_parser(
        "loadtest", help="open-loop factorial load experiment over the serving tier"
    )
    loadtest.add_argument(
        "--quick", action="store_true", help="the small CI-budget run table"
    )
    loadtest.add_argument(
        "--out", default="loadtest_out", help="artifact directory (default: loadtest_out)"
    )
    loadtest.add_argument(
        "--baseline",
        nargs="?",
        const="BENCH_loadtest.json",
        default=None,
        help="gate against a committed baseline (default path: BENCH_loadtest.json)",
    )
    loadtest.add_argument(
        "--analyze-only",
        action="store_true",
        help="skip collection; re-analyze --out's existing run_table.csv",
    )
    loadtest.add_argument(
        "--trace-every",
        type=int,
        default=5,
        help="trace every N-th request into the span sample (0 = never)",
    )
    loadtest.set_defaults(func=cmd_loadtest)

    select = sub.add_parser("select", help="select matching nodes (Section 8 extension)")
    select.add_argument("file")
    select.add_argument("query")
    select.add_argument("--fragments", type=int, default=4)
    select.add_argument("--sites", type=int, default=None)
    select.add_argument("--limit", type=int, default=20)
    select.set_defaults(func=cmd_select)

    fragment = sub.add_parser("fragment", help="cut a document into fragment files")
    fragment.add_argument("file")
    fragment.add_argument("--fragments", type=int, default=4)
    fragment.add_argument("--out", default="fragments_out")
    fragment.set_defaults(func=cmd_fragment)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "bench":
        # Forward verbatim so harness options (--quick, --profile, ...)
        # reach the benchmark parser untouched.
        from repro.bench.__main__ import main as bench_main

        return bench_main(arguments[1:])
    argv = arguments
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
