"""The workload-aware placement optimizer.

Given a cluster and a :class:`~repro.placement.workload.Workload`, the
optimizer searches the space of decompositions and placements for one
that minimizes the predicted steady-state cost of
:func:`~repro.core.estimates.estimate_workload`, subject to capacity
and balance constraints.  The search never touches XML: it runs over
:class:`~repro.core.estimates.Catalog` snapshots, deriving each
hypothetical state functionally, and only the chosen
:class:`RebalancePlan` is ever enacted on real data
(:mod:`repro.placement.rebalancer`).

The algorithm is greedy hill-climbing with a composite neighborhood --
the classic local-search recipe for partitioning problems:

1. snapshot the catalog; survey each fragment for split points
   (:func:`~repro.fragments.fragmenter.split_candidates`);
2. per step, score every candidate action --
   **move** a fragment to another (or a fresh) site,
   **split** a fragment and place the new half anywhere,
   **merge** a sub-fragment back into its parent --
   as ``predicted steady-state cost  +  migration_weight x migration
   bytes  +  a large penalty per node of constraint violation``;
3. apply the best action if it improves the score, else stop.

Because moves of already-moved fragments stay in the neighborhood, the
greedy loop *is* a local search: early decisions get revised when a
later split or merge changes the trade-off.  The penalty formulation
means an infeasible starting state (an overloaded site, too many
sites) is repaired first -- any violation dwarfs every steady-state
term -- and the optimizer doubles as a rebalancer after organic growth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.estimates import Catalog, WorkloadEstimate, estimate_workload
from repro.distsim.cluster import Cluster
from repro.fragments.fragment import FragmentedTree
from repro.fragments.fragmenter import SplitCandidate, fresh_fragment_id, split_candidates
from repro.fragments.source_tree import Placement
from repro.placement.workload import Workload
from repro.stream.updates import MergeFragment, MoveFragment, SplitFragment, UpdateOp

#: Cost charged per node of constraint violation: large enough that any
#: repair beats any steady-state saving.
_PENALTY_PER_NODE = 1e9


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MoveAction:
    """Re-assign one fragment to another site."""

    fragment_id: str
    target_site: str

    def to_op(self) -> UpdateOp:
        return MoveFragment(self.fragment_id, self.target_site)

    def describe(self) -> str:
        return f"move {self.fragment_id} -> {self.target_site}"


@dataclass(frozen=True)
class SplitAction:
    """Carve a new fragment out and place it on ``target_site``."""

    fragment_id: str
    node_id: int
    new_fragment_id: str
    target_site: str
    #: Nodes the carved subtree holds (drives the update-rate share the
    #: new fragment inherits; informational otherwise).
    subtree_size: int = 0

    def to_op(self) -> UpdateOp:
        return SplitFragment(
            self.fragment_id,
            self.node_id,
            new_fragment_id=self.new_fragment_id,
            target_site=self.target_site,
        )

    def describe(self) -> str:
        return (
            f"split {self.fragment_id} at node {self.node_id} "
            f"-> {self.new_fragment_id} on {self.target_site}"
        )


@dataclass(frozen=True)
class MergeAction:
    """Absorb a sub-fragment back into its parent (data moves along)."""

    parent_id: str
    child_id: str

    def to_op(self) -> UpdateOp:
        return MergeFragment(self.parent_id, self.child_id)

    def describe(self) -> str:
        return f"merge {self.child_id} into {self.parent_id}"


RebalanceAction = Union[MoveAction, SplitAction, MergeAction]


# ---------------------------------------------------------------------------
# Constraints and the plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Constraints:
    """What a feasible placement must respect.

    ``site_capacity`` bounds the nodes one site may store;
    ``balance_factor`` bounds the loaded-to-mean ratio (1.0 = perfectly
    even); ``max_sites`` caps how many sites the plan may use, and the
    optimizer may *open* fresh sites (named ``<new_site_prefix><k>``)
    up to that cap.  The ``allow_*`` switches restrict the neighborhood
    -- a moves-only optimization keeps the decomposition bitwise intact,
    which is what the benchmarks use to transplant an optimized
    assignment onto freshly generated documents.
    """

    site_capacity: Optional[int] = None
    max_sites: Optional[int] = None
    balance_factor: Optional[float] = None
    allow_moves: bool = True
    allow_splits: bool = True
    allow_merges: bool = True
    max_actions: int = 16
    #: Minimum relative score improvement to keep going.
    min_gain: float = 1e-6
    splits_per_fragment: int = 3
    new_site_prefix: str = "Sx"


@dataclass(frozen=True)
class RebalancePlan:
    """The optimizer's output: ordered actions + predicted effect.

    ``actions`` apply in order (a move may target a fragment an earlier
    split created); :meth:`to_ops` turns them into the typed update log
    ops a :class:`~repro.stream.maintainer.StreamMaintainer` enacts
    live.  ``assignment`` is the final fragment -> site map (only
    directly transplantable when the plan is moves-only: split actions
    reference node ids of the plan's own cluster).
    """

    actions: tuple[RebalanceAction, ...]
    before: WorkloadEstimate
    after: WorkloadEstimate
    assignment: dict[str, str] = field(repr=False)
    migration_bytes_predicted: int = 0

    def to_ops(self) -> list[UpdateOp]:
        """The typed update ops enacting the plan, in order."""
        return [action.to_op() for action in self.actions]

    @property
    def predicted_improvement(self) -> float:
        """Predicted steady-state terms saved per workload epoch."""
        return self.before.total() - self.after.total()

    def is_noop(self) -> bool:
        return not self.actions

    def describe(self) -> str:
        """Human-readable plan summary, one line per action."""
        lines = [
            f"predicted: {self.before.total():.0f} -> {self.after.total():.0f} terms/epoch "
            f"({self.predicted_improvement:+.0f}), "
            f"~{self.migration_bytes_predicted} migration bytes"
        ]
        lines += [f"  {i + 1}. {a.describe()}" for i, a in enumerate(self.actions)]
        if self.is_noop():
            lines.append("  (already optimal under the given constraints)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.actions)


# ---------------------------------------------------------------------------
# Scoring
# ---------------------------------------------------------------------------


def _violation_nodes(estimate: WorkloadEstimate, constraints: Constraints) -> float:
    """Constraint violation in node units (0 when feasible)."""
    loads = estimate.site_loads
    violation = 0.0
    if constraints.site_capacity is not None:
        violation += sum(
            max(0, load - constraints.site_capacity) for load in loads.values()
        )
    if constraints.max_sites is not None and len(loads) > constraints.max_sites:
        violation += sum(
            sorted(loads.values())[: len(loads) - constraints.max_sites]
        )
    if constraints.balance_factor is not None and loads:
        mean = sum(loads.values()) / len(loads)
        violation += max(0.0, max(loads.values()) - constraints.balance_factor * mean)
    return violation


def _score(
    catalog: Catalog,
    workload: Workload,
    rates: dict[str, float],
    constraints: Constraints,
    migration_bytes: int,
) -> tuple[float, WorkloadEstimate]:
    estimate = estimate_workload(catalog, workload.query_mix(), rates)
    score = (
        estimate.total()
        + workload.migration_weight * migration_bytes
        + _PENALTY_PER_NODE * _violation_nodes(estimate, constraints)
    )
    return score, estimate


def _evolve_rates(
    action: RebalanceAction, rates: dict[str, float], catalog: Catalog
) -> dict[str, float]:
    """Update rates follow the *data*, not the fragment id.

    A split hands the new fragment a share of its parent's rate
    proportional to the carved subtree (updates are assumed uniform
    within a fragment); a merge folds the absorbed fragment's rate into
    the parent.  Without this, merging a hot fragment away would hide
    its maintenance cost from the estimator and the search would game
    its own objective.  ``catalog`` is the state *before* the action.
    """
    if isinstance(action, MoveAction):
        return rates
    updated = dict(rates)
    if isinstance(action, SplitAction):
        parent_rate = updated.get(action.fragment_id, 0.0)
        if parent_rate:
            share = action.subtree_size / max(1, catalog.sizes[action.fragment_id])
            updated[action.new_fragment_id] = parent_rate * share
            updated[action.fragment_id] = parent_rate * (1.0 - share)
    else:  # MergeAction
        child_rate = updated.pop(action.child_id, 0.0)
        if child_rate:
            updated[action.parent_id] = updated.get(action.parent_id, 0.0) + child_rate
    return updated


# ---------------------------------------------------------------------------
# The search
# ---------------------------------------------------------------------------


def _candidate_sites(catalog: Catalog, constraints: Constraints) -> list[str]:
    """Placeable sites: the current ones plus fresh ones up to the cap."""
    sites = catalog.sites()
    if constraints.max_sites is not None:
        room = constraints.max_sites - len(sites)
        index = 0
        while room > 0:
            name = f"{constraints.new_site_prefix}{index}"
            if name not in sites:
                sites.append(name)
                room -= 1
            index += 1
    return sites


def _enumerate(
    catalog: Catalog,
    constraints: Constraints,
    split_table: dict[str, list[SplitCandidate]],
    consumed_splits: set[str],
    used_ids: set[str],
):
    """Yield ``(action, next_catalog, migration_bytes_delta)`` triples."""
    sites = _candidate_sites(catalog, constraints)
    if constraints.allow_moves:
        for fragment_id in catalog.fragment_ids():
            origin = catalog.site_of[fragment_id]
            for site in sites:
                if site == origin:
                    continue
                yield (
                    MoveAction(fragment_id, site),
                    catalog.with_move(fragment_id, site),
                    catalog.wire_bytes[fragment_id],
                )
    if constraints.allow_splits:
        for fragment_id, candidates in split_table.items():
            if fragment_id in consumed_splits or fragment_id not in catalog.sizes:
                continue
            origin = catalog.site_of[fragment_id]
            for candidate in candidates:
                new_id = fresh_fragment_id(used_ids)
                for site in sites:
                    yield (
                        SplitAction(
                            fragment_id,
                            candidate.node_id,
                            new_id,
                            site,
                            subtree_size=candidate.subtree_size,
                        ),
                        catalog.with_split(
                            fragment_id,
                            new_id,
                            candidate.subtree_size,
                            candidate.subtree_bytes,
                            candidate.moved_sub_fragments,
                            target_site=site,
                        ),
                        candidate.subtree_bytes if site != origin else 0,
                    )
    if constraints.allow_merges:
        for parent_id in catalog.fragment_ids():
            for child_id in catalog.children[parent_id]:
                cross_site = catalog.site_of[child_id] != catalog.site_of[parent_id]
                yield (
                    MergeAction(parent_id, child_id),
                    catalog.with_merge(parent_id, child_id),
                    catalog.wire_bytes[child_id] if cross_site else 0,
                )


def optimize_placement(
    cluster: Cluster,
    workload: Workload,
    constraints: Optional[Constraints] = None,
) -> RebalancePlan:
    """Search fragmentation granularity + placement for one workload.

    Returns a :class:`RebalancePlan` relative to the cluster's current
    state; enact it with :func:`~repro.placement.rebalancer.enact_plan`
    (or :meth:`repro.core.session.QuerySession.rebalance`, which does
    both).  The cluster itself is *not* modified.
    """
    constraints = constraints or Constraints()
    catalog = Catalog.from_cluster(cluster)
    split_table: dict[str, list[SplitCandidate]] = {}
    if constraints.allow_splits:
        split_table = {
            fragment_id: split_candidates(
                fragment, limit=constraints.splits_per_fragment
            )
            for fragment_id, fragment in cluster.fragmented_tree.fragments.items()
        }
    rates = dict(workload.update_rates)
    before = estimate_workload(catalog, workload.query_mix(), rates)

    actions: list[RebalanceAction] = []
    consumed_splits: set[str] = set()
    used_ids = set(catalog.fragment_ids())
    migration_bytes = 0
    score, _ = _score(catalog, workload, rates, constraints, migration_bytes)

    for _ in range(constraints.max_actions):
        best: Optional[tuple[float, RebalanceAction, Catalog, dict, int]] = None
        for action, next_catalog, migration_delta in _enumerate(
            catalog, constraints, split_table, consumed_splits, used_ids
        ):
            next_rates = _evolve_rates(action, rates, catalog)
            candidate_score, _ = _score(
                next_catalog,
                workload,
                next_rates,
                constraints,
                migration_bytes + migration_delta,
            )
            if best is None or candidate_score < best[0]:
                best = (candidate_score, action, next_catalog, next_rates, migration_delta)
        if best is None:
            break
        best_score, action, next_catalog, next_rates, migration_delta = best
        if best_score >= score - max(constraints.min_gain * abs(score), 1e-12):
            break
        score = best_score
        catalog = next_catalog
        rates = next_rates
        migration_bytes += migration_delta
        actions.append(action)
        if isinstance(action, SplitAction):
            consumed_splits.add(action.fragment_id)
            used_ids.add(action.new_fragment_id)
        elif isinstance(action, MergeAction):
            consumed_splits.add(action.parent_id)  # node ids moved around

    after = estimate_workload(catalog, workload.query_mix(), rates)
    return RebalancePlan(
        actions=tuple(actions),
        before=before,
        after=after,
        assignment=dict(catalog.site_of),
        migration_bytes_predicted=migration_bytes,
    )


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def balanced_random_placement(
    tree: FragmentedTree,
    site_ids: list[str],
    seed: int = 0,
) -> Placement:
    """The workload-blind baseline: random but node-balanced.

    Fragments are shuffled deterministically and assigned greedily to
    the currently least-loaded site, so the node balance is as good as
    workload-blind placement gets -- which is exactly what the
    ``placement`` benchmark pits the optimizer against.
    """
    if not site_ids:
        raise ValueError("need at least one site")
    rng = random.Random(seed)
    order = sorted(tree.fragments)
    rng.shuffle(order)
    loads = {site: 0 for site in site_ids}
    assignment: dict[str, str] = {}
    for fragment_id in order:
        site = min(loads, key=lambda s: (loads[s], s))
        assignment[fragment_id] = site
        loads[site] += tree.fragments[fragment_id].size()
    return Placement(assignment)


__all__ = [
    "Constraints",
    "MoveAction",
    "SplitAction",
    "MergeAction",
    "RebalanceAction",
    "RebalancePlan",
    "optimize_placement",
    "balanced_random_placement",
]
