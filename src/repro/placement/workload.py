"""Workload profiles: what the placement optimizer optimizes *for*.

A placement is only good relative to a workload.  This module describes
one as the two streams the rest of the system already models:

* a **query mix** -- compiled queries (:class:`~repro.xpath.qlist.QList`
  via the :class:`~repro.core.plan.QueryCache` pipeline) with weights;
  repeated texts fold into one weighted entry, exactly as the batch
  planner deduplicates them onto one segment;
* an **update profile** -- expected updates per fragment per workload
  epoch, either given directly or *profiled* from the same
  :func:`~repro.workloads.updates.update_stream` generator the stream
  experiments replay (:func:`profile_update_stream` dry-runs the
  stream on a scratch copy of the cluster, so profiling never mutates
  live data).

:func:`~repro.core.estimates.estimate_workload` consumes the profile's
:meth:`Workload.query_mix` directly; the optimizer adds
``migration_weight`` -- the exchange rate between one-off migration
bytes and steady-state per-epoch cost terms -- to decide when a data
move pays for itself.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from repro.core.plan import QueryCache
from repro.distsim.cluster import Cluster
from repro.stream.updates import apply_updates
from repro.xpath.qlist import QList

Query = Union[str, QList]


@dataclass(frozen=True)
class Workload:
    """One workload epoch: weighted standing queries + update rates."""

    queries: tuple[tuple[QList, float], ...]
    update_rates: Mapping[str, float] = field(default_factory=dict)
    #: Cost terms charged per migrated byte when scoring a rebalancing
    #: action: the smaller it is, the more epochs a move is assumed to
    #: amortize over (0 = migrations are free, plan eagerly).
    migration_weight: float = 0.01

    @classmethod
    def from_queries(
        cls,
        queries: Sequence[Query],
        cache: Optional[QueryCache] = None,
        update_rates: Optional[Mapping[str, float]] = None,
        migration_weight: float = 0.01,
    ) -> "Workload":
        """Build a workload from query texts/QLists, folding duplicates.

        A text appearing k times becomes one compiled entry of weight k
        (queries compiling to identical QLists fold too -- the planner
        would dedupe them onto one broadcast slice, so they cost like
        one query asked k times).
        """
        if not queries:
            raise ValueError("a workload needs at least one query")
        cache = cache if cache is not None else QueryCache()
        weights: Counter = Counter()
        compiled: dict[tuple, QList] = {}
        for query in queries:
            qlist = cache.qlist(query)
            key = qlist.entries
            compiled.setdefault(key, qlist)
            weights[key] += 1
        return cls(
            queries=tuple((compiled[key], float(count)) for key, count in weights.items()),
            update_rates=dict(update_rates or {}),
            migration_weight=migration_weight,
        )

    def query_mix(self) -> tuple[tuple[int, float], ...]:
        """``(|QList|, weight)`` pairs, the estimator's input."""
        return tuple((len(qlist), weight) for qlist, weight in self.queries)

    def weighted_entries(self) -> float:
        """The weighted book size Σ w·|q| (Section 5's ``N``)."""
        return sum(len(qlist) * weight for qlist, weight in self.queries)

    def query_texts(self) -> list[str]:
        """The unique query sources, for reports."""
        return [qlist.source or "?" for qlist, _ in self.queries]

    def __len__(self) -> int:
        return len(self.queries)


def profile_update_stream(
    cluster: Cluster,
    rounds: int = 8,
    ops_per_round: int = 4,
    seed: int = 0,
    hot_fragments: int = 1,
    hot_weight: float = 0.8,
    structural_every: int = 0,
) -> dict[str, float]:
    """Per-fragment update rates, profiled by dry-running a stream.

    Replays :func:`~repro.workloads.updates.update_stream` with the
    given knobs against a **scratch copy** of the cluster (the
    generator draws targets from live state, so the stream must really
    apply -- but never to the caller's data) and counts how often each
    fragment is targeted.  Returns ``fragment id -> updates per
    round``, restricted to fragments that exist in the real cluster
    (fragments the scratch stream split off mid-profile have no stable
    identity to plan against).
    """
    from repro.workloads.updates import update_stream  # local: workloads builds on stream

    if rounds < 1:
        raise ValueError("profiling needs at least one round")
    scratch = Cluster(cluster.fragmented_tree.deep_copy(), cluster.placement.copy())
    counts: Counter = Counter()
    for batch in update_stream(
        scratch,
        rounds=rounds,
        ops_per_round=ops_per_round,
        seed=seed,
        hot_fragments=hot_fragments,
        hot_weight=hot_weight,
        structural_every=structural_every,
    ):
        for op in batch:
            counts[op.fragment_id] += 1
        apply_updates(scratch, batch)
    live = cluster.fragmented_tree.fragments
    return {
        fragment_id: count / rounds
        for fragment_id, count in counts.items()
        if fragment_id in live
    }


__all__ = ["Workload", "profile_update_stream"]
