"""Workload-aware placement: choosing *where the data goes*.

Every layer below this one treats the fragmentation and the placement
``h`` as given; the paper's cost bounds (Fig. 4, executable in
:mod:`repro.core.estimates`) say how much a given choice costs, and
``bench_fig13_frags_per_site.py`` measures the effect -- but nothing
chose a *good* decomposition.  This package closes that loop.  It is
the first layer that **writes** the cluster topology instead of
reading it:

* :mod:`~repro.placement.workload` -- the optimization target: a
  weighted query mix plus per-fragment update rates
  (:class:`Workload`, :func:`profile_update_stream`);
* :mod:`~repro.placement.optimizer` -- greedy + local search over
  **move / split / merge** actions in catalog-metadata space,
  minimizing :func:`~repro.core.estimates.estimate_workload` under
  capacity / balance / site-count constraints
  (:func:`optimize_placement` -> :class:`RebalancePlan`), with
  :func:`balanced_random_placement` as the workload-blind baseline;
* :mod:`~repro.placement.rebalancer` -- enactment: the plan becomes a
  batch of typed update ops (``SplitFragment`` / ``MergeFragment`` /
  ``MoveFragment``) applied through a live
  :class:`~repro.stream.maintainer.StreamMaintainer` -- standing
  answers stay bitwise intact while data migrates, and the migrated
  bytes are metered as ``MSG_MIGRATE`` traffic
  (:func:`enact_plan` -> :class:`RebalanceOutcome`).

The convenient front door is
:meth:`repro.core.session.QuerySession.rebalance`; the ``placement``
benchmark experiment checks the headline claim end to end: the
optimizer's placement beats balanced-random on *measured* cost, the
predicted ranking of candidate placements matches the measured one,
and a live rebalance under an active ``watch()`` never moves an
answer.
"""

from repro.placement.optimizer import (
    Constraints,
    MergeAction,
    MoveAction,
    RebalanceAction,
    RebalancePlan,
    SplitAction,
    balanced_random_placement,
    optimize_placement,
)
from repro.placement.rebalancer import RebalanceOutcome, enact_plan
from repro.placement.workload import Workload, profile_update_stream

__all__ = [
    "Workload",
    "profile_update_stream",
    "Constraints",
    "MoveAction",
    "SplitAction",
    "MergeAction",
    "RebalanceAction",
    "RebalancePlan",
    "optimize_placement",
    "balanced_random_placement",
    "RebalanceOutcome",
    "enact_plan",
]
