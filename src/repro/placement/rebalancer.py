"""Enacting a :class:`~repro.placement.optimizer.RebalancePlan`.

Two enactment paths, one op vocabulary:

* **live** -- hand the plan's ops to a running
  :class:`~repro.stream.maintainer.StreamMaintainer` (the handle
  :meth:`~repro.core.session.QuerySession.watch` returns).  The
  maintainer applies the split/merge/move batch, refreshes exactly the
  fragments whose triplets a split or merge touched, meters migrated
  fragment data as ``MSG_MIGRATE`` traffic -- and every standing
  answer stays bitwise what it was, because moves change placement,
  never content, and split/merge refreshes go through the same
  delta-shipping path as any other structural update;
* **offline** -- no standing queries: apply the ops straight to the
  cluster with :func:`~repro.stream.updates.apply_updates`.

Either way the caller gets a :class:`RebalanceOutcome` tying the plan
to what actually happened (migrations shipped, maintenance round
ledger when live).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.distsim.cluster import Cluster
from repro.placement.optimizer import RebalancePlan
from repro.stream.maintainer import MaintenanceRound, StreamMaintainer
from repro.stream.updates import AppliedBatch, Migration, apply_updates


@dataclass(frozen=True)
class RebalanceOutcome:
    """One enacted plan: what was decided and what it really shipped."""

    plan: RebalancePlan
    #: The maintenance round (live enactment through a maintainer).
    round: Optional[MaintenanceRound] = None
    #: The applied batch (offline enactment straight onto the cluster).
    batch: Optional[AppliedBatch] = None

    @property
    def migrations(self) -> tuple[Migration, ...]:
        """The cross-site fragment shipments the enactment performed."""
        if self.round is not None:
            return self.round.migrations
        if self.batch is not None:
            return self.batch.migrations
        return ()

    @property
    def migration_bytes(self) -> int:
        """Fragment-data bytes that really crossed the network."""
        if self.round is not None:
            return self.round.migration_bytes
        if self.batch is not None:
            return self.batch.migration_bytes
        return 0

    @property
    def live(self) -> bool:
        """Was the plan enacted under standing queries?"""
        return self.round is not None


def enact_plan(
    plan: RebalancePlan,
    cluster: Optional[Cluster] = None,
    maintainer: Optional[StreamMaintainer] = None,
) -> RebalanceOutcome:
    """Apply a plan's actions, live or offline.

    Pass exactly one of ``maintainer`` (live: standing query books are
    maintained through the migration) or ``cluster`` (offline).  A
    no-op plan applies nothing and returns an empty outcome.
    """
    if (maintainer is None) == (cluster is None):
        raise ValueError("pass exactly one of cluster= or maintainer=")
    if plan.is_noop():
        return RebalanceOutcome(plan=plan)
    if maintainer is not None:
        return RebalanceOutcome(plan=plan, round=maintainer.apply(plan.to_ops()))
    assert cluster is not None
    return RebalanceOutcome(plan=plan, batch=apply_updates(cluster, plan.to_ops()))


__all__ = ["RebalanceOutcome", "enact_plan"]
