"""Machine-checkable versions of each figure's qualitative claims.

Absolute runtimes cannot match a 2006 testbed; what must reproduce is
the *shape* of every figure -- who wins, what is monotone, where
behaviour changes.  Each function takes the corresponding
:class:`~repro.bench.reporting.ExperimentResult` and returns a mapping
``claim -> bool``; EXPERIMENTS.md tabulates them, and the benchmark
suite asserts them.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult


def _mostly_decreasing(values, tolerance=1.35) -> bool:
    """Downward trend: adjacent noise tolerated, endpoint clearly lower."""
    return (
        all(b <= a * tolerance for a, b in zip(values, values[1:]))
        and values[-1] < values[0] * 0.75
    )


def _mostly_increasing(values, tolerance=0.87) -> bool:
    return all(b >= a * tolerance for a, b in zip(values, values[1:])) and values[-1] > values[0]


def _roughly_flat(values, band=0.5) -> bool:
    low, high = min(values), max(values)
    return high <= low * (1 + band)


def check_fig7(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 7: ParBoX beats NaiveCentralized; parallelism helps; gains flatten."""
    parbox = result.column("parbox_s")
    central = result.column("central_s")
    half = len(parbox) // 2
    return {
        "parbox_below_central_beyond_1_machine": all(
            p < c for p, c in zip(parbox[1:], central[1:])
        ),
        "single_machine_comparable": 0.4 <= parbox[0] / central[0] <= 2.5,
        "parbox_decreases_with_parallelism": _mostly_decreasing(parbox),
        "parbox_gains_flatten_late": (
            (parbox[0] - parbox[half]) > (parbox[half] - parbox[-1])
        ),
        "central_never_improves_with_machines": central[-1] >= central[0] * 0.9,
    }


def check_fig8(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 8: runtime ordered by |QList|; parallel gains at every size."""
    columns = [c for c in result.columns if c.startswith("qlist_")]
    ordered_sizes = sorted(columns, key=lambda c: int(c.split("_")[1]))
    by_size = {c: result.column(c) for c in columns}
    ordering = all(
        all(a <= b * 1.25 for a, b in zip(by_size[small], by_size[big]))
        for small, big in zip(ordered_sizes, ordered_sizes[1:])
    )
    last = by_size[ordered_sizes[-1]]
    first = by_size[ordered_sizes[0]]
    return {
        "runtime_ordered_by_query_size": ordering,
        "largest_query_costs_more_than_smallest": last[0] > first[0],
        "parallel_gains_at_every_size": all(
            _mostly_decreasing(by_size[c]) for c in ordered_sizes
        ),
    }


def check_fig9(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 9: the three lines coincide; Lazy touches only 2 fragments."""
    parbox = result.column("parbox_s")
    fulldist = result.column("fdparbox_s")
    lazy = result.column("lzparbox_s")
    # Band note: at the reduced data scale the fixed per-hop latency of
    # FullDist's stage 3 is amplified relative to site compute, so
    # "coincide" is checked within a 3.5x band (see EXPERIMENTS.md).
    return {
        "three_lines_close": all(
            max(p, f, l) <= 3.5 * min(p, f, l)
            for p, f, l in zip(parbox[1:], fulldist[1:], lazy[1:])
        ),
        "lazy_evaluates_at_most_2_fragments": all(
            n <= 2 for n in result.column("lazy_fragments")
        ),
        "lazy_total_computation_lower": all(
            lo <= po for lo, po in zip(result.column("lazy_ops")[2:], result.column("parbox_ops")[2:])
        ),
    }


def check_fig10(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 10: Lazy degrades with depth; ParBoX ~ FullDist."""
    parbox = result.column("parbox_s")
    fulldist = result.column("fdparbox_s")
    lazy = result.column("lzparbox_s")
    return {
        "parbox_and_fulldist_close": all(
            max(p, f) <= 3.5 * min(p, f) for p, f in zip(parbox[1:], fulldist[1:])
        ),
        "lazy_slower_than_parbox_at_depth": all(
            l > p for l, p in zip(lazy[3:], parbox[3:])
        ),
        "lazy_evaluates_everything": all(
            n == machines
            for machines, n in zip(result.xs(), result.column("lazy_fragments"))
        ),
    }


def check_fig11(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 11: Lazy converges to a few x ParBoX; saves ~half the work."""
    parbox = result.column("parbox_s")
    lazy = result.column("lzparbox_s")
    lazy_ops = result.column("lazy_ops")
    parbox_ops = result.column("parbox_ops")
    tail = slice(max(0, len(parbox) - 3), None)
    ratios = [l / p for l, p in zip(lazy[tail], parbox[tail])]
    op_fractions = [lo / po for lo, po in zip(lazy_ops[tail], parbox_ops[tail])]
    return {
        "lazy_converges_to_small_multiple_of_parbox": all(1.0 <= r <= 6.0 for r in ratios),
        "lazy_saves_total_computation": all(f <= 0.85 for f in op_fractions),
    }


def check_fig12(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 12: runtime linear in data size, ordered by query size."""
    nodes = result.column("tree_nodes")
    claims = {}
    for column in result.columns:
        if not column.startswith("qlist_"):
            continue
        values = result.column(column)
        # Linearity: runtime per node stays within a band.
        per_node = [v / n for v, n in zip(values, nodes)]
        claims[f"{column}_linear_in_data"] = max(per_node) <= 2.0 * min(per_node)
        claims[f"{column}_grows_with_data"] = values[-1] > values[0]
    return claims


def check_fig13(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 13: flat runtime, single visit, constant work."""
    return {
        "runtime_flat_in_fragment_count": _roughly_flat(result.column("parbox_s"), band=0.6),
        "always_one_visit": all(v == 1 for v in result.column("visits")),
        "constant_total_nodes": _roughly_flat(
            [float(n) for n in result.column("nodes")], band=0.25
        ),
    }


def check_fig4(result: ExperimentResult) -> dict[str, bool]:
    """Fig. 4 (measured): the visit/communication patterns of the table."""
    rows = {x: values for x, values in result.rows}
    parbox = rows["ParBoX"]
    central = rows["NaiveCentralized"]
    naive_dist = rows["NaiveDistributed"]
    lazy = rows["LazyParBoX"]
    fulldist = rows["FullDistParBoX"]
    return {
        "parbox_one_visit_per_site": parbox["max_visits_per_site"] == 1,
        "naive_distributed_visits_per_fragment": naive_dist["max_visits_per_site"] == 2,
        "parbox_traffic_below_central": parbox["bytes_total"] < central["bytes_total"],
        "fulldist_traffic_at_most_parbox": fulldist["bytes_total"]
        <= parbox["bytes_total"] * 1.6,
        "lazy_computation_at_most_parbox": lazy["qlist_ops"] <= parbox["qlist_ops"],
        "total_computation_comparable_to_central": (
            parbox["qlist_ops"] <= central["qlist_ops"] * 1.05
        ),
    }


def check_sec4_hybrid(result: ExperimentResult) -> dict[str, bool]:
    """Hybrid tracks the cheaper strategy around the tipping point."""
    rows = list(result.rows)
    strategies = result.column("hybrid_strategy")
    hybrid_never_far_off = all(
        values["hybrid_bytes"]
        <= 1.25 * min(values["parbox_bytes"], values["central_bytes"]) + 2048
        for _, values in rows
    )
    return {
        "parbox_wins_at_coarse_fragmentation": rows[0][1]["parbox_bytes"]
        < rows[0][1]["central_bytes"],
        "central_wins_at_pathological_fragmentation": rows[-1][1]["central_bytes"]
        < rows[-1][1]["parbox_bytes"],
        "hybrid_switches_strategy": len(set(strategies)) == 2,
        "hybrid_tracks_minimum": hybrid_never_far_off,
    }


def check_sec5_incremental(result: ExperimentResult) -> dict[str, bool]:
    """Maintenance localized and size-independent; re-evaluation is not."""
    maint_bytes = result.column("maint_bytes")
    maint_nodes = result.column("maint_nodes")
    scratch_nodes = result.column("scratch_nodes")
    return {
        "maintenance_traffic_independent_of_data": max(maint_bytes)
        <= min(maint_bytes) * 1.5 + 64,
        "maintenance_visits_one_site": all(s == 1 for s in result.column("maint_sites")),
        "reevaluation_visits_all_sites": all(s > 1 for s in result.column("scratch_sites")),
        "reevaluation_cost_grows": scratch_nodes[-1] > 2 * scratch_nodes[0],
        "maintenance_localized_to_fragment": all(
            m < s / 2 for m, s in zip(maint_nodes, scratch_nodes)
        ),
    }


def check_ablation_algebra(result: ExperimentResult) -> dict[str, bool]:
    """Canonicalization keeps traffic bounded; the literal algebra doesn't."""
    canonical = result.column("canonical_bytes")
    paper = result.column("paper_bytes")
    return {
        "canonical_traffic_at_most_paper": all(c <= p for c, p in zip(canonical, paper)),
        "canonical_flat_in_virtual_depth": max(canonical) <= 1.5 * min(canonical),
        "paper_traffic_blows_up_with_depth": paper[-1] > 5 * paper[0],
    }


def check_executors(result: ExperimentResult) -> dict[str, bool]:
    """All strategies agree on the answer; ledgers stay consistent."""
    answers = result.column("answer")
    walls = result.column("wall_s")
    busies = result.column("busy_s")
    rows = {x: values for x, values in result.rows}
    return {
        "all_executors_same_answer": len(set(answers)) == 1,
        "wall_and_busy_positive": all(w > 0 for w in walls) and all(b > 0 for b in busies),
        # Serial runs on one thread: its wall time can never sit far
        # below its CPU-time busy total (the converse -- wall above
        # busy -- is legitimate scheduler preemption on a loaded host,
        # so it is deliberately not bounded here).
        "serial_wall_tracks_busy": (
            rows["serial"]["wall_s"] >= rows["serial"]["busy_s"] * 0.5 - 1e-4
        ),
        "critical_site_identified": all(
            values["critical_site"] for values in rows.values()
        ),
    }


def check_batching(result: ExperimentResult) -> dict[str, bool]:
    """Batching amortizes every per-query cost without moving answers.

    The headline claim: traffic per query falls *strictly* at every
    doubling of the batch size (one broadcast+reply per site per batch,
    plus in-batch deduplication of popular subscriptions).  All costs
    here are deterministic, so strict inequalities are safe.
    """
    bytes_per_query = result.column("bytes_per_query")
    visits = result.column("visits_per_query")
    messages = result.column("messages_per_query")
    entries = result.column("combined_entries")
    duplicates = result.column("duplicates_collapsed")
    answers = result.column("answers_true")
    return {
        "traffic_per_query_strictly_decreasing": all(
            b < a for a, b in zip(bytes_per_query, bytes_per_query[1:])
        ),
        "visits_per_query_strictly_decreasing": all(
            b < a for a, b in zip(visits, visits[1:])
        ),
        "messages_per_query_strictly_decreasing": all(
            b < a for a, b in zip(messages, messages[1:])
        ),
        "dedup_grows_with_batch_size": all(
            b >= a for a, b in zip(duplicates, duplicates[1:])
        )
        and duplicates[-1] > duplicates[0],
        "combined_entries_shrink_with_dedup": all(
            b <= a for a, b in zip(entries, entries[1:])
        )
        and entries[-1] < entries[0],
        "answers_independent_of_batch_size": len(set(answers)) == 1,
    }


def check_stream(result: ExperimentResult) -> dict[str, bool]:
    """Section 5 at batch scale: maintenance cost is local and flat.

    Per-update traffic must not grow with the document (the update
    batch is fixed while |T| sweeps ~5x), must scale with the number of
    dirty fragments (each dirty fragment ships its own changed slice),
    and only dirty fragments' sites may be contacted.  The compute side
    *does* grow with |T| (the dirty fragment itself grows) -- that
    contrast is the point, so it is asserted too.  All costs here are
    deterministic; the incremental answers must match from-scratch
    evaluation bitwise at every sweep point.
    """
    bytes_1 = result.column("bytes_1frag")
    bytes_2 = result.column("bytes_2frag")
    bytes_4 = result.column("bytes_4frag")
    dirty_sites = result.column("dirty_sites_4frag")
    total_sites = result.column("total_sites")
    nodes = result.column("nodes_recomputed_1frag")
    return {
        "traffic_flat_in_document_size": _roughly_flat(bytes_1, band=0.5)
        and _roughly_flat(bytes_4, band=0.5),
        "traffic_proportional_to_dirty_fragments": all(
            1.6 * one <= two <= 2.4 * one and 3.2 * one <= four <= 4.8 * one
            for one, two, four in zip(bytes_1, bytes_2, bytes_4)
        ),
        "only_dirty_sites_visited": all(
            dirty == 4 and dirty < total
            for dirty, total in zip(dirty_sites, total_sites)
        ),
        # At quick scale the generator's minimum document clamps the
        # sweep's low end, so only endpoint growth is asserted.
        "recomputation_grows_with_fragment_size": nodes[-1] > nodes[0],
        "incremental_matches_scratch": all(result.column("agree")),
    }


def check_placement(result: ExperimentResult) -> dict[str, bool]:
    """The optimizer earns its keep, and its predictions rank truthfully.

    All costs here are deterministic, so strict inequalities are safe:
    the workload-aware placement must beat every balanced-random
    baseline on *measured* total traffic (and on the predicted
    objective it optimized), the predicted cost must order candidates
    the way measured cost does wherever the prediction separates them
    (>2% apart), live rebalancing under a standing ``watch()`` must
    leave every answer bitwise intact, and the chosen placement must
    respect the capacity constraint while actually shipping (metered)
    migration traffic to get there.
    """
    rows = {x: values for x, values in result.rows}
    optimized = rows["optimized"]
    randoms = [rows["random-1"], rows["random-2"]]
    by_candidate = [(values["predicted_terms"], values["measured_bytes"]) for values in rows.values()]
    ranks_consistent = all(
        # A measured tie is not an inversion: only a strictly *opposed*
        # ordering refutes the prediction.
        (measured_a <= measured_b) == (predicted_a < predicted_b)
        or measured_a == measured_b
        for i, (predicted_a, measured_a) in enumerate(by_candidate)
        for predicted_b, measured_b in by_candidate[i + 1 :]
        if abs(predicted_a - predicted_b) > 0.02 * max(predicted_a, predicted_b)
    )
    return {
        "optimizer_beats_balanced_random_measured": all(
            optimized["measured_bytes"] < r["measured_bytes"] for r in randoms
        ),
        "optimizer_beats_balanced_random_predicted": all(
            optimized["predicted_terms"] < r["predicted_terms"] for r in randoms
        ),
        "predicted_ranks_match_measured": ranks_consistent,
        "rebalance_preserves_answers_bitwise": all(
            values["agree"] for values in rows.values()
        ),
        "optimized_respects_capacity": optimized["capacity_ok"],
        "migration_traffic_metered": optimized["migration_bytes"] > 0
        and all(r["migration_bytes"] == 0 for r in randoms),
    }


#: experiment id -> shape checker.
CHECKS = {
    "fig4": check_fig4,
    "fig7": check_fig7,
    "fig8": check_fig8,
    "fig9": check_fig9,
    "fig10": check_fig10,
    "fig11": check_fig11,
    "fig12": check_fig12,
    "fig13": check_fig13,
    "sec4-hybrid": check_sec4_hybrid,
    "sec5-incremental": check_sec5_incremental,
    "ablation-algebra": check_ablation_algebra,
    "executors": check_executors,
    "batching": check_batching,
    "stream": check_stream,
    "placement": check_placement,
}

__all__ = ["CHECKS"] + [name for name in dir() if name.startswith("check_")]
