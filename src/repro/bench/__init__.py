"""Experiment harness: regenerate every figure of the paper's Section 6.

* :mod:`repro.bench.reporting` -- result containers and text rendering;
* :mod:`repro.bench.experiments` -- one function per paper artifact
  (``fig7`` ... ``fig13``, the Fig. 4 validation table, and the added
  Section 4/5 experiments);
* :mod:`repro.bench.shape_checks` -- machine-checkable versions of the
  qualitative claims each figure makes (who wins, monotonicity,
  crossovers), used by EXPERIMENTS.md and the benchmark suite.

Run everything from the command line::

    python -m repro.bench            # full scale (a few minutes)
    python -m repro.bench --quick    # reduced scale (tens of seconds)
"""

from repro.bench.reporting import ExperimentResult, render_results
from repro.bench.experiments import (
    BenchConfig,
    fig4_validation,
    fig7_parbox_vs_central,
    fig8_query_size,
    fig9_qf0,
    fig10_qfn,
    fig11_qfmid,
    fig12_data_scale,
    fig13_frags_per_site,
    sec4_hybrid_crossover,
    sec5_incremental,
    ablation_algebra,
    ALL_EXPERIMENTS,
)

__all__ = [
    "BenchConfig",
    "ExperimentResult",
    "render_results",
    "fig4_validation",
    "fig7_parbox_vs_central",
    "fig8_query_size",
    "fig9_qf0",
    "fig10_qfn",
    "fig11_qfmid",
    "fig12_data_scale",
    "fig13_frags_per_site",
    "sec4_hybrid_crossover",
    "sec5_incremental",
    "ablation_algebra",
    "ALL_EXPERIMENTS",
]
