"""Command-line experiment runner.

Regenerates every figure/table of the paper and evaluates the shape
checks::

    python -m repro.bench             # default scale
    python -m repro.bench --quick     # miniature scale
    python -m repro.bench fig7 fig11  # a subset
    python -m repro.bench --json out.json   # machine-readable results
    python -m repro.bench --profile stream  # cProfile any experiment

``--json`` writes every regenerated experiment (rows + shape-check
verdicts) to one JSON document -- the file CI uploads as a workflow
artifact so benchmark trajectories persist across PRs.  ``--profile``
wraps each selected experiment in ``cProfile`` and prints the top 20
functions by cumulative time, so a perf PR can locate the next hot
spot without ad-hoc scripts (timings printed under a profiler are
inflated and not comparable across runs); the same top-20 rows are
also written as a stable JSON artifact (``--profile-json``, default
``bench-profile.json``) so profiles persist next to the benchmark
document.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS, BenchConfig
from repro.bench.shape_checks import CHECKS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="miniature scale")
    parser.add_argument("--no-checks", action="store_true", help="skip shape checks")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write results (and check verdicts) as JSON",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each experiment under cProfile; print the top 20 by cumulative time",
    )
    parser.add_argument(
        "--profile-json",
        metavar="PATH",
        default=None,
        help="with --profile: write the top-20 rows per experiment as JSON "
        "(default: bench-profile.json)",
    )
    args = parser.parse_args(argv)

    config = BenchConfig.quick() if args.quick else BenchConfig.default()
    wanted = set(args.experiments) if args.experiments else None
    failures = 0
    report: dict = {
        "scale": "quick" if args.quick else "default",
        "experiments": [],
    }
    if args.profile:
        # Timings recorded under the profiler are inflated severalfold;
        # mark the document so it is never compared against honest runs.
        report["profiled"] = True
    profile_doc: dict = {"scale": report["scale"], "experiments": {}}
    for experiment_id, runner in ALL_EXPERIMENTS:
        if wanted is not None and experiment_id not in wanted:
            continue
        started = time.perf_counter()
        if args.profile:
            import cProfile
            import pstats

            with cProfile.Profile() as profiler:
                result = runner(config)
            print(f"=== cProfile: {experiment_id} (top 20 by cumulative) ===")
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(20)
            profile_doc["experiments"][experiment_id] = _top_rows(stats, 20)
        else:
            result = runner(config)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"(regenerated in {elapsed:.1f}s)")
        entry = result.to_obj()
        entry["elapsed_seconds"] = round(elapsed, 3)
        if not args.no_checks and experiment_id in CHECKS:
            checks = CHECKS[experiment_id](result)
            entry["checks"] = checks
            for claim, passed in checks.items():
                marker = "PASS" if passed else "FAIL"
                print(f"  [{marker}] {claim}")
                failures += 0 if passed else 1
        report["experiments"].append(entry)
        print()
    if args.json is not None:
        Path(args.json).write_text(json.dumps(report, indent=2, default=str))
        print(f"wrote {args.json}")
    if args.profile:
        profile_path = args.profile_json or "bench-profile.json"
        Path(profile_path).write_text(json.dumps(profile_doc, indent=2))
        print(f"wrote {profile_path}")
    return 1 if failures else 0


def _top_rows(stats, limit: int) -> list[dict]:
    """The ``limit`` hottest functions by cumulative time, JSON-stable."""
    rows = []
    for (filename, line, function), (primitive, ncalls, tottime, cumtime, _) in (
        stats.stats.items()
    ):
        rows.append(
            {
                "file": Path(filename).name,
                "line": line,
                "function": function,
                "ncalls": ncalls,
                "primitive_calls": primitive,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda row: (-row["cumtime"], row["file"], row["line"]))
    return rows[:limit]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
