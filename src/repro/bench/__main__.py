"""Command-line experiment runner.

Regenerates every figure/table of the paper and evaluates the shape
checks::

    python -m repro.bench             # default scale
    python -m repro.bench --quick     # miniature scale
    python -m repro.bench fig7 fig11  # a subset
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, BenchConfig
from repro.bench.shape_checks import CHECKS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="miniature scale")
    parser.add_argument("--no-checks", action="store_true", help="skip shape checks")
    args = parser.parse_args(argv)

    config = BenchConfig.quick() if args.quick else BenchConfig.default()
    wanted = set(args.experiments) if args.experiments else None
    failures = 0
    for experiment_id, runner in ALL_EXPERIMENTS:
        if wanted is not None and experiment_id not in wanted:
            continue
        started = time.perf_counter()
        result = runner(config)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"(regenerated in {elapsed:.1f}s)")
        if not args.no_checks and experiment_id in CHECKS:
            checks = CHECKS[experiment_id](result)
            for claim, passed in checks.items():
                marker = "PASS" if passed else "FAIL"
                print(f"  [{marker}] {claim}")
                failures += 0 if passed else 1
        print()
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
