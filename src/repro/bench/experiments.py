"""The experiments of Section 6, one function per paper artifact.

Every function takes a :class:`BenchConfig` controlling scale.  The
``default()`` configuration reproduces the paper's sweeps at a reduced
data scale (documents are sized in scaled MB -- see
:mod:`repro.workloads.xmark`); ``quick()`` shrinks them further for the
test suite.  The network model's bandwidth is calibrated so that the
compute/communication balance of the 2006 testbed is preserved at the
reduced data scale (see EXPERIMENTS.md "Calibration").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.bench.reporting import ExperimentResult
from repro.boolexpr.compose import PaperAlgebra
from repro.core import (
    FullDistParBoXEngine,
    HybridParBoXEngine,
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    ParBoXEngine,
)
from repro.distsim import Cluster, NetworkModel
from repro.distsim.network import KERNEL_SPEEDUP
from repro.fragments import fragment_balanced, fragment_per_node
from repro.views import MaterializedView
from repro.workloads.queries import QUERY_SIZES, query_of_size, seal_query
from repro.workloads.topologies import bushy_ft3, chain_ft2, co_located, star_ft1
from repro.workloads.xmark import generate_xmark_site
from repro.xmltree import XMLNode


@dataclass(frozen=True)
class BenchConfig:
    """Scale knobs shared by all experiments."""

    #: Nodes per scaled MB (the document scale).
    nodes_per_mb: int = 160
    #: The "50 MB" constant of Experiments 1, 2 and 4.
    total_mb: float = 50.0
    #: Iterations of the fragment-count sweeps (paper: 10).
    iterations: int = 10
    #: Network: bandwidth reduced in proportion to the document scale so
    #: shipping costs keep their 2006 weight relative to computation,
    #: then scaled by the bitset kernel's measured compute speedup
    #: (``KERNEL_SPEEDUP``, the same single constant the distsim
    #: defaults use) so the compute/communication balance of the 2006
    #: testbed is preserved; the deterministic ledgers (visits / ops /
    #: bytes) are unaffected by either scaling.
    network: NetworkModel = NetworkModel(
        latency_seconds=0.0005 / KERNEL_SPEEDUP,
        bandwidth_bytes_per_second=4_000_000 * KERNEL_SPEEDUP,
    )
    #: Runs per data point; the best run is reported ("averaged over
    #: multiple runs" in the paper; min is the standard noise filter).
    repeats: int = 3
    seed: int = 2006

    @classmethod
    def default(cls) -> "BenchConfig":
        """The EXPERIMENTS.md scale."""
        return cls()

    @classmethod
    def quick(cls) -> "BenchConfig":
        """A miniature scale for CI and the test suite."""
        return cls(nodes_per_mb=24, total_mb=10.0, iterations=4)

    def with_network(self, cluster: Cluster) -> Cluster:
        """Swap the cluster's network model for the configured one."""
        cluster.network = self.network
        return cluster

    def timed(self, engine, qlist, key=None):
        """Evaluate ``repeats`` times; return the best result.

        "Best" defaults to smallest simulated elapsed time (the
        standard noise filter); pass ``key`` to minimize another
        measure, e.g. ``lambda r: r.wall_seconds`` for the executor
        comparison.
        """
        key = key or (lambda result: result.elapsed_seconds)
        best = None
        for _ in range(max(1, self.repeats)):
            candidate = engine.evaluate(qlist)
            if best is None or key(candidate) < key(best):
                best = candidate
        return best


# ---------------------------------------------------------------------------
# Experiment 1 -- Figures 7 and 8 (FT1 star, constant data, 1..N sites)
# ---------------------------------------------------------------------------


def fig7_parbox_vs_central(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 7: ParBoX vs NaiveCentralized, |QList| = 8."""
    config = config or BenchConfig.default()
    qlist = query_of_size(8)
    result = ExperimentResult(
        "fig7",
        "ParBoX vs NaiveCentralized (FT1, constant data, |QList|=8)",
        "machines",
        ["parbox_s", "central_s", "central_shipped_bytes", "parbox_bytes"],
    )
    for iteration in range(1, config.iterations + 1):
        cluster = config.with_network(
            star_ft1(iteration, config.total_mb, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )
        parbox = config.timed(ParBoXEngine(cluster), qlist)
        central = config.timed(NaiveCentralizedEngine(cluster), qlist)
        result.add_row(
            iteration,
            parbox_s=parbox.elapsed_seconds,
            central_s=central.elapsed_seconds,
            central_shipped_bytes=central.details["shipped_bytes"],
            parbox_bytes=parbox.metrics.bytes_total,
        )
    return result


def fig8_query_size(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 8: ParBoX runtime for |QList| in {2, 8, 15, 23}."""
    config = config or BenchConfig.default()
    result = ExperimentResult(
        "fig8",
        "ParBoX scalability in query size (FT1, constant data)",
        "machines",
        [f"qlist_{size}_s" for size in QUERY_SIZES],
    )
    for iteration in range(1, config.iterations + 1):
        cluster = config.with_network(
            star_ft1(iteration, config.total_mb, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )
        values = {}
        for size in QUERY_SIZES:
            run = config.timed(ParBoXEngine(cluster), query_of_size(size))
            values[f"qlist_{size}_s"] = run.elapsed_seconds
        result.add_row(iteration, **values)
    return result


# ---------------------------------------------------------------------------
# Experiment 2 -- Figures 9, 10, 11 (FT2 chain, targeted queries)
# ---------------------------------------------------------------------------


def _exp2(config: BenchConfig, target_of: Callable[[int], str], result: ExperimentResult):
    for iteration in range(1, config.iterations + 1):
        cluster = config.with_network(
            chain_ft2(iteration, config.total_mb, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )
        qlist = seal_query(target_of(iteration))
        parbox = config.timed(ParBoXEngine(cluster), qlist)
        fulldist = config.timed(FullDistParBoXEngine(cluster), qlist)
        lazy = config.timed(LazyParBoXEngine(cluster), qlist)
        result.add_row(
            iteration,
            parbox_s=parbox.elapsed_seconds,
            fdparbox_s=fulldist.elapsed_seconds,
            lzparbox_s=lazy.elapsed_seconds,
            lazy_fragments=lazy.details["fragments_evaluated"],
            lazy_ops=lazy.metrics.qlist_ops,
            parbox_ops=parbox.metrics.qlist_ops,
        )
    return result


def fig9_qf0(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 9: query satisfied at the root fragment F0."""
    config = config or BenchConfig.default()
    result = ExperimentResult(
        "fig9",
        "qF0 on FT2 chain: ParBoX vs FullDist vs Lazy",
        "machines",
        ["parbox_s", "fdparbox_s", "lzparbox_s", "lazy_fragments", "lazy_ops", "parbox_ops"],
    )
    return _exp2(config, lambda n: "F0", result)


def fig10_qfn(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 10: query satisfied at the deepest fragment Fn."""
    config = config or BenchConfig.default()
    result = ExperimentResult(
        "fig10",
        "qFn on FT2 chain: ParBoX vs FullDist vs Lazy",
        "machines",
        ["parbox_s", "fdparbox_s", "lzparbox_s", "lazy_fragments", "lazy_ops", "parbox_ops"],
    )
    return _exp2(config, lambda n: f"F{n - 1}", result)


def fig11_qfmid(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 11: query satisfied mid-chain (F ceil(n/2))."""
    config = config or BenchConfig.default()
    result = ExperimentResult(
        "fig11",
        "qF(n/2) on FT2 chain: ParBoX vs FullDist vs Lazy",
        "machines",
        ["parbox_s", "fdparbox_s", "lzparbox_s", "lazy_fragments", "lazy_ops", "parbox_ops"],
    )
    return _exp2(config, lambda n: f"F{(n + 1) // 2 if n > 1 else 0}", result)


# ---------------------------------------------------------------------------
# Experiment 3 -- Figure 12 (FT3 bushy, growing data)
# ---------------------------------------------------------------------------


def fig12_data_scale(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 12: ParBoX runtime vs total data size, 4 query sizes."""
    config = config or BenchConfig.default()
    result = ExperimentResult(
        "fig12",
        "ParBoX scalability in data size (FT3)",
        "total_scaled_mb",
        ["tree_nodes"] + [f"qlist_{size}_s" for size in QUERY_SIZES],
    )
    steps = min(config.iterations, 10)
    for iteration in range(steps):
        ft3_iteration = round(iteration * 9 / max(steps - 1, 1))
        cluster = config.with_network(
            bushy_ft3(ft3_iteration, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )
        values: dict = {"tree_nodes": cluster.total_size()}
        for size in QUERY_SIZES:
            run = config.timed(ParBoXEngine(cluster), query_of_size(size))
            values[f"qlist_{size}_s"] = run.elapsed_seconds
        result.add_row(round(45 + 115 * ft3_iteration / 9.0, 1), **values)
    return result


# ---------------------------------------------------------------------------
# Experiment 4 -- Figure 13 (fragments per site)
# ---------------------------------------------------------------------------


def fig13_frags_per_site(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 13: one site, constant data, 1..N co-located fragments."""
    config = config or BenchConfig.default()
    qlist = query_of_size(8)
    result = ExperimentResult(
        "fig13",
        "ParBoX with varying fragments per site (constant cumulative data)",
        "fragments",
        ["parbox_s", "visits", "nodes"],
    )
    for iteration in range(1, config.iterations + 1):
        cluster = config.with_network(
            co_located(iteration, config.total_mb, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )
        run = config.timed(ParBoXEngine(cluster), qlist)
        result.add_row(
            iteration,
            parbox_s=run.elapsed_seconds,
            visits=run.metrics.max_visits_per_site(),
            nodes=run.metrics.nodes_processed,
        )
    return result


# ---------------------------------------------------------------------------
# Figure 4 -- measured validation of the complexity summary table
# ---------------------------------------------------------------------------


def fig4_validation(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Fig. 4 (measured): visits / computation / communication per algorithm.

    Workload: the FT2 chain with two fragments co-located per site, so
    the per-fragment vs per-site visit distinction shows.
    """
    config = config or BenchConfig.default()
    cluster = config.with_network(
        chain_ft2(6, config.total_mb / 2, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
    )
    # Co-locate pairs: F1 with F2, F3 with F4 (S2 and S4 then hold 2 each).
    cluster.move_fragment("F2", cluster.site_of("F1"))
    cluster.move_fragment("F4", cluster.site_of("F3"))
    qlist = query_of_size(8)

    result = ExperimentResult(
        "fig4",
        "Measured algorithm summary (FT2 chain, 2 fragments/site on 2 sites)",
        "algorithm",
        ["max_visits_per_site", "qlist_ops", "bytes_total", "elapsed_s"],
    )
    engines = [
        NaiveCentralizedEngine(cluster),
        NaiveDistributedEngine(cluster),
        ParBoXEngine(cluster),
        HybridParBoXEngine(cluster),
        FullDistParBoXEngine(cluster),
        LazyParBoXEngine(cluster),
    ]
    for engine in engines:
        run = engine.evaluate(qlist)
        result.add_row(
            engine.name,
            max_visits_per_site=run.metrics.max_visits_per_site(),
            qlist_ops=run.metrics.qlist_ops,
            bytes_total=run.metrics.bytes_total,
            elapsed_s=run.elapsed_seconds,
        )
    return result


# ---------------------------------------------------------------------------
# Section 4 -- Hybrid ParBoX crossover (added experiment)
# ---------------------------------------------------------------------------


def sec4_hybrid_crossover(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Communication of ParBoX vs NaiveCentralized vs Hybrid as card(F) grows.

    Sweeps fragmentation granularity over one fixed document up to the
    pathological one-fragment-per-node decomposition; Hybrid must track
    the cheaper of the two around the |T|/|q| tipping point.
    """
    config = config or BenchConfig.default()
    tree = generate_xmark_site(
        config.total_mb / 10, seed=config.seed, nodes_per_mb=config.nodes_per_mb
    )
    qlist = query_of_size(8)
    size = tree.size()
    counts = sorted({2, 4, size // 16, size // 8, size // 4, size // 2, size} - {0, 1})
    result = ExperimentResult(
        "sec4-hybrid",
        f"Hybrid crossover (|T|={size}, |QList|=8, tipping at card(F)={size // 8})",
        "card_F",
        ["parbox_bytes", "central_bytes", "hybrid_bytes", "hybrid_strategy"],
    )
    for count in counts:
        if count == size:
            ftree = fragment_per_node(tree)
        else:
            ftree = fragment_balanced(tree, count)
        cluster = config.with_network(Cluster.one_site_per_fragment(ftree))
        parbox = ParBoXEngine(cluster).evaluate(qlist)
        central = NaiveCentralizedEngine(cluster).evaluate(qlist)
        hybrid = HybridParBoXEngine(cluster).evaluate(qlist)
        result.add_row(
            ftree.card(),
            parbox_bytes=parbox.metrics.bytes_total,
            central_bytes=central.metrics.bytes_total,
            hybrid_bytes=hybrid.metrics.bytes_total,
            hybrid_strategy=hybrid.details["strategy"],
        )
    return result


# ---------------------------------------------------------------------------
# Section 5 -- incremental maintenance bounds (added experiment)
# ---------------------------------------------------------------------------


def sec5_incremental(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Maintenance cost vs re-evaluation as the data grows.

    The paper claims maintenance traffic depends on neither |T| nor the
    update size; re-evaluation (ParBoX) computation grows linearly.
    """
    config = config or BenchConfig.default()
    qlist = query_of_size(8)
    result = ExperimentResult(
        "sec5-incremental",
        "Incremental maintenance vs ParBoX re-evaluation",
        "total_scaled_mb",
        [
            "maint_bytes",
            "maint_nodes",
            "scratch_nodes",
            "maint_sites",
            "scratch_sites",
        ],
    )
    steps = min(config.iterations, 5)
    for step in range(steps):
        scale = config.total_mb * (1 + step) / steps
        cluster = config.with_network(
            star_ft1(5, scale, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )
        view = MaterializedView.create(cluster, qlist)
        target = cluster.fragment("F3")
        target.root.add_child(XMLNode("note", text="update"))
        report = view.refresh_fragment("F3")
        scratch = ParBoXEngine(cluster).evaluate(qlist)
        result.add_row(
            round(scale, 1),
            maint_bytes=report.traffic_bytes,
            maint_nodes=report.nodes_recomputed,
            scratch_nodes=scratch.metrics.nodes_processed,
            maint_sites=len(report.sites_visited),
            scratch_sites=len(scratch.metrics.visits),
        )
    return result


# ---------------------------------------------------------------------------
# Executor backends -- simulated vs real-parallel elapsed (added experiment)
# ---------------------------------------------------------------------------


def executors_realtime(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Site-execution strategies side by side on one ParBoX workload.

    The simulated cost ledger (visits, traffic, critical-path elapsed)
    is executor-independent by construction; what changes is how long
    the site computations *really* take end to end.  ``sim_elapsed_s``
    is the simulated critical path, ``wall_s`` the measured wall clock
    of the computation phases, ``busy_s`` the serial-equivalent sum of
    per-site busy time and ``speedup_x = busy_s / wall_s`` the realized
    concurrency (1x for serial; bounded by the GIL for threads on this
    pure-Python workload; true parallelism for processes, which pay a
    per-batch wire-serialization toll instead).
    """
    from repro.distsim.executors import EXECUTOR_REGISTRY, resolve_executor

    config = config or BenchConfig.default()
    qlist = query_of_size(8)
    sites = max(4, min(config.iterations, 8))
    cluster = config.with_network(
        star_ft1(sites, config.total_mb, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
    )
    result = ExperimentResult(
        "executors",
        f"Simulated vs real-parallel elapsed per executor (ParBoX, FT1, {sites} sites)",
        "executor",
        ["answer", "sim_elapsed_s", "wall_s", "busy_s", "speedup_x", "critical_site"],
    )
    for name in sorted(EXECUTOR_REGISTRY):
        with resolve_executor(name) as executor:
            engine = ParBoXEngine(cluster, executor=executor)
            best = config.timed(engine, qlist, key=lambda r: r.wall_seconds)
        metrics = best.metrics
        result.add_row(
            name,
            answer=best.answer,
            sim_elapsed_s=best.elapsed_seconds,
            wall_s=metrics.wall_seconds,
            busy_s=metrics.compute_seconds_total,
            speedup_x=round(metrics.parallel_speedup(), 2),
            critical_site=metrics.critical_site or "",
        )
    return result


# ---------------------------------------------------------------------------
# Batching -- traffic-per-query amortization (added experiment)
# ---------------------------------------------------------------------------


def batching_amortization(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Traffic per query vs batch size: the multi-query amortization curve.

    A fixed stream of 32 pub/sub subscriptions (drawn from a 12-query
    pool, so popular subscriptions recur) is evaluated through a
    :class:`~repro.core.session.QuerySession` at increasing batch
    sizes.  Costs are deterministic, so the curve is exact: per-query
    bytes fall as batches grow because (a) each batch costs one
    broadcast and one reply per site instead of N, and (b) the planner
    deduplicates repeated subscriptions within a batch -- the larger
    the batch, the more of the stream collapses.  ``answers_true`` must
    not move: batching changes costs, never answers.
    """
    from repro.core import QuerySession
    from repro.workloads.pubsub import subscription_texts

    config = config or BenchConfig.default()
    sites = max(4, min(config.iterations, 6))
    cluster = config.with_network(
        star_ft1(sites, config.total_mb, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
    )
    texts = subscription_texts(32, seed=config.seed)
    result = ExperimentResult(
        "batching",
        f"Per-query cost amortization vs batch size (ParBoX, FT1, {sites} sites, "
        f"32 subscriptions)",
        "batch_size",
        [
            "bytes_per_query",
            "visits_per_query",
            "messages_per_query",
            "combined_entries",
            "duplicates_collapsed",
            "answers_true",
        ],
    )
    for batch_size in (1, 2, 4, 8, 16, 32):
        with QuerySession(cluster, engine="parbox", batch_size=batch_size) as session:
            outcome = session.evaluate_many(texts)
        result.add_row(
            batch_size,
            bytes_per_query=outcome.bytes_per_query,
            visits_per_query=outcome.visits_per_query,
            messages_per_query=outcome.messages_per_query,
            # Read from the evaluated batches themselves, not a re-plan.
            combined_entries=sum(
                batch.details["combined_entries"] for batch in outcome.batches
            ),
            duplicates_collapsed=sum(
                batch.details["duplicates_collapsed"] for batch in outcome.batches
            ),
            answers_true=sum(outcome.answers),
        )
    return result


# ---------------------------------------------------------------------------
# Stream -- continuous-query maintenance bounds (added experiment)
# ---------------------------------------------------------------------------


def stream_maintenance(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Per-update maintenance cost of a standing query book as |T| grows.

    A fixed book of subscriptions (pub/sub pool + one probe query per
    updatable fragment) stands on a 6-fragment FT1 star whose document
    size sweeps upward.  Each sweep point applies three update batches
    dirtying 1, 2 and 4 fragments (each batch toggles a ``<seal>``
    probe, so every dirty fragment genuinely ships a changed slice) and
    records the per-batch maintenance traffic.

    Section 5's bound, extended to the whole book: traffic depends on
    the *number of dirty fragments* and the query sizes -- never on
    ``|T|`` -- and only dirty fragments' sites are contacted.  The
    ``agree`` column checks the incremental answers bitwise against a
    from-scratch ParBoX batch evaluation of the same plan.
    """
    from repro.stream import Relabel, StreamMaintainer
    from repro.workloads.pubsub import subscription_texts

    config = config or BenchConfig.default()
    sites = 6
    probe_fragments = ["F1", "F2", "F3", "F4"]
    result = ExperimentResult(
        "stream",
        f"Continuous-query maintenance vs document size (FT1, {sites} sites)",
        "tree_nodes",
        [
            "bytes_1frag",
            "bytes_2frag",
            "bytes_4frag",
            "dirty_sites_4frag",
            "total_sites",
            "nodes_recomputed_1frag",
            "agree",
        ],
    )
    steps = min(config.iterations, 5)
    for step in range(steps):
        scale = config.total_mb * (1 + step) / steps
        cluster = config.with_network(
            star_ft1(sites, scale, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )
        maintainer = StreamMaintainer(cluster)
        for index, text in enumerate(subscription_texts(12, seed=config.seed)):
            maintainer.subscribe(f"sub-{index}", text)
        for fragment_id in probe_fragments:
            maintainer.subscribe(
                f"probe-{fragment_id}", f'[//seal = "seal-{fragment_id}-hot"]'
            )
        seals = {
            fragment_id: cluster.fragment(fragment_id).root.find_first(
                lambda node: node.label == "seal"
            )
            for fragment_id in probe_fragments
        }
        hot = {fragment_id: False for fragment_id in probe_fragments}

        rounds = {}
        for count in (1, 2, 4):
            batch = []
            for fragment_id in probe_fragments[:count]:
                hot[fragment_id] = not hot[fragment_id]
                suffix = "-hot" if hot[fragment_id] else ""
                batch.append(
                    Relabel(
                        fragment_id,
                        seals[fragment_id].node_id,
                        text=f"seal-{fragment_id}{suffix}",
                    )
                )
            rounds[count] = maintainer.apply(batch)

        scratch = ParBoXEngine(cluster).evaluate_many(maintainer.plan()).answers
        result.add_row(
            cluster.total_size(),
            bytes_1frag=rounds[1].traffic_bytes,
            bytes_2frag=rounds[2].traffic_bytes,
            bytes_4frag=rounds[4].traffic_bytes,
            dirty_sites_4frag=len(rounds[4].sites_visited),
            total_sites=sites,
            nodes_recomputed_1frag=rounds[1].nodes_recomputed,
            agree=tuple(maintainer.answers().values()) == scratch,
        )
    return result


# ---------------------------------------------------------------------------
# Placement -- workload-aware optimizer vs balanced-random (added experiment)
# ---------------------------------------------------------------------------


def placement_optimizer(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Optimizer-chosen placement vs workload-blind baselines.

    One FT3 bushy document (8 uneven fragments) is placed four ways on
    capacity-bounded sites: fully ``spread`` (one site per fragment),
    two ``balanced-random`` assignments (node-balanced but blind to the
    workload), and ``optimized`` -- the placement the
    :mod:`repro.placement` optimizer chooses for the actual workload
    (a pub/sub subscription book plus an update profile hot on F4/F5),
    restricted to moves so the same assignment transfers onto every
    fresh document.

    Per candidate the *same* deterministic workload epoch is measured:
    one batched evaluation of the book plus four update rounds through
    a standing :class:`~repro.stream.maintainer.StreamMaintainer` (seal
    toggles on the hot fragments, so changed slices genuinely ship).
    The ``optimized`` row is special: its placement is enacted **live**
    -- the cluster starts at ``random-1``, the book stands via
    ``watch()``, and ``QuerySession.rebalance`` migrates the data under
    it -- so its ``agree`` column additionally certifies bitwise answer
    stability *through* the migration, and ``migration_bytes`` meters
    what the move really shipped.  All costs are deterministic; the
    shape check asserts the optimizer strictly beats balanced-random on
    predicted and measured cost and that predicted cost *ranks*
    candidates the way measured cost does.
    """
    from repro.core import ParBoXEngine as Oracle, QuerySession
    from repro.core.estimates import Catalog, estimate_workload
    from repro.distsim import Cluster
    from repro.fragments import Placement
    from repro.placement import Constraints, Workload, balanced_random_placement
    from repro.stream import Relabel
    from repro.workloads.pubsub import subscription_texts

    config = config or BenchConfig.default()
    site_ids = [f"S{i}" for i in range(4)]
    update_rounds = 4
    #: updates per epoch: F4 toggled every round, F5 every second round.
    hot_schedule = {"F4": 1, "F5": 2}  # fragment -> toggle every n-th round
    rates = {
        fragment_id: update_rounds / every for fragment_id, every in hot_schedule.items()
    }

    def build() -> Cluster:
        return config.with_network(
            bushy_ft3(0, seed=config.seed, nodes_per_mb=config.nodes_per_mb)
        )

    base = build()
    fragment_ids = sorted(base.fragmented_tree.fragments)
    # Headroom for workload-aware co-location: enough that the
    # coordinator site can absorb the hot fragments, not enough to
    # collapse the cluster onto one site.
    capacity = int(base.total_size() / len(site_ids) * 1.9)
    texts = subscription_texts(12, seed=config.seed) + [
        f'[//seal = "seal-{fragment_id}-hot"]' for fragment_id in hot_schedule
    ]
    workload = Workload.from_queries(texts, update_rates=rates)
    constraints = Constraints(
        site_capacity=capacity,
        max_sites=len(site_ids),
        allow_splits=False,
        allow_merges=False,
    )

    # The "optimized" candidate has no precomputed assignment: its
    # cluster starts at random-1 and session.rebalance() runs the one
    # and only optimizer search live, under the standing book.
    candidates: dict[str, Optional[dict[str, str]]] = {
        "spread": {fid: f"T{i}" for i, fid in enumerate(fragment_ids)},
        "random-1": dict(
            balanced_random_placement(base.fragmented_tree, site_ids, seed=1).items()
        ),
        "random-2": dict(
            balanced_random_placement(base.fragmented_tree, site_ids, seed=2).items()
        ),
        "optimized": None,
    }

    def toggle_batch(cluster: Cluster, seals: dict, hot: dict, round_index: int):
        batch = []
        for fragment_id, every in hot_schedule.items():
            if round_index % every:
                continue
            hot[fragment_id] = not hot[fragment_id]
            suffix = "-hot" if hot[fragment_id] else ""
            batch.append(
                Relabel(
                    fragment_id,
                    seals[fragment_id].node_id,
                    text=f"seal-{fragment_id}{suffix}",
                )
            )
        return batch

    def measure_epoch(session: QuerySession, maintainer) -> tuple[int, int, bool]:
        """One workload epoch: (query bytes, update bytes, bitwise agreement)."""
        cluster = session.cluster
        query_bytes = session.evaluate_batch(texts).metrics.bytes_total
        seals = {
            fragment_id: cluster.fragment(fragment_id).root.find_first(
                lambda node: node.label == "seal"
            )
            for fragment_id in hot_schedule
        }
        hot = {fragment_id: False for fragment_id in hot_schedule}
        update_bytes = 0
        agree = True
        with Oracle(cluster) as oracle:
            for round_index in range(update_rounds):
                round_ = maintainer.apply(toggle_batch(cluster, seals, hot, round_index))
                update_bytes += round_.traffic_bytes
                live = tuple(maintainer.answers().values())
                agree = agree and live == oracle.evaluate_many(maintainer.plan()).answers
        return query_bytes, update_bytes, agree

    result = ExperimentResult(
        "placement",
        f"Workload-aware placement vs balanced-random (FT3, |T|={base.total_size()}, "
        f"{len(site_ids)} sites, capacity {capacity})",
        "candidate",
        [
            "predicted_terms",
            "measured_bytes",
            "query_bytes",
            "update_bytes",
            "max_site_load",
            "capacity_ok",
            "agree",
            "migration_bytes",
        ],
    )

    reference_answers = None
    enacted_plan = None
    for name, assignment in candidates.items():
        live_rebalance = assignment is None
        initial = candidates["random-1"] if live_rebalance else assignment
        cluster = config.with_network(
            Cluster(build().fragmented_tree, Placement(initial))
        )
        migration_bytes = 0
        agree = True
        with QuerySession(cluster, engine="parbox") as session:
            maintainer = session.watch(texts)
            if live_rebalance:
                # Enact the optimizer's plan under the standing book:
                # answers must not move while the data does.
                answers_before = tuple(maintainer.answers().values())
                outcome = session.rebalance(
                    workload=workload, maintainer=maintainer, constraints=constraints
                )
                enacted_plan = outcome.plan
                migration_bytes = outcome.migration_bytes
                agree = tuple(maintainer.answers().values()) == answers_before
            query_bytes, update_bytes, rounds_agree = measure_epoch(session, maintainer)
            agree = agree and rounds_agree
            answers = tuple(maintainer.answers().values())
            maintainer.close()
        if reference_answers is None:
            reference_answers = answers
        agree = agree and answers == reference_answers  # placement never moves answers
        estimate = estimate_workload(
            Catalog.from_cluster(cluster), workload.query_mix(), rates
        )
        result.add_row(
            name,
            predicted_terms=round(estimate.total(), 1),
            measured_bytes=query_bytes + update_bytes,
            query_bytes=query_bytes,
            update_bytes=update_bytes,
            max_site_load=estimate.max_site_load,
            capacity_ok=estimate.max_site_load <= capacity,
            agree=agree,
            migration_bytes=migration_bytes,
        )
    if enacted_plan is not None:
        result.note(
            f"plan: {len(enacted_plan)} move(s), predicted "
            f"{enacted_plan.before.total():.0f} -> "
            f"{enacted_plan.after.total():.0f} terms/epoch"
        )
    return result


# ---------------------------------------------------------------------------
# Ablation -- formula canonicalization (DESIGN.md Section 5)
# ---------------------------------------------------------------------------


def _deep_virtual_chain(fragments: int, depth: int) -> Cluster:
    """A chain of fragments whose virtual leaf sits ``depth`` levels deep.

    When the virtual node is buried, its variables are re-composed once
    per ancestor level (the DV update of Fig. 3(b) line 17), so a
    non-canonicalizing composition duplicates sub-formulas at every
    level -- the workload where canonicalization earns the paper's
    ``O(card(F_j))`` entry-size bound.
    """
    from repro.fragments import Fragment, FragmentedTree, Placement

    store: dict[str, Fragment] = {}
    for index in range(fragments):
        root = XMLNode("wrap")
        node = root
        for _ in range(depth - 1):
            node = node.add_child(XMLNode("wrap"))
        if index + 1 < fragments:
            # Intermediate fragments carry no local match: their values
            # stay residual formulas, which is what the two algebras
            # treat differently.
            node.add_child(XMLNode.virtual(f"F{index + 1}"))
        else:
            node.add_child(XMLNode("b", text="leaf"))
        store[f"F{index}"] = Fragment(f"F{index}", root)
    tree = FragmentedTree(store, "F0")
    placement = Placement({fid: f"S{i}" for i, fid in enumerate(store)})
    return Cluster(tree, placement)


def ablation_algebra(config: Optional[BenchConfig] = None) -> ExperimentResult:
    """Reply traffic: canonicalizing vs paper-literal composition.

    Uses deep-buried virtual nodes and a nested-descendant query, the
    regime where the literal ``compFm`` duplicates sub-formulas at each
    level above a virtual node.  (On the FT1/FT2 topologies, whose
    virtual nodes sit directly under fragment roots, the two algebras
    coincide -- noted in EXPERIMENTS.md.)
    """
    config = config or BenchConfig.default()
    from repro.xpath import compile_query

    qlist = compile_query("[//wrap[//b and //wrap[//b]]]")
    result = ExperimentResult(
        "ablation-algebra",
        "Formula canonicalization ablation (deep virtual nodes)",
        "virtual_depth",
        ["canonical_bytes", "paper_bytes", "blowup_x", "canonical_s", "paper_s"],
    )
    for depth in (2, 4, 8, 16, 24):
        cluster = config.with_network(_deep_virtual_chain(4, depth))
        canonical = ParBoXEngine(cluster).evaluate(qlist)
        paper = ParBoXEngine(cluster, algebra=PaperAlgebra()).evaluate(qlist)
        assert canonical.answer == paper.answer
        result.add_row(
            depth,
            canonical_bytes=canonical.metrics.bytes_total,
            paper_bytes=paper.metrics.bytes_total,
            blowup_x=round(paper.metrics.bytes_total / canonical.metrics.bytes_total, 2),
            canonical_s=canonical.elapsed_seconds,
            paper_s=paper.elapsed_seconds,
        )
    return result


#: (id, function) pairs in presentation order.
ALL_EXPERIMENTS: list[tuple[str, Callable[[Optional[BenchConfig]], ExperimentResult]]] = [
    ("fig4", fig4_validation),
    ("fig7", fig7_parbox_vs_central),
    ("fig8", fig8_query_size),
    ("fig9", fig9_qf0),
    ("fig10", fig10_qfn),
    ("fig11", fig11_qfmid),
    ("fig12", fig12_data_scale),
    ("fig13", fig13_frags_per_site),
    ("sec4-hybrid", sec4_hybrid_crossover),
    ("sec5-incremental", sec5_incremental),
    ("ablation-algebra", ablation_algebra),
    ("executors", executors_realtime),
    ("batching", batching_amortization),
    ("stream", stream_maintenance),
    ("placement", placement_optimizer),
]

__all__ = [
    "BenchConfig",
    "fig4_validation",
    "fig7_parbox_vs_central",
    "fig8_query_size",
    "fig9_qf0",
    "fig10_qfn",
    "fig11_qfmid",
    "fig12_data_scale",
    "fig13_frags_per_site",
    "sec4_hybrid_crossover",
    "sec5_incremental",
    "ablation_algebra",
    "executors_realtime",
    "batching_amortization",
    "stream_maintenance",
    "placement_optimizer",
    "ALL_EXPERIMENTS",
]
