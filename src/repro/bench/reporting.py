"""Result containers and plain-text rendering for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

Cell = Union[int, float, str, bool]


@dataclass
class ExperimentResult:
    """One regenerated figure/table: labelled columns over an x sweep."""

    experiment_id: str
    title: str
    x_label: str
    columns: list[str]
    rows: list[tuple[Cell, dict[str, Cell]]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, x: Cell, **values: Cell) -> None:
        """Append one sweep point."""
        self.rows.append((x, values))

    def column(self, name: str) -> list[Cell]:
        """All values of one column, in sweep order."""
        return [values[name] for _, values in self.rows]

    def xs(self) -> list[Cell]:
        """The sweep axis."""
        return [x for x, _ in self.rows]

    def note(self, text: str) -> None:
        """Attach a free-text observation."""
        self.notes.append(text)

    def to_obj(self) -> dict:
        """JSON-able representation (the CI-artifact format).

        Row cells are kept as-is (ints/floats/strings/bools are all
        JSON-native), so BENCH_* trajectories can be diffed across
        runs without re-parsing rendered tables.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "columns": list(self.columns),
            "rows": [{"x": x, "values": dict(values)} for x, values in self.rows],
            "notes": list(self.notes),
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Aligned text table, EXPERIMENTS.md-ready."""
        header = [self.x_label] + self.columns
        body = [
            [_format(x)] + [_format(values.get(col, "")) for col in self.columns]
            for x, values in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in body]
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format(value: Cell) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_results(results: Iterable[ExperimentResult]) -> str:
    """Render several experiments separated by blank lines."""
    return "\n\n".join(result.render() for result in results)


__all__ = ["ExperimentResult", "render_results"]
