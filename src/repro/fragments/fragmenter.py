"""Fragmenters: turning a document into a :class:`FragmentedTree`.

Three entry points:

* :func:`fragment_at` -- cut at explicitly chosen nodes (the generic
  primitive; every other strategy reduces to it);
* :func:`fragment_balanced` -- automatic size-driven cuts producing
  roughly equal-sized fragments;
* :func:`fragment_per_node` -- the pathological one-fragment-per-node
  decomposition used by the Hybrid ParBoX analysis (Section 4).

Plus the two structural update operations of Section 5:

* :func:`split_fragment`  -- the paper's ``splitFragments(v)``;
* :func:`merge_fragment`  -- the paper's ``mergeFragments(v)``;

and :func:`split_candidates`, which surveys a fragment for the nodes a
*re-fragmentation* would cut at -- the decomposition actions the
placement optimizer (:mod:`repro.placement`) scores in metadata space
before any real split happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.fragments.fragment import Fragment, FragmentationError, FragmentedTree
from repro.xmltree.node import XMLNode
from repro.xmltree.serializer import estimated_wire_bytes
from repro.xmltree.tree import XMLTree


def fresh_fragment_id(existing: Iterable[str]) -> str:
    """A fragment id not clashing with ``existing`` (``F1``, ``F2``, ...).

    Derived from the target tree's ids alone (one past the highest
    ``F<k>`` already taken), so identical fragmentations produce
    identical ids regardless of what else ran in the process -- a
    split replayed on an equal cluster names the new fragment equally,
    which the update log and the incremental caches rely on.  The
    update-stream generator calls this too, to pin a split's id before
    the op is applied.
    """
    taken = set(existing)
    highest = 0
    for fragment_id in taken:
        if fragment_id.startswith("F") and fragment_id[1:].isdigit():
            highest = max(highest, int(fragment_id[1:]))
    candidate = highest + 1
    while f"F{candidate}" in taken:
        candidate += 1
    return f"F{candidate}"


_fresh_id = fresh_fragment_id  # internal alias used by the fragmenters


def fragment_at(
    tree: XMLTree,
    cut_nodes: Sequence[XMLNode],
    root_id: str = "F0",
    ids: Optional[Sequence[str]] = None,
    copy: bool = True,
) -> FragmentedTree:
    """Cut the document at ``cut_nodes``.

    Each cut node becomes the root of a new fragment; its position in the
    remaining tree is taken by a virtual node.  Cut nodes may be nested
    (a cut inside another cut fragments the fragment itself, as the paper
    allows -- "fragment F1 is itself fragmented").

    ``ids`` optionally names the new fragments (paired with ``cut_nodes``
    in order); by default fresh ``F<i>`` ids are generated.  With
    ``copy=True`` (default) the input tree is left untouched.
    """
    if copy:
        id_map: dict[int, XMLNode] = {}
        root_copy = _copy_with_map(tree.root, id_map)
        tree = XMLTree(root_copy)
        cut_nodes = [id_map[node.node_id] for node in cut_nodes]

    if ids is not None and len(ids) != len(cut_nodes):
        raise ValueError("ids and cut_nodes must have the same length")
    for node in cut_nodes:
        if node is tree.root:
            raise FragmentationError("cannot cut at the root")
        if node.is_virtual:
            raise FragmentationError("cannot cut at a virtual node")

    fragments: dict[str, Fragment] = {}
    used_ids = {root_id}
    # Cut bottom-up (deepest first) so nested cuts see their inner virtual
    # nodes already in place.
    ordered = sorted(
        zip(cut_nodes, ids or [None] * len(cut_nodes)),
        key=lambda pair: pair[0].depth(),
        reverse=True,
    )
    for node, maybe_id in ordered:
        fragment_id = maybe_id or _fresh_id(used_ids)
        if fragment_id in used_ids:
            raise FragmentationError(f"duplicate fragment id {fragment_id!r}")
        used_ids.add(fragment_id)
        node.replace_with(XMLNode.virtual(fragment_id))
        fragments[fragment_id] = Fragment(fragment_id, node)
    fragments[root_id] = Fragment(root_id, tree.root)
    tree.touch()
    return FragmentedTree(fragments, root_id)


def _copy_with_map(node: XMLNode, id_map: dict[int, XMLNode]) -> XMLNode:
    """Deep copy remembering old-id -> new-node, so cuts can be re-aimed."""
    copy = XMLNode(node.label, text=node.text, fragment_ref=node.fragment_ref)
    id_map[node.node_id] = copy
    for child in node.children:
        copy.add_child(_copy_with_map(child, id_map))
    return copy


def fragment_balanced(
    tree: XMLTree,
    target_fragments: int,
    root_id: str = "F0",
    copy: bool = True,
) -> FragmentedTree:
    """Cut into roughly ``target_fragments`` similar-sized fragments.

    Strategy: repeatedly cut the subtree whose size is closest to
    ``|T| / target_fragments`` among candidates that do not leave the
    remaining root fragment empty.  Deterministic.
    """
    if target_fragments < 1:
        raise ValueError("target_fragments must be >= 1")
    if target_fragments == 1:
        working = tree.deep_copy() if copy else tree
        return FragmentedTree({root_id: Fragment(root_id, working.root)}, root_id)

    working = tree.deep_copy() if copy else tree
    goal = max(1, tree.size() // target_fragments)
    cuts: list[XMLNode] = []
    cut_roots: set[int] = set()
    for _ in range(target_fragments - 1):
        best: Optional[XMLNode] = None
        best_score: Optional[int] = None
        for node in working.root.iter_subtree():
            if node is working.root or node.is_virtual:
                continue
            if node.node_id in cut_roots or _has_cut_ancestor(node, cut_roots):
                continue
            score = abs(node.subtree_size() - goal)
            if best_score is None or score < best_score:
                best, best_score = node, score
        if best is None:
            break
        cuts.append(best)
        cut_roots.add(best.node_id)
    return fragment_at(working, cuts, root_id=root_id, copy=False)


def _has_cut_ancestor(node: XMLNode, cut_roots: set[int]) -> bool:
    return any(ancestor.node_id in cut_roots for ancestor in node.iter_ancestors())


def fragment_per_node(tree: XMLTree, root_id: str = "F0", copy: bool = True) -> FragmentedTree:
    """The pathological decomposition: every non-root node is a fragment.

    Gives ``card(F) = |T|``, the regime in which NaiveCentralized beats
    ParBoX on communication and Hybrid ParBoX must switch strategies.
    """
    working = tree.deep_copy() if copy else tree
    cuts = [node for node in working.root.iter_subtree() if node is not working.root]
    # fragment_at cuts deepest-first, so nested cuts are safe.
    return fragment_at(working, cuts, root_id=root_id, copy=False)


# ---------------------------------------------------------------------------
# Section 5 structural updates
# ---------------------------------------------------------------------------


def split_fragment(
    tree: FragmentedTree,
    fragment_id: str,
    node: XMLNode,
    new_fragment_id: Optional[str] = None,
) -> str:
    """The paper's ``splitFragments(v)``.

    Creates a new fragment rooted at ``node`` (a node of ``fragment_id``)
    and replaces the subtree by a virtual node.  Returns the new
    fragment's id.  The caller is responsible for assigning the new
    fragment to a site (Example 5.1 assigns F4 to a new site S3).
    """
    fragment = tree.fragments[fragment_id]
    if node is fragment.root:
        raise FragmentationError("cannot split a fragment at its own root")
    if node.is_virtual:
        raise FragmentationError("cannot split at a virtual node")
    owner = _owning_root(node)
    if owner is not fragment.root:
        raise FragmentationError(f"node {node.node_id} is not in fragment {fragment_id}")
    new_id = new_fragment_id or _fresh_id(tree.fragments)
    if new_id in tree.fragments:
        raise FragmentationError(f"duplicate fragment id {new_id!r}")
    node.replace_with(XMLNode.virtual(new_id))
    tree.fragments[new_id] = Fragment(new_id, node)
    tree.revalidate()
    return new_id


def merge_fragment(tree: FragmentedTree, fragment_id: str, virtual_node: XMLNode) -> Optional[str]:
    """The paper's ``mergeFragments(v)``.

    Merges the sub-fragment referenced by ``virtual_node`` (a virtual
    node of fragment ``fragment_id``) back into it.  Following the paper,
    "if v is not virtual, no action is taken" -- returns None in that
    case, else the id of the absorbed fragment.  The absorbed fragment's
    own virtual leaves (its sub-fragments) are preserved: they become
    sub-fragments of ``fragment_id``.
    """
    if not virtual_node.is_virtual:
        return None
    fragment = tree.fragments[fragment_id]
    if _owning_root(virtual_node) is not fragment.root:
        raise FragmentationError(
            f"virtual node {virtual_node.node_id} is not in fragment {fragment_id}"
        )
    absorbed_id = virtual_node.fragment_ref
    assert absorbed_id is not None
    absorbed = tree.fragments.pop(absorbed_id)
    virtual_node.replace_with(absorbed.root)
    tree.revalidate()
    return absorbed_id


def _owning_root(node: XMLNode) -> XMLNode:
    """The root of the (fragment) tree containing ``node``."""
    current = node
    while current.parent is not None:
        current = current.parent
    return current


@dataclass(frozen=True)
class SplitCandidate:
    """One place a fragment could be split, with the catalog deltas.

    Everything a hypothetical :meth:`repro.core.estimates.Catalog.with_split`
    needs -- the carved subtree's node count, wire bytes and the
    sub-fragments whose virtual leaves it would carry along -- plus the
    stable ``node_id`` the eventual
    :class:`~repro.stream.updates.SplitFragment` op addresses.
    """

    fragment_id: str
    node_id: int
    subtree_size: int
    subtree_bytes: int
    moved_sub_fragments: tuple[str, ...]


def split_candidates(
    fragment: Fragment,
    limit: int = 3,
    min_fraction: float = 0.1,
    max_fraction: float = 0.7,
) -> list[SplitCandidate]:
    """Survey a fragment for worthwhile split points.

    A candidate is a non-root, non-virtual node whose subtree holds
    between ``min_fraction`` and ``max_fraction`` of the fragment's
    nodes (splitting off a sliver buys nothing; splitting off nearly
    everything just renames the fragment).  At most ``limit``
    candidates are returned, those closest to an even halving first --
    the cuts that give a rebalancer the most freedom.  Candidates may
    be nested; callers applying more than one split per fragment must
    check containment themselves (the optimizer applies at most one).
    """
    total = fragment.size()
    if total < 2:
        return []
    low = max(1, int(total * min_fraction))
    high = max(low, int(total * max_fraction))
    # One post-order pass computes every subtree size (calling
    # node.subtree_size() per node would make the survey quadratic in
    # the fragment size); wire bytes and carried sub-fragments are then
    # gathered only for the few nodes that survive selection.
    sizes: dict[int, int] = {}
    for node in fragment.root.iter_postorder():
        sizes[node.node_id] = (0 if node.is_virtual else 1) + sum(
            sizes[child.node_id] for child in node.children
        )
    selected = [
        node
        for node in fragment.root.iter_subtree()
        if node is not fragment.root
        and not node.is_virtual
        and low <= sizes[node.node_id] <= high
    ]
    selected.sort(key=lambda n: (abs(sizes[n.node_id] - total // 2), n.node_id))
    return [
        SplitCandidate(
            fragment_id=fragment.fragment_id,
            node_id=node.node_id,
            subtree_size=sizes[node.node_id],
            subtree_bytes=estimated_wire_bytes(node),
            moved_sub_fragments=tuple(
                sub.fragment_ref
                for sub in node.iter_subtree()
                if sub.is_virtual and sub.fragment_ref
            ),
        )
        for node in selected[:limit]
    ]


__all__ = [
    "fragment_at",
    "fragment_balanced",
    "fragment_per_node",
    "fresh_fragment_id",
    "split_fragment",
    "merge_fragment",
    "split_candidates",
    "SplitCandidate",
]
