"""Placement and the source tree (paper, Section 2.1 / Fig. 2(b)).

The *placement* is the paper's mapping function ``h`` assigning each
fragment to a site.  The *source tree* ``S_T`` is the fragment tree
relabelled by ``h``; it is **the only structure the evaluation and
maintenance algorithms require** -- they never inspect fragment contents
beyond what the sites report.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.fragments.fragment import FragmentedTree


class Placement:
    """The assignment ``h: fragment id -> site id``.

    Alongside the forward map a reverse index ``site id -> fragment
    ids`` is maintained on every mutation, so :meth:`fragments_of` and
    :meth:`sites` are dictionary lookups rather than full scans (the
    stream maintainer resolves every site's fragment list when a new
    subscription's segment is first evaluated).
    """

    def __init__(self, assignment: dict[str, str]) -> None:
        self._assignment: dict[str, str] = {}
        self._by_site: dict[str, dict[str, None]] = {}
        for fragment_id, site_id in assignment.items():
            self.assign(fragment_id, site_id)

    def site_of(self, fragment_id: str) -> str:
        """The site storing ``fragment_id``."""
        return self._assignment[fragment_id]

    def assign(self, fragment_id: str, site_id: str) -> None:
        """Add or move a fragment's assignment."""
        previous = self._assignment.get(fragment_id)
        if previous is not None:
            self._drop_reverse(fragment_id, previous)
        self._assignment[fragment_id] = site_id
        self._by_site.setdefault(site_id, {})[fragment_id] = None

    def remove(self, fragment_id: str) -> None:
        """Forget a fragment (after a merge)."""
        site_id = self._assignment.pop(fragment_id)
        self._drop_reverse(fragment_id, site_id)

    def _drop_reverse(self, fragment_id: str, site_id: str) -> None:
        stored = self._by_site[site_id]
        del stored[fragment_id]
        if not stored:  # a site with no fragments is no site at all
            del self._by_site[site_id]

    def fragments_of(self, site_id: str) -> list[str]:
        """All fragments stored at ``site_id`` (insertion order)."""
        return list(self._by_site.get(site_id, ()))

    def sites(self) -> list[str]:
        """Distinct site ids, in first-appearance order."""
        return list(self._by_site)

    def items(self) -> Iterator[tuple[str, str]]:
        """Iterate ``(fragment_id, site_id)`` pairs."""
        return iter(self._assignment.items())

    def copy(self) -> "Placement":
        """Independent copy."""
        return Placement(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Placement {self._assignment!r}>"


class SourceTree:
    """The source tree ``S_T``: fragment-tree shape + site labels.

    A snapshot structure: build it from a :class:`FragmentedTree` and a
    :class:`Placement` with :meth:`from_fragmented_tree`, or rebuild it
    after fragmentation changes (split/merge).  It deliberately stores
    only ids and the parent relation -- the metadata a coordinator would
    realistically hold.
    """

    def __init__(
        self,
        root_fragment_id: str,
        parents: dict[str, Optional[str]],
        children: dict[str, list[str]],
        site_by_fragment: dict[str, str],
    ) -> None:
        self.root_fragment_id = root_fragment_id
        self._parents = dict(parents)
        self._children = {fid: list(subs) for fid, subs in children.items()}
        self._site_by_fragment = dict(site_by_fragment)

    @classmethod
    def from_fragmented_tree(cls, tree: FragmentedTree, placement: Placement) -> "SourceTree":
        """Induce the source tree from a decomposition and its placement."""
        parents: dict[str, Optional[str]] = {}
        children: dict[str, list[str]] = {}
        site_by_fragment: dict[str, str] = {}
        for fragment_id in tree.fragments:
            parents[fragment_id] = tree.parent_of(fragment_id)
            children[fragment_id] = tree.children_of(fragment_id)
            site_by_fragment[fragment_id] = placement.site_of(fragment_id)
        return cls(tree.root_fragment_id, parents, children, site_by_fragment)

    # ------------------------------------------------------------------
    # Sites
    # ------------------------------------------------------------------
    def sites(self) -> list[str]:
        """Distinct sites appearing in the source tree."""
        seen: dict[str, None] = {}
        for fragment_id in self.iter_fragments_preorder():
            seen.setdefault(self._site_by_fragment[fragment_id])
        return list(seen)

    def site_of(self, fragment_id: str) -> str:
        """The site storing the given fragment."""
        return self._site_by_fragment[fragment_id]

    def fragments_of(self, site_id: str) -> list[str]:
        """Fragments stored at a site, in pre-order (``card(F_Si)`` many)."""
        return [
            fragment_id
            for fragment_id in self.iter_fragments_preorder()
            if self._site_by_fragment[fragment_id] == site_id
        ]

    @property
    def coordinator_site(self) -> str:
        """The site holding the root fragment (default coordinator)."""
        return self._site_by_fragment[self.root_fragment_id]

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def fragment_ids(self) -> list[str]:
        """All fragment ids, pre-order."""
        return list(self.iter_fragments_preorder())

    def iter_fragments_preorder(self) -> Iterator[str]:
        """Pre-order traversal of the fragment-tree shape."""
        stack = [self.root_fragment_id]
        while stack:
            fragment_id = stack.pop()
            yield fragment_id
            stack.extend(reversed(self._children[fragment_id]))

    def parent_of(self, fragment_id: str) -> Optional[str]:
        """Parent fragment id (None for the root fragment)."""
        return self._parents[fragment_id]

    def children_of(self, fragment_id: str) -> list[str]:
        """Direct sub-fragment ids."""
        return list(self._children[fragment_id])

    def depth_of(self, fragment_id: str) -> int:
        """Fragment-tree depth (root fragment = 0)."""
        depth = 0
        current = self._parents[fragment_id]
        while current is not None:
            depth += 1
            current = self._parents[current]
        return depth

    def fragments_at_depth(self, depth: int) -> list[str]:
        """Fragments at the given depth, pre-order."""
        return [fid for fid in self.iter_fragments_preorder() if self.depth_of(fid) == depth]

    def max_depth(self) -> int:
        """Depth of the deepest fragment."""
        return max(self.depth_of(fid) for fid in self.fragment_ids())

    def card(self) -> int:
        """``card(F)``: the number of fragments."""
        return len(self._parents)

    def wire_bytes(self) -> int:
        """Approximate size of shipping the source tree to a site."""
        total = 0
        for fragment_id in self.iter_fragments_preorder():
            total += len(fragment_id) + len(self._site_by_fragment[fragment_id]) + 8
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SourceTree card={self.card()} sites={len(self.sites())}>"


__all__ = ["Placement", "SourceTree"]
