"""Fragments and fragmented trees.

The decomposition model follows the paper exactly: fragments are
disjoint subtrees of the original document; where a sub-fragment was cut
out, the parent fragment keeps a **virtual node** whose ``fragment_ref``
names it.  No constraint is placed on nesting depth, fragment sizes or
the number of fragments ("our fragmentation setting is the most generic
possible").
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.xmltree.node import XMLNode
from repro.xmltree.serializer import estimated_wire_bytes
from repro.xmltree.tree import XMLTree


class FragmentationError(ValueError):
    """Raised for inconsistent fragment structures."""


#: Process-wide epoch token source.  Tokens are opaque and globally
#: unique, so two distinct fragments (even with the same id, from
#: different clusters) never share one -- resident-state holders that
#: key on ``(fragment_id, epoch)`` are therefore content-addressed.
_epochs = itertools.count(1)


class Fragment:
    """One fragment: an id plus a subtree whose leaves may be virtual."""

    def __init__(self, fragment_id: str, root: XMLNode) -> None:
        if root.is_virtual:
            raise FragmentationError("a fragment root cannot be virtual")
        self.fragment_id = fragment_id
        self.root = root
        self.epoch: int = next(_epochs)
        self._version_cache: Optional[tuple[int, int]] = None  # (size, bytes)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def virtual_nodes(self) -> list[XMLNode]:
        """The virtual leaves, in document order."""
        return [node for node in self.root.iter_subtree() if node.is_virtual]

    def sub_fragment_ids(self) -> list[str]:
        """Ids of direct sub-fragments, in document order.

        This is the paper's ``F_j`` (the sub-fragments of fragment
        ``F_j``); ``len(...)`` is ``card(F_j)``.
        """
        return [node.fragment_ref for node in self.virtual_nodes() if node.fragment_ref]

    def node_by_id(self, node_id: int) -> XMLNode:
        """Find a node of this fragment by id (linear scan)."""
        for node in self.root.iter_subtree():
            if node.node_id == node_id:
                return node
        raise KeyError(f"node {node_id} not in fragment {self.fragment_id}")

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of non-virtual nodes (the paper's |F_j|)."""
        return self.root.subtree_size()

    def wire_bytes(self) -> int:
        """Byte cost of shipping this fragment over the network."""
        return estimated_wire_bytes(self.root)

    def bump_epoch(self) -> int:
        """Mark this fragment's content as changed.

        Every mutation path that edits fragment content (typed update
        ops, cluster split/merge, out-of-band ``refresh``) calls this;
        resident-state holders compare epochs to decide whether their
        cached copy is still the live one.  Also drops the cached
        size/bytes version since both may have changed.
        """
        self.epoch = next(_epochs)
        self._version_cache = None
        return self.epoch

    def deep_copy(self) -> "Fragment":
        """Independent copy (fresh node ids, fresh epoch)."""
        return Fragment(self.fragment_id, self.root.deep_copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Fragment {self.fragment_id} size={self.size()} subs={self.sub_fragment_ids()}>"


class FragmentedTree:
    """A complete decomposition: fragment store + fragment-tree shape.

    Invariants checked at construction and after every mutation:

    * exactly one root fragment;
    * every virtual node references an existing fragment;
    * every non-root fragment is referenced by exactly one virtual node;
    * the reference relation is acyclic (a tree).
    """

    def __init__(self, fragments: dict[str, Fragment], root_fragment_id: str) -> None:
        self.fragments = dict(fragments)
        self.root_fragment_id = root_fragment_id
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.root_fragment_id not in self.fragments:
            raise FragmentationError(f"missing root fragment {self.root_fragment_id!r}")
        referenced: dict[str, str] = {}
        for fragment in self.fragments.values():
            for sub_id in fragment.sub_fragment_ids():
                if sub_id not in self.fragments:
                    raise FragmentationError(
                        f"fragment {fragment.fragment_id} references unknown {sub_id!r}"
                    )
                if sub_id in referenced:
                    raise FragmentationError(f"fragment {sub_id!r} referenced twice")
                if sub_id == self.root_fragment_id:
                    raise FragmentationError("the root fragment cannot be referenced")
                referenced[sub_id] = fragment.fragment_id
        for fragment_id in self.fragments:
            if fragment_id != self.root_fragment_id and fragment_id not in referenced:
                raise FragmentationError(f"fragment {fragment_id!r} is unreachable")
        self._parents = referenced

    # ------------------------------------------------------------------
    # Fragment-tree relations (Fig. 2(b), left)
    # ------------------------------------------------------------------
    def parent_of(self, fragment_id: str) -> Optional[str]:
        """Parent fragment id, or None for the root fragment."""
        if fragment_id == self.root_fragment_id:
            return None
        return self._parents[fragment_id]

    def children_of(self, fragment_id: str) -> list[str]:
        """Direct sub-fragment ids in document order."""
        return self.fragments[fragment_id].sub_fragment_ids()

    def depth_of(self, fragment_id: str) -> int:
        """Distance (in fragment-tree edges) from the root fragment."""
        depth = 0
        current: Optional[str] = fragment_id
        while True:
            current = self.parent_of(current)  # type: ignore[arg-type]
            if current is None:
                return depth
            depth += 1

    def iter_depth_first(self) -> Iterator[str]:
        """Fragment ids in pre-order over the fragment tree."""
        stack = [self.root_fragment_id]
        while stack:
            fragment_id = stack.pop()
            yield fragment_id
            stack.extend(reversed(self.children_of(fragment_id)))

    def fragments_at_depth(self, depth: int) -> list[str]:
        """All fragment ids at the given fragment-tree depth."""
        return [fid for fid in self.iter_depth_first() if self.depth_of(fid) == depth]

    def max_depth(self) -> int:
        """Depth of the deepest fragment."""
        return max(self.depth_of(fid) for fid in self.fragments)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def card(self) -> int:
        """``card(F)``: the number of fragments."""
        return len(self.fragments)

    def total_size(self) -> int:
        """Total number of non-virtual nodes across fragments (|T|)."""
        return sum(fragment.size() for fragment in self.fragments.values())

    # ------------------------------------------------------------------
    # Reassembly
    # ------------------------------------------------------------------
    def stitch(self) -> XMLTree:
        """Reassemble the original document (on copies; non-destructive)."""
        root_copy = self._stitch_fragment(self.root_fragment_id)
        return XMLTree(root_copy)

    def _stitch_fragment(self, fragment_id: str) -> XMLNode:
        copy = self.fragments[fragment_id].root.deep_copy()
        # Replace virtual leaves by stitched sub-fragments.
        for node in list(copy.iter_subtree()):
            if node.is_virtual and node.fragment_ref:
                node.replace_with(self._stitch_fragment(node.fragment_ref))
        return copy

    def deep_copy(self) -> "FragmentedTree":
        """Independent copy of the whole decomposition."""
        copies = {fid: fragment.deep_copy() for fid, fragment in self.fragments.items()}
        return FragmentedTree(copies, self.root_fragment_id)

    def revalidate(self) -> None:
        """Re-check invariants after in-place mutation (split/merge)."""
        self._validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FragmentedTree card={self.card()} size={self.total_size()} "
            f"root={self.root_fragment_id}>"
        )


__all__ = ["Fragment", "FragmentedTree", "FragmentationError"]
