"""Tree fragmentation (paper, Section 2.1).

An XML tree is decomposed into disjoint subtrees, the *fragments*; each
occurrence of a sub-fragment in its parent fragment is replaced by a
*virtual node*.  This package provides:

* :class:`Fragment` -- one fragment (a subtree with virtual leaves);
* :class:`FragmentedTree` -- the whole decomposition: a fragment store
  plus the parent/child relation (the *fragment tree* of Fig. 2(b)),
  with ``stitch()`` to reassemble the original document;
* :class:`SourceTree` -- the fragment tree relabelled by the placement
  function ``h`` (which site stores which fragment); the only structure
  the evaluation algorithms need;
* fragmenters -- :func:`fragment_at` (cut at chosen nodes) and
  :func:`fragment_balanced` (size-driven automatic cuts), plus
  :func:`split_fragment` / :func:`merge_fragment` used by the Section 5
  update operations.
"""

from repro.fragments.fragment import Fragment, FragmentedTree, FragmentationError
from repro.fragments.source_tree import Placement, SourceTree
from repro.fragments.fragmenter import (
    SplitCandidate,
    fragment_at,
    fragment_balanced,
    fragment_per_node,
    split_candidates,
    split_fragment,
    merge_fragment,
)

__all__ = [
    "Fragment",
    "FragmentedTree",
    "FragmentationError",
    "Placement",
    "SourceTree",
    "fragment_at",
    "fragment_balanced",
    "fragment_per_node",
    "split_fragment",
    "merge_fragment",
    "split_candidates",
    "SplitCandidate",
]
