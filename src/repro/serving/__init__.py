"""The networked serving tier: the simulation, deployed.

Everything below :mod:`repro.core` so far evaluated queries inside one
process against the *simulated* cluster.  This package runs the same
engines over real TCP sockets:

* :mod:`repro.serving.protocol` -- the length-prefixed binary wire
  protocol (typed errors, paranoid framing);
* :mod:`repro.serving.site_server` -- one process per site, holding
  resident fragments and answering execute requests;
* :mod:`repro.serving.coordinator` -- dispatches
  :class:`~repro.distsim.executors.SiteJob` batches to site servers
  with bounded timeouts, one retry and replica failover; its
  :class:`~repro.serving.coordinator.RemoteSiteExecutor` slots into the
  engines' executor interface, so ParBoX/FullDist/Lazy/Hybrid run
  networked unchanged;
* :mod:`repro.serving.gateway` -- the front door multiplexing many
  client sessions with admission control;
* :mod:`repro.serving.client` -- the synchronous client and the
  ``net:`` engine facade for :class:`~repro.core.session.QuerySession`;
* :mod:`repro.serving.cluster` -- the :class:`ServingCluster` harness
  booting a whole topology on localhost ports.

The simulated ledger stays the oracle: networked answers *and* cost
counters are asserted bitwise identical to serial in
``tests/test_serving_differential.py``.
"""

from repro.serving.client import (
    DEFAULT_CLIENT_TIMEOUT,
    GatewayClient,
    NetEngine,
    parse_net_spec,
)
from repro.serving.cluster import LOG_DIR_ENV, ServingCluster
from repro.serving.coordinator import (
    DEFAULT_SITE_TIMEOUT,
    SERVABLE_ENGINES,
    Coordinator,
    RemoteSiteExecutor,
    SiteEndpoint,
    SiteLink,
)
from repro.serving.gateway import Gateway
from repro.serving.protocol import (
    FrameError,
    Framer,
    FrameSplitter,
    MetricsReply,
    MetricsRequest,
    Overloaded,
    PayloadError,
    ProtocolError,
    RemoteQueryError,
    ServingError,
    SiteUnavailable,
)
from repro.serving.site_server import SiteServer

__all__ = [
    "DEFAULT_CLIENT_TIMEOUT",
    "DEFAULT_SITE_TIMEOUT",
    "SERVABLE_ENGINES",
    "LOG_DIR_ENV",
    "GatewayClient",
    "NetEngine",
    "parse_net_spec",
    "ServingCluster",
    "Coordinator",
    "RemoteSiteExecutor",
    "SiteEndpoint",
    "SiteLink",
    "Gateway",
    "SiteServer",
    "ProtocolError",
    "FrameError",
    "PayloadError",
    "ServingError",
    "Overloaded",
    "SiteUnavailable",
    "RemoteQueryError",
    "Framer",
    "FrameSplitter",
    "MetricsRequest",
    "MetricsReply",
]
