"""Client side of the serving tier: blocking socket, engine facade.

Two layers:

* :class:`GatewayClient` -- a deliberately boring synchronous client:
  one blocking socket, one :class:`~repro.serving.protocol.Framer`, a
  socket timeout on every receive so a dead gateway raises instead of
  hanging.  Typed rejections come back as the matching
  :class:`~repro.serving.protocol.ServingError` subclass.
* :class:`NetEngine` -- the engine facade :class:`~repro.core.session.QuerySession`
  builds for ``engine="net:HOST:PORT[/ENGINE]"``.  It plans batches
  locally (same deterministic planner the server re-runs), ships
  pre-compiled QLists, and rebuilds a full
  :class:`~repro.distsim.metrics.BatchResult` -- answers, the complete
  simulated ledger via the metrics wire form, and per-query cost rows
  re-attributed from the local plan.  A session pointed at a gateway is
  therefore drop-in: same result type, same counters, same answers as a
  local engine, which is exactly the property the differential tests
  assert.
"""

from __future__ import annotations

import itertools
import socket
from typing import Iterable, Optional, Sequence, Union

from repro.core.plan import BatchPlan, attribute_costs, coerce_plan
from repro.distsim.metrics import BatchResult, EvalResult
from repro.obs.trace import new_trace_id
from repro.serving.protocol import (
    Framer,
    Message,
    MetricsReply,
    MetricsRequest,
    Ping,
    Pong,
    ProtocolError,
    QueryReply,
    QueryRequest,
    Rejected,
    encode_message,
    error_for,
    metrics_from_wire,
)
from repro.xpath.qlist import QList

DEFAULT_CLIENT_TIMEOUT = 30.0


def parse_net_spec(spec: str) -> tuple[str, int, str]:
    """Split ``net:HOST:PORT[/ENGINE]`` into ``(host, port, engine)``.

    ``engine`` is ``""`` when unspecified (the gateway applies its
    default).
    """
    body = spec[4:] if spec.startswith("net:") else spec
    body, _, engine = body.partition("/")
    host, sep, port_text = body.rpartition(":")
    if not sep or not host:
        raise ValueError(f"bad net spec {spec!r}; expected net:HOST:PORT[/ENGINE]")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad port in net spec {spec!r}") from None
    return host, port, engine


class GatewayClient:
    """One synchronous connection to a gateway."""

    def __init__(
        self, host: str, port: int, timeout: float = DEFAULT_CLIENT_TIMEOUT
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._framer = Framer()
        self._inbox: list[Message] = []
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, message: Message) -> None:
        if self._sock is None:
            raise ConnectionError("client is closed")
        self._sock.sendall(encode_message(message))

    def _receive(self) -> Message:
        """The next message off the wire (socket timeout bounded)."""
        while not self._inbox:
            if self._sock is None:
                raise ConnectionError("client is closed")
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("gateway closed the connection")
            self._inbox.extend(self._framer.feed(data))
        return self._inbox.pop(0)

    def _reply_for(self, request_id: int) -> Message:
        """The reply matching ``request_id`` (replies can interleave)."""
        while True:
            message = self._receive()
            if getattr(message, "request_id", None) == request_id:
                return message
            # A reply to some other request on this connection (the
            # session pipelines) -- keep it for its waiter.

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def query(
        self,
        queries: Sequence[Union[str, tuple]],
        engine: str = "",
        trace: bool = False,
    ) -> QueryReply:
        """Evaluate a batch; raises the typed error on rejection.

        ``trace=True`` asks the gateway to record a cross-process span
        tree for this batch; it comes back on ``reply.spans``.
        """
        request_id = next(self._request_ids)
        trace_field = (new_trace_id(),) if trace else ()
        self._send(
            QueryRequest(
                request_id=request_id,
                queries=tuple(queries),
                engine=engine,
                trace=trace_field,
            )
        )
        reply = self._reply_for(request_id)
        if isinstance(reply, Rejected):
            raise error_for(reply.code, reply.message)
        if not isinstance(reply, QueryReply):
            raise ProtocolError(f"expected QueryReply, got {type(reply).__name__}")
        return reply

    def metrics(self) -> MetricsReply:
        """Scrape the server's metrics registry (snapshot + Prometheus text)."""
        request_id = next(self._request_ids)
        self._send(MetricsRequest(request_id=request_id))
        reply = self._reply_for(request_id)
        if not isinstance(reply, MetricsReply):
            raise ProtocolError(f"expected MetricsReply, got {type(reply).__name__}")
        return reply

    def server_stats(self) -> dict[str, float]:
        """Server counters/gauges flattened to ``name{label=value}: n``.

        The client-side window onto ``ServingCoordinator.stats`` and the
        gateway's shed/inflight counters (e.g.
        ``coordinator_events_total{event=retries}``, ``gateway_shed_total``).
        Histograms are skipped -- use :meth:`metrics` for the full snapshot.
        """
        flat: dict[str, float] = {}
        for name, entry in self.metrics().snapshot.items():
            if entry.get("type") == "histogram":
                continue
            for label_str, value in entry.get("values", {}).items():
                key = f"{name}{{{label_str}}}" if label_str else name
                flat[key] = value
        return flat

    def ping(self) -> bool:
        nonce = next(self._request_ids)
        self._send(Ping(nonce=nonce))
        while True:
            message = self._receive()
            if isinstance(message, Pong) and message.nonce == nonce:
                return True

    def close(self) -> None:
        """Idempotent: safe after errors and double closes."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<GatewayClient {self.host}:{self.port} {state}>"


class NetEngine:
    """Engine facade over a gateway: plan locally, evaluate remotely.

    Quacks like :class:`~repro.core.engine.Engine` for the evaluation
    surface (``evaluate`` / ``evaluate_many`` / ``close`` / context
    manager) without being one -- it holds no cluster and no algebra,
    so the session-level operations that need local topology access
    (watch, rebalance) are guarded at the session layer.

    The connection is lazy and self-healing: built on first use,
    dropped after a transport error so the next call reconnects (the
    gateway is stateless per request, so a reconnect loses nothing).
    """

    name = "net"

    def __init__(
        self,
        host: str,
        port: int,
        engine: str = "",
        timeout: float = DEFAULT_CLIENT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.engine_name = engine
        self.timeout = timeout
        #: When True every batch requests a span tree; the latest one is
        #: kept on :attr:`last_spans` (wire tuples -- render with
        #: ``repro.obs.trace.Span.from_wire`` + ``render_spans``).
        self.trace_batches = False
        self.last_spans: tuple = ()
        #: Name of the coordinator that served the latest batch (from
        #: the reply details; ``""`` before the first reply or against
        #: a pre-scale-out gateway).  The routing stickiness tests and
        #: the load harness read this instead of re-parsing details.
        self.last_coordinator = ""
        self._client: Optional[GatewayClient] = None
        self._closed = False

    @classmethod
    def from_spec(cls, spec: str, timeout: float = DEFAULT_CLIENT_TIMEOUT) -> "NetEngine":
        host, port, engine = parse_net_spec(spec)
        return cls(host, port, engine, timeout=timeout)

    def _ensure_client(self) -> GatewayClient:
        if self._closed:
            raise RuntimeError("NetEngine is closed")
        if self._client is None or self._client.closed:
            self._client = GatewayClient(self.host, self.port, timeout=self.timeout)
        return self._client

    def evaluate_many(
        self, batch: Union[BatchPlan, Iterable[Union[str, QList]]]
    ) -> BatchResult:
        """One client batch: same result shape as a local engine's."""
        plan = coerce_plan(batch)
        queries = tuple(
            ("qlist", tuple(tuple(entry) for entry in qlist.to_obj()))
            for qlist in plan.queries
        )
        client = self._ensure_client()
        try:
            reply = client.query(queries, self.engine_name, trace=self.trace_batches)
        except (ProtocolError, ConnectionError, OSError, TimeoutError):
            # The transport is suspect; reconnect on the next call.
            self._drop_client()
            raise
        if self.trace_batches:
            self.last_spans = reply.spans
        metrics = metrics_from_wire(reply.metrics_obj)
        details = dict(reply.details)
        self.last_coordinator = str(details.get("coordinator", ""))
        details["transport"] = "net"
        details["gateway"] = f"{self.host}:{self.port}"
        return BatchResult(
            answers=reply.answers,
            engine=details.get("engine", self.name),
            metrics=metrics,
            per_query=attribute_costs(plan, reply.answers, metrics),
            details=details,
        )

    def evaluate(self, qlist: QList) -> EvalResult:
        return self.evaluate_many([qlist]).single()

    def ping(self) -> bool:
        return self._ensure_client().ping()

    def server_metrics(self) -> MetricsReply:
        """The gateway's registry snapshot (see :meth:`GatewayClient.metrics`)."""
        return self._ensure_client().metrics()

    def _drop_client(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            client.close()

    def close(self) -> None:
        """Idempotent; the engine is unusable afterwards."""
        self._closed = True
        self._drop_client()

    def __enter__(self) -> "NetEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        remote = self.engine_name or "default"
        return f"<NetEngine {self.host}:{self.port} engine={remote}>"


__all__ = [
    "DEFAULT_CLIENT_TIMEOUT",
    "parse_net_spec",
    "GatewayClient",
    "NetEngine",
]
