"""``ServingCluster``: boot a whole serving topology on localhost.

The harness behind the differential tests and the ``repro serve`` CLI:
given a simulated :class:`~repro.distsim.cluster.Cluster`, it boots one
site server per site (optionally replicated), a gateway in front of
them, and hands out clients/sessions pointed at real localhost ports.

Two site modes:

* ``"inline"`` (default) -- every site server runs on one background
  event-loop thread inside this process, over real TCP sockets.  Fast
  enough for property tests that boot hundreds of topologies, yet the
  bytes genuinely cross the loopback interface frame by frame.
* ``"process"`` -- each site is a real child process
  (``python -m repro.serving.site_server``); the boot-two-sites smoke
  and the CLI use this.

Fault hooks: ``proxy_factory`` interposes a (test-supplied) TCP proxy
between the coordinator and each site, ``kill_site`` /
``restart_site`` crash and resurrect individual sites -- a restarted
site rebinds its old port and comes back *empty*, exercising the
coordinator's re-push path.

Teardown is paranoid by design: ``close()`` is idempotent, bounded by
timeouts, and snapshots any asyncio tasks still pending on the serving
loop into :attr:`leaked_tasks` so the lifecycle tests can assert the
tier cleans up after itself.
"""

from __future__ import annotations

import asyncio
import logging
import os
import selectors
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from repro.distsim.cluster import Cluster
from repro.obs.logging import (
    JsonLineHandler,
    emit as obs_emit,
    event_log,
    install_event_log,
    uninstall_event_log,
)
from repro.serving.client import GatewayClient
from repro.serving.coordinator import SiteEndpoint
from repro.serving.gateway import Gateway
from repro.serving.site_server import SiteServer

logger = logging.getLogger("repro.serving.cluster")

#: Environment variable: when set, serving components append their logs
#: under this directory (the CI job uploads it on failure).
LOG_DIR_ENV = "REPRO_SERVING_LOG_DIR"

_RUN_TIMEOUT = 30.0


class _ProcessSite:
    """Handle on one site-server child process."""

    def __init__(self, name: str, host: str, port: int, proc: subprocess.Popen) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.proc = proc

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    @property
    def running(self) -> bool:
        return self.proc.poll() is None


def _spawn_site_process(
    name: str, host: str, port: int, boot_timeout: float = 20.0
) -> _ProcessSite:
    """Start ``python -m repro.serving.site_server`` and harvest its port."""
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "repro.serving.site_server",
        "--host",
        host,
        "--port",
        str(port),
        "--name",
        name,
    ]
    log_dir = os.environ.get(LOG_DIR_ENV)
    if log_dir:
        os.makedirs(log_dir, exist_ok=True)
        command += ["--log-dir", log_dir]
    proc = subprocess.Popen(
        command, env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True
    )
    # Read the "SITE <name> <host> <port>" banner under a hard deadline
    # (a site that never boots must fail the test, not hang it).
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + boot_timeout
    line = ""
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(f"site process {name} exited with {proc.returncode}")
            if selector.select(timeout=0.2):
                line = proc.stdout.readline()
                break
    finally:
        selector.close()
    parts = line.split()
    if len(parts) != 4 or parts[0] != "SITE":
        proc.kill()
        raise RuntimeError(f"site process {name} printed no boot banner (got {line!r})")
    return _ProcessSite(name, parts[2], int(parts[3]), proc)


class ServingCluster:
    """Coordinator + gateway + N site servers on localhost ports."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        replicas: int = 1,
        site_mode: str = "inline",
        host: str = "127.0.0.1",
        gateway_port: int = 0,
        max_inflight: int = 4,
        max_queue: int = 8,
        site_timeout: float = 10.0,
        default_engine: str = "parbox",
        coordinators: int = 1,
        max_workers: Optional[int] = None,
        routing: str = "hash",
        proxy_factory: Optional[Callable] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if site_mode not in ("inline", "process"):
            raise ValueError(f"unknown site_mode {site_mode!r}")
        self.cluster = cluster
        self.replicas = replicas
        self.site_mode = site_mode
        self.host = host
        self.gateway_port = gateway_port
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.site_timeout = site_timeout
        self.default_engine = default_engine
        self.coordinators = coordinators
        self.max_workers = max_workers
        self.routing = routing
        #: ``proxy_factory(site_id, target_host, target_port)`` returns
        #: an object with ``host``/``port`` attributes and async
        #: ``start()``/``stop()``; the coordinator is pointed at the
        #: proxy so tests can mangle frames in transit.
        self.proxy_factory = proxy_factory
        self.gateway: Optional[Gateway] = None
        #: ``site_id -> [server handle per replica]`` (SiteServer or
        #: _ProcessSite, by mode).
        self.sites: dict[str, list] = {}
        self.proxies: list = []
        #: Tasks still pending on the serving loop at close time.
        self.leaked_tasks: list[str] = []
        #: ``server name -> OS pid`` recorded at every boot (inline sites
        #: share this process's pid), so failure artifacts are
        #: attributable even when a site dies before logging anything.
        self.site_pids: dict[str, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._log_handler: Optional[logging.Handler] = None
        self._installed_event_log = False
        self._closed = False

    # ------------------------------------------------------------------
    # Loop plumbing
    # ------------------------------------------------------------------
    def run(self, coro, timeout: float = _RUN_TIMEOUT):
        """Run a coroutine on the serving loop from the caller thread."""
        if self._loop is None:
            raise RuntimeError("serving cluster is not started")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout=timeout)

    def _start_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=runner, name="repro-serving-loop", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=10)

    # ------------------------------------------------------------------
    # Boot / teardown
    # ------------------------------------------------------------------
    def start(self) -> "ServingCluster":
        if self._loop is not None:
            raise RuntimeError("serving cluster already started")
        log_dir = os.environ.get(LOG_DIR_ENV)
        if log_dir:
            # JSON-lines event logs, one file per component, flushed per
            # line and size-rotated (the old plain FileHandler buffered
            # and never rotated, so crashed runs uploaded empty files).
            if event_log() is None:
                install_event_log(log_dir)
                self._installed_event_log = True
            self._log_handler = JsonLineHandler(event_log())
            serving_logger = logging.getLogger("repro.serving")
            serving_logger.addHandler(self._log_handler)
            serving_logger.setLevel(logging.INFO)
        self._start_loop()
        try:
            endpoints: dict[str, list[SiteEndpoint]] = {}
            for site_id in sorted(self.cluster.source_tree().sites()):
                servers, eps = [], []
                for replica in range(self.replicas):
                    name = site_id if self.replicas == 1 else f"{site_id}r{replica}"
                    server, host, port = self._boot_site(name)
                    servers.append(server)
                    if self.proxy_factory is not None:
                        proxy = self.proxy_factory(site_id, host, port)
                        self.run(proxy.start())
                        self.proxies.append(proxy)
                        host, port = proxy.host, proxy.port
                    eps.append(SiteEndpoint(host, port))
                self.sites[site_id] = servers
                endpoints[site_id] = eps
            self.gateway = Gateway(
                self.cluster,
                endpoints,
                host=self.host,
                port=self.gateway_port,
                max_inflight=self.max_inflight,
                max_queue=self.max_queue,
                site_timeout=self.site_timeout,
                default_engine=self.default_engine,
                coordinators=self.coordinators,
                max_workers=self.max_workers,
                routing=self.routing,
            )
            self.run(self.gateway.start())
        except BaseException:
            self.close()
            raise
        return self

    def _boot_site(self, name: str, port: int = 0):
        """Start one site server; returns ``(handle, host, port)``."""
        if self.site_mode == "inline":
            server = SiteServer(name=name, host=self.host, port=port)
            self.run(server.start())
            handle, host, bound = server, server.host, server.port
            pid = os.getpid()
        else:
            site = _spawn_site_process(name, self.host, port)
            handle, host, bound = site, site.host, site.port
            pid = site.proc.pid
        self.site_pids[name] = pid
        obs_emit(
            "cluster",
            "site-boot",
            site=name,
            pid=pid,
            host=host,
            port=bound,
            mode=self.site_mode,
        )
        return handle, host, bound

    @property
    def address(self) -> str:
        if self.gateway is None:
            raise RuntimeError("serving cluster is not started")
        return f"{self.gateway.host}:{self.gateway.port}"

    def client(self, timeout: float = 30.0) -> GatewayClient:
        return GatewayClient(self.gateway.host, self.gateway.port, timeout=timeout)

    def session(self, engine: str = "", **kwargs):
        """A :class:`~repro.core.session.QuerySession` over this gateway."""
        from repro.core.session import QuerySession  # local: avoids an import cycle

        spec = f"net:{self.address}" + (f"/{engine}" if engine else "")
        return QuerySession(None, engine=spec, **kwargs)

    # ------------------------------------------------------------------
    # Harness hooks (load tests, fault injection)
    # ------------------------------------------------------------------
    def set_site_delay(self, seconds: float, site_id: Optional[str] = None) -> None:
        """Add an artificial per-request service delay to site servers.

        The load harness's overload knob: with every site ``seconds``
        slower, arrival rates beyond ``max_inflight + max_queue`` x
        service rate deterministically shed at the gateway.  Inline
        mode only -- process sites are separate interpreters and do not
        expose the hook.
        """
        if self.site_mode != "inline":
            raise RuntimeError("set_site_delay requires site_mode='inline'")
        for current_id, servers in self.sites.items():
            if site_id is not None and current_id != site_id:
                continue
            for server in servers:
                server.delay_seconds = seconds

    def scrape(self) -> dict:
        """The gateway's metrics-registry snapshot, via a loopback client."""
        with self.client(timeout=10.0) as client:
            return client.metrics().snapshot

    def kill_site(self, site_id: str, replica: int = 0) -> None:
        """Crash one site server (connections reset, port freed)."""
        server = self.sites[site_id][replica]
        if self.site_mode == "inline":
            self.run(server.stop())
        else:
            server.kill()
        logger.info("killed site %s replica %d", site_id, replica)

    def restart_site(self, site_id: str, replica: int = 0) -> None:
        """Boot a fresh, *empty* server on the killed replica's old port.

        The coordinator's next request gets ``unknown-fragment``,
        re-pushes the site's fragments and proceeds -- no operator
        action, which is the recovery property the differential tests
        exercise.
        """
        old = self.sites[site_id][replica]
        name = getattr(old, "name", site_id)
        server, _, _ = self._boot_site(name, port=old.port)
        self.sites[site_id][replica] = server
        logger.info("restarted site %s replica %d on port %d", site_id, replica, old.port)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _pending_tasks(self) -> list[str]:
        tasks = [
            task
            for task in asyncio.all_tasks(self._loop)
            if not task.done() and task is not asyncio.current_task(self._loop)
        ]
        return [repr(task) for task in tasks]

    def close(self) -> None:
        """Stop everything; record still-pending loop tasks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            if self.gateway is not None and self._loop is not None:
                try:
                    self.run(self.gateway.stop())
                except Exception as error:  # noqa: BLE001 - teardown best effort
                    logger.warning("gateway stop failed: %s", error)
            for servers in self.sites.values():
                for server in servers:
                    try:
                        if self.site_mode == "inline":
                            if server.running:
                                self.run(server.stop())
                        else:
                            server.kill()
                    except Exception as error:  # noqa: BLE001 - teardown best effort
                        logger.warning("site stop failed: %s", error)
            for proxy in self.proxies:
                try:
                    self.run(proxy.stop())
                except Exception as error:  # noqa: BLE001 - teardown best effort
                    logger.warning("proxy stop failed: %s", error)
            if self._loop is not None:
                future = asyncio.run_coroutine_threadsafe(
                    asyncio.sleep(0), self._loop
                )
                try:
                    future.result(timeout=5)
                    self.leaked_tasks = [
                        description
                        for description in self._run_sync(self._pending_tasks)
                    ]
                except Exception:  # noqa: BLE001 - loop already wedged
                    pass
        finally:
            loop, self._loop = self._loop, None
            if loop is not None:
                loop.call_soon_threadsafe(loop.stop)
                if self._thread is not None:
                    self._thread.join(timeout=10)
                loop.close()
            if self._log_handler is not None:
                logging.getLogger("repro.serving").removeHandler(self._log_handler)
                self._log_handler.close()
                self._log_handler = None
            if self._installed_event_log:
                # Only tear down a log we installed (nested harnesses
                # must not close each other's streams).
                uninstall_event_log()
                self._installed_event_log = False

    def _run_sync(self, fn):
        """Run a plain callable on the loop thread and wait for it."""
        done = threading.Event()
        box: list = []

        def call() -> None:
            try:
                box.append(fn())
            finally:
                done.set()

        self._loop.call_soon_threadsafe(call)
        done.wait(timeout=5)
        return box[0] if box else []

    def __enter__(self) -> "ServingCluster":
        return self.start() if self._loop is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("up" if self._loop else "new")
        return (
            f"<ServingCluster {len(self.sites)} site(s) x{self.replicas} "
            f"{self.site_mode} {state}>"
        )


__all__ = ["ServingCluster", "LOG_DIR_ENV"]
