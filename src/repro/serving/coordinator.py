"""The serving coordinator: engines unchanged, sites across the network.

The one architectural trick of the serving tier lives here.  Every
engine's parallel stage already funnels through one interface --
:meth:`repro.distsim.executors.SiteExecutor.run_jobs` -- so making the
whole engine family (ParBoX, FullDist, Lazy, Hybrid) run over real
sockets takes exactly one new executor: :class:`RemoteSiteExecutor`
ships each :class:`~repro.distsim.executors.SiteJob` to a site-server
process and rebuilds the :class:`~repro.distsim.executors.SiteOutcome`
from the reply.  The engines cannot tell the difference, which is also
why the simulated ledger survives as the differential oracle: visits,
messages, byte counts and operation counts are computed engine-side
from the decoded triplets, deterministically, exactly as under the
serial executor.

Failure contract (the part the fault-injection suite holds us to):

* every attempt is bounded by ``site_timeout`` -- a dead, slow or
  byte-dropping site can never hang a query;
* a failed attempt is retried **exactly once**, against the site's
  replica endpoint when one is configured, else against a fresh
  connection to the same endpoint;
* a second failure raises :class:`~repro.serving.protocol.SiteUnavailable`
  -- a typed error the gateway forwards as a typed rejection, never a
  hang, never a wrong answer;
* a site that answers ``unknown-fragment`` (it restarted and lost its
  residents) gets its fragments re-pushed and the request re-issued on
  the same connection -- restarts self-heal without operator action.

The coordinator owns the placement truth: fragments are pushed to each
site link once per connection (and re-pushed after reconnects), so
steady-state queries ship fragment *ids* only.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.plan import BatchPlan, QueryCache, plan_batch
from repro.distsim.cluster import Cluster
from repro.distsim.executors import (
    SiteExecutor,
    SiteJob,
    SiteOutcome,
    algebra_wire_name,
    outcome_from_wire,
    resident_fragment_wire,
)
from repro.distsim.metrics import BatchResult
from repro.obs.logging import emit as obs_emit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTimer, TraceContext
from repro.serving.protocol import (
    ERR_STALE_FRAGMENT,
    ERR_UNKNOWN_FRAGMENT,
    ErrorReply,
    ExecuteReply,
    ExecuteRequest,
    FrameError,
    LoadFragments,
    Loaded,
    Message,
    Ping,
    Pong,
    ProtocolError,
    RemoteQueryError,
    SiteUnavailable,
    read_message,
    write_message,
)
from repro.xpath.parser import QueryParseError
from repro.xpath.qlist import QList

logger = logging.getLogger("repro.serving.coordinator")

#: Engines a coordinator will instantiate by request.  The distributed
#: subset only -- NaiveCentralized pulls whole fragments, which the wire
#: protocol deliberately has no message for.
SERVABLE_ENGINES = ("parbox", "fulldist", "lazy", "hybrid")

#: Default per-attempt deadline for one site request.
DEFAULT_SITE_TIMEOUT = 10.0

#: Bound on a coordinator's compiled-plan cache (distinct query batches,
#: LRU).  Standing/subscription workloads fit in a handful of entries;
#: the bound only exists so an adversarial stream of unique batches
#: cannot grow coordinator memory without limit.
PLAN_CACHE_SIZE = 256


@dataclass(frozen=True)
class SiteEndpoint:
    """Where one (replica of one) site server listens."""

    host: str
    port: int

    def address(self) -> str:
        return f"{self.host}:{self.port}"


class SiteLink:
    """One managed connection to one site-server endpoint.

    Multiplexes concurrent execute requests over a single socket,
    correlated by request id; tracks which logical sites' fragments
    have been pushed on the *current* connection so a reconnect (the
    site restarted) naturally forgets and re-pushes.
    """

    def __init__(self, endpoint: SiteEndpoint, connect_timeout: float) -> None:
        self.endpoint = endpoint
        self.connect_timeout = connect_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: dict[int, asyncio.Future] = {}
        self._load_waiters: list[asyncio.Future] = []
        self._pong_waiters: dict[int, asyncio.Future] = {}
        self.loaded_sites: set[str] = set()
        self._connect_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()
        self._drain_lock = asyncio.Lock()
        self._needs_drain = False
        self.load_lock = asyncio.Lock()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def ensure(self) -> None:
        """Connect (or reconnect) the link; idempotent when healthy."""
        async with self._connect_lock:
            if self._writer is not None:
                return
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.endpoint.host, self.endpoint.port),
                timeout=self.connect_timeout,
            )
            self._reader, self._writer = reader, writer
            self.loaded_sites = set()
            self._read_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        error: Exception = ConnectionResetError("site connection closed")
        try:
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                self._route(message)
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        finally:
            self._teardown(error)

    def _route(self, message: Message) -> None:
        if isinstance(message, (ExecuteReply, ErrorReply)):
            future = self._pending.pop(message.request_id, None)
            if future is not None and not future.done():
                future.set_result(message)
            # else: a reply to a request we already timed out on
            # (or a duplicated frame) -- discard.
        elif isinstance(message, Loaded):
            if self._load_waiters:
                waiter = self._load_waiters.pop(0)
                if not waiter.done():
                    waiter.set_result(message)
        elif isinstance(message, Pong):
            waiter = self._pong_waiters.pop(message.nonce, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(message)
        else:
            logger.warning("link %s: unexpected %s", self.endpoint.address(), type(message).__name__)

    def _teardown(self, error: Exception) -> None:
        """Fail every waiter and reset the connection state."""
        writer, self._writer = self._writer, None
        self._reader = None
        self.loaded_sites = set()
        if writer is not None:
            writer.transport.abort()
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        for waiter in self._load_waiters + list(self._pong_waiters.values()):
            if not waiter.done():
                waiter.set_exception(error)
        self._load_waiters.clear()
        self._pong_waiters.clear()

    async def _send(self, message: Message) -> None:
        """Write one frame; coalesce concurrent senders' drains.

        ``write_message`` only fills the transport buffer, so a batch
        of concurrent requests on this link pipelines: every sender
        writes its frame immediately, then the first one through the
        drain lock flushes the socket for all of them -- N frames, one
        drain pass, instead of one drain await per request.
        """
        writer = self._writer
        if writer is None:
            raise ConnectionResetError(f"link {self.endpoint.address()} is down")
        async with self._write_lock:
            write_message(writer, message)
            self._needs_drain = True
        async with self._drain_lock:
            if self._needs_drain:
                self._needs_drain = False
                writer = self._writer
                if writer is not None:  # torn down between write and drain
                    await writer.drain()

    async def request(self, message: ExecuteRequest, timeout: float) -> Message:
        """Send one execute request and await its correlated reply."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[message.request_id] = future
        try:
            await self._send(message)
            return await asyncio.wait_for(future, timeout=timeout)
        finally:
            self._pending.pop(message.request_id, None)

    async def load(self, message: LoadFragments, timeout: float) -> Message:
        """Push fragments and await the acknowledgement."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._load_waiters.append(future)
        try:
            await self._send(message)
            return await asyncio.wait_for(future, timeout=timeout)
        finally:
            if future in self._load_waiters:
                self._load_waiters.remove(future)

    async def ping(self, nonce: int, timeout: float) -> Message:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pong_waiters[nonce] = future
        try:
            await self._send(Ping(nonce=nonce))
            return await asyncio.wait_for(future, timeout=timeout)
        finally:
            self._pong_waiters.pop(nonce, None)

    def drop(self) -> None:
        """Abort the connection (a failed attempt poisons the socket)."""
        self._teardown(ConnectionResetError(f"link {self.endpoint.address()} dropped"))
        if self._read_task is not None:
            self._read_task.cancel()
            self._read_task = None

    async def aclose(self) -> None:
        task = self._read_task
        self.drop()
        if task is not None:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass


class Coordinator:
    """Dispatches site jobs to networked site servers; owns placement.

    Lives on one asyncio event loop (bound via :meth:`bind_loop`, done
    by the gateway at startup); the synchronous :meth:`evaluate` runs on
    a worker thread and bridges into the loop through
    :class:`RemoteSiteExecutor`.
    """

    def __init__(
        self,
        cluster: Cluster,
        endpoints: dict[str, Sequence[SiteEndpoint]],
        site_timeout: float = DEFAULT_SITE_TIMEOUT,
        connect_timeout: float = 5.0,
        registry: Optional[MetricsRegistry] = None,
        name: str = "c0",
        plan_cache_size: int = PLAN_CACHE_SIZE,
    ) -> None:
        missing = set(cluster.source_tree().sites()) - set(endpoints)
        if missing:
            raise ValueError(f"no endpoint configured for site(s) {sorted(missing)}")
        #: Pool-unique name (``c0``, ``c1``, ...): the label new
        #: per-coordinator metric series and reply details carry.
        self.name = name
        self.cluster = cluster
        self.endpoints = {site: tuple(eps) for site, eps in endpoints.items()}
        self.site_timeout = site_timeout
        self.connect_timeout = connect_timeout
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        #: Observable dispatch counters: "attempts", "retries",
        #: "repushes", "failures" (the retry tests read these).
        self.stats: Counter = Counter()
        #: Metrics registry mirroring ``stats`` (shared with the gateway
        #: when embedded, so one MetricsReply covers both components).
        self.registry = registry if registry is not None else MetricsRegistry("coordinator")
        self._events = self.registry.counter(
            "coordinator_events_total",
            "Dispatch events: attempts, retries, repushes, failures",
            labelnames=("event",),
        )
        #: Per-thread (trace context, span sink) set for the duration of
        #: one evaluate() call; RemoteSiteExecutor.run_jobs runs on the
        #: same worker thread, so it reads the batch's context here.
        self._trace_local = threading.local()
        self.cache = QueryCache()
        #: Compiled-plan cache: request wire form -> ready BatchPlan.
        #: A hit skips ``_coerce_query`` re-validation *and* the batch
        #: planner; plans are frozen dataclasses over immutable QLists,
        #: so one plan object serves concurrent worker threads.
        self._plan_cache: OrderedDict[tuple, BatchPlan] = OrderedDict()
        self._plan_cache_size = plan_cache_size
        self._plan_lock = threading.Lock()
        self._plan_events = self.registry.counter(
            "coordinator_plan_cache_total",
            "Compiled-plan cache lookups by coordinator and result",
            labelnames=("coordinator", "result"),
        )
        self._links: dict[SiteEndpoint, SiteLink] = {}
        self._request_ids = itertools.count(1)
        self._executor = RemoteSiteExecutor(self)
        self._engines: dict[str, object] = {}
        self._engine_lock = threading.Lock()
        self._closed = False

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop

    def _count(self, event: str) -> None:
        """One dispatch event: legacy Counter and registry stay in step."""
        self.stats[event] += 1
        self._events.labels(event=event).inc()

    # ------------------------------------------------------------------
    # Job dispatch (async, on the serving loop)
    # ------------------------------------------------------------------
    def _link(self, endpoint: SiteEndpoint) -> SiteLink:
        link = self._links.get(endpoint)
        if link is None:
            link = self._links[endpoint] = SiteLink(endpoint, self.connect_timeout)
        return link

    async def execute_job(
        self,
        job: SiteJob,
        trace: Optional[TraceContext] = None,
        sink: Optional[list] = None,
    ) -> SiteOutcome:
        """Run one site job remotely: two bounded attempts, then typed failure.

        When ``trace`` is set, a per-job dispatch span (parented on the
        batch context) wraps the attempts, the site sees the dispatch
        span as its parent, and every finished span lands in ``sink``
        as a wire tuple -- appended only from the serving loop thread.
        """
        candidates = self.endpoints[job.site_id]
        # Attempt plan: primary, then the replica when one exists, else
        # a fresh connection to the primary (covers restarts in place).
        attempts = [candidates[0], candidates[1] if len(candidates) > 1 else candidates[0]]
        timer: Optional[SpanTimer] = None
        if trace is not None:
            timer = SpanTimer(
                trace.trace_id,
                trace.span_id,
                f"dispatch:{job.site_id}",
                "coordinator",
                site=job.site_id,
            )
        trace_id = trace.trace_id if trace is not None else ""
        last_error: Optional[Exception] = None
        try:
            for attempt_index, endpoint in enumerate(attempts):
                link = self._link(endpoint)
                self._count("attempts")
                if attempt_index:
                    self._count("retries")
                    obs_emit(
                        "coordinator",
                        "retry",
                        site=job.site_id,
                        endpoint=endpoint.address(),
                        trace_id=trace_id,
                    )
                try:
                    outcome = await self._attempt(link, job, timer, sink)
                    if timer is not None and sink is not None:
                        sink.append(timer.finish(attempts=attempt_index + 1).to_wire())
                        timer = None
                    return outcome
                except RemoteQueryError:
                    raise  # deterministic rejection; a retry would fail identically
                except (ProtocolError, ConnectionError, OSError, asyncio.TimeoutError) as error:
                    last_error = error
                    logger.warning(
                        "site %s attempt %d via %s failed: %s",
                        job.site_id,
                        attempt_index + 1,
                        endpoint.address(),
                        error,
                    )
                    link.drop()
            self._count("failures")
            obs_emit(
                "coordinator",
                "failure",
                site=job.site_id,
                error=f"{type(last_error).__name__}: {last_error}",
                trace_id=trace_id,
            )
            raise SiteUnavailable(
                f"site {job.site_id} unavailable after retry "
                f"({type(last_error).__name__}: {last_error})"
            )
        finally:
            if timer is not None and sink is not None:
                sink.append(timer.finish(failed=True).to_wire())

    async def execute_jobs(
        self,
        jobs: Sequence[SiteJob],
        trace: Optional[TraceContext] = None,
        sink: Optional[list] = None,
    ) -> list[SiteOutcome]:
        """Run a whole batch of site jobs concurrently, order preserved.

        One coroutine submission covers the entire fan-out (the
        executor thread wakes the loop once per batch, not once per
        job), and because every job writes its request before any
        awaits its reply, the per-link drain coalescing in
        :meth:`SiteLink._send` pipelines all requests sharing a link
        into one socket flush.  Every job settles before the first
        failure is re-raised -- each is self-bounded by the attempt
        timeouts, so waiting for stragglers cannot hang.
        """
        results = await asyncio.gather(
            *(self.execute_job(job, trace=trace, sink=sink) for job in jobs),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    async def _attempt(
        self,
        link: SiteLink,
        job: SiteJob,
        timer: Optional[SpanTimer] = None,
        sink: Optional[list] = None,
    ) -> SiteOutcome:
        await link.ensure()
        await self._ensure_loaded(link, job.site_id)
        request = self._request_for(job, timer)
        reply = await link.request(request, self.site_timeout)
        if isinstance(reply, ErrorReply) and reply.code in (
            ERR_UNKNOWN_FRAGMENT,
            ERR_STALE_FRAGMENT,
        ):
            # The site restarted and lost its residents, or holds copies
            # whose epochs predate an update: re-push and re-issue once
            # on the same healthy connection.
            self._count("repushes")
            obs_emit(
                "coordinator",
                "repush",
                site=job.site_id,
                code=reply.code,
                trace_id=timer.trace_id if timer is not None else "",
            )
            await self._push_fragments(link, job.site_id)
            reply = await link.request(self._request_for(job, timer), self.site_timeout)
        if isinstance(reply, ErrorReply):
            raise RemoteQueryError(f"site {job.site_id}: [{reply.code}] {reply.message}")
        assert isinstance(reply, ExecuteReply)
        if sink is not None and reply.spans:
            sink.extend(reply.spans)
        return outcome_from_wire(job.site_id, reply.results, reply.seconds)

    def _request_for(self, job: SiteJob, timer: Optional[SpanTimer] = None) -> ExecuteRequest:
        return ExecuteRequest(
            request_id=next(self._request_ids),
            site_id=job.site_id,
            fragment_ids=tuple(f.fragment_id for f in job.fragments),
            qlist_obj=tuple(tuple(entry) for entry in job.qlist.to_obj()),
            algebra=algebra_wire_name(job.algebra),
            segments=job.segments,
            label=job.label,
            epochs=tuple(f.epoch for f in job.fragments),
            trace=timer.context().to_wire() if timer is not None else (),
        )

    async def _ensure_loaded(self, link: SiteLink, site_id: str) -> None:
        async with link.load_lock:
            if site_id in link.loaded_sites:
                return
            await self._push_fragments(link, site_id)

    async def _push_fragments(self, link: SiteLink, site_id: str) -> None:
        fragment_ids = self.cluster.source_tree().fragments_of(site_id)
        wires = tuple(
            resident_fragment_wire(self.cluster.fragment(fid)) for fid in fragment_ids
        )
        await link.load(LoadFragments(fragments=wires), self.site_timeout)
        link.loaded_sites.add(site_id)
        logger.info(
            "pushed %d fragment(s) of %s to %s", len(wires), site_id, link.endpoint.address()
        )

    async def ping_all(self, timeout: Optional[float] = None) -> dict[str, bool]:
        """Liveness sweep over every primary endpoint (health checks)."""
        deadline = timeout or self.connect_timeout
        health: dict[str, bool] = {}
        for site_id, candidates in sorted(self.endpoints.items()):
            link = self._link(candidates[0])
            try:
                await link.ensure()
                await link.ping(next(self._request_ids), deadline)
                health[site_id] = True
            except (ProtocolError, ConnectionError, OSError, asyncio.TimeoutError):
                health[site_id] = False
        return health

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        for link in list(self._links.values()):
            await link.aclose()
        self._links.clear()
        self.close_engines()

    # ------------------------------------------------------------------
    # Query evaluation (sync, on a gateway worker thread)
    # ------------------------------------------------------------------
    def job_deadline(self) -> float:
        """Worst-case wall time of one dispatched job, with margin.

        Two attempts, each bounded by connect + push + two requests
        (the re-push path issues the request twice), plus scheduling
        slack -- the outer bound the executor thread waits on so even a
        lost wakeup cannot hang a query forever.
        """
        return 2 * (self.connect_timeout + 3 * self.site_timeout) + 5.0

    def _engine_for(self, name: str):
        from repro.core import ENGINE_REGISTRY  # local: avoids an import cycle

        key = (name or SERVABLE_ENGINES[0]).lower()
        if key not in SERVABLE_ENGINES:
            raise RemoteQueryError(
                f"engine {name!r} is not servable; choose from {list(SERVABLE_ENGINES)}"
            )
        with self._engine_lock:
            engine = self._engines.get(key)
            if engine is None:
                # Built over the shared remote executor *instance*, so
                # the engine never tries to close it (ownership rule).
                engine = ENGINE_REGISTRY[key](self.cluster, executor=self._executor)
                self._engines[key] = engine
        return engine

    def _coerce_query(self, query: Union[str, tuple]) -> QList:
        if isinstance(query, str):
            try:
                return self.cache.qlist(query)
            except QueryParseError as error:
                raise RemoteQueryError(f"bad query {query!r}: {error}") from None
        try:
            tag, obj = query
            if tag != "qlist":
                raise ValueError(f"unknown query tag {tag!r}")
            return QList.from_obj([list(entry) for entry in obj])
        except RemoteQueryError:
            raise
        except Exception as error:  # noqa: BLE001 - typed toward the client
            raise RemoteQueryError(f"undecodable precompiled query: {error}") from None

    @staticmethod
    def _plan_key(queries: Sequence[Union[str, tuple]]) -> Optional[tuple]:
        """A hashable canonical form of a request's query batch.

        ``None`` marks the batch uncachable (malformed shapes fall
        through to ``_coerce_query``, whose typed bad-request error
        must not be pre-empted by cache plumbing).
        """
        key = []
        for query in queries:
            if isinstance(query, str):
                key.append(query)
                continue
            try:
                tag, obj = query
                key.append((str(tag), tuple(tuple(entry) for entry in obj)))
            except (TypeError, ValueError):
                return None
        return tuple(key)

    def _plan_for(self, queries: Sequence[Union[str, tuple]]) -> BatchPlan:
        """Plan a request batch through the LRU compiled-plan cache.

        A hit returns the previously planned ``BatchPlan`` without
        re-validating (or re-planning) anything -- the steady-state
        path for standing queries, whose batches arrive bit-identical
        request after request.  Lookups count into
        ``coordinator_plan_cache_total{coordinator,result}``.
        """
        key = self._plan_key(queries)
        if key is not None:
            try:
                with self._plan_lock:
                    plan = self._plan_cache.get(key)
                    if plan is not None:
                        self._plan_cache.move_to_end(key)
            except TypeError:  # unhashable entry contents: uncachable
                key = None
                plan = None
            if plan is not None:
                self._plan_events.labels(coordinator=self.name, result="hit").inc()
                return plan
        plan = plan_batch([self._coerce_query(query) for query in queries])
        self._plan_events.labels(coordinator=self.name, result="miss").inc()
        if key is not None:
            with self._plan_lock:
                self._plan_cache[key] = plan
                while len(self._plan_cache) > self._plan_cache_size:
                    self._plan_cache.popitem(last=False)
        return plan

    def plan_cache_stats(self) -> dict:
        """Hit/miss/entry counts of the compiled-plan cache (tests, CLI)."""
        hits = self._plan_events.labels(coordinator=self.name, result="hit").value
        misses = self._plan_events.labels(coordinator=self.name, result="miss").value
        with self._plan_lock:
            entries = len(self._plan_cache)
        return {"entries": entries, "hits": int(hits), "misses": int(misses)}

    def evaluate(
        self,
        queries: Sequence[Union[str, tuple]],
        engine_name: str,
        trace: Optional[TraceContext] = None,
        span_sink: Optional[list] = None,
    ) -> BatchResult:
        """Plan and evaluate one client batch (runs on a worker thread).

        Replans server-side from the shipped queries; the planner is
        deterministic, so the client's plan and this one slice the
        combined answer vector identically -- which is what lets the
        client reattribute per-query costs from the returned ledger.

        ``trace``/``span_sink`` thread the batch's trace context to the
        executor through a thread-local: the engine's parallel stage
        calls :meth:`RemoteSiteExecutor.run_jobs` on this same thread.
        """
        if self.loop is None:
            raise RuntimeError("coordinator not bound to an event loop")
        engine = self._engine_for(engine_name)
        plan = self._plan_for(queries)
        self._trace_local.ctx = (trace, span_sink)
        try:
            return engine.evaluate_many(plan)
        finally:
            self._trace_local.ctx = (None, None)

    def close_engines(self) -> None:
        with self._engine_lock:
            engines, self._engines = list(self._engines.values()), {}
        for engine in engines:
            engine.close()


class RemoteSiteExecutor(SiteExecutor):
    """Site jobs over the network: the executor that makes engines remote.

    ``run_jobs`` is called on a worker thread inside an engine's
    parallel stage; it submits the whole batch to the serving loop as
    **one** :meth:`Coordinator.execute_jobs` coroutine (one loop wakeup
    per batch; the jobs still fan out concurrently inside the loop --
    sites evaluate in parallel for real) and blocks on the ordered
    results.  Per-job failure semantics are the coordinator's: bounded
    attempts, one retry, then
    :class:`~repro.serving.protocol.SiteUnavailable`.
    """

    name = "net"

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        if not jobs:
            return []
        loop = self.coordinator.loop
        if loop is None or not loop.is_running():
            raise RuntimeError("serving loop is not running")
        # Jobs run concurrently, so one job's worst case bounds the
        # batch; the per-job slack only covers loop scheduling.
        deadline = self.coordinator.job_deadline() + 0.1 * len(jobs)
        # The batch's trace context (set by Coordinator.evaluate on this
        # very thread); jobs dispatched outside evaluate are untraced.
        trace, sink = getattr(self.coordinator._trace_local, "ctx", (None, None))
        future = asyncio.run_coroutine_threadsafe(
            self.coordinator.execute_jobs(list(jobs), trace=trace, sink=sink), loop
        )
        try:
            return future.result(timeout=deadline)
        except BaseException:
            future.cancel()
            raise

    def close(self) -> None:
        """No-op: the links belong to the coordinator."""


__all__ = [
    "SERVABLE_ENGINES",
    "DEFAULT_SITE_TIMEOUT",
    "PLAN_CACHE_SIZE",
    "SiteEndpoint",
    "SiteLink",
    "Coordinator",
    "RemoteSiteExecutor",
]
