"""The serving tier's length-prefixed binary wire protocol.

One frame = a fixed header (magic, message kind, payload length) plus a
pickled payload::

    +-------+------+----------------+=================+
    | magic | kind | payload length |     payload     |
    | 2 B   | 1 B  | 4 B big-endian | <length> bytes  |
    +-------+------+----------------+=================+

Every message is a frozen dataclass with a ``KIND`` byte and a
field-tuple wire form; payloads are pickled field tuples (the same
transport the process executor uses -- compact triplets, QList objects
and fragment XML all ride through unchanged).  The framing layer is
deliberately paranoid: **any** malformed input -- wrong magic, oversized
length, a payload that does not unpickle, a field tuple with the wrong
shape -- raises a *typed* :class:`ProtocolError` subclass, never an
arbitrary exception and never a hang.  The fuzz tests in
``tests/test_serving_protocol.py`` hold the framer to that contract
with random byte prefixes.

Failure taxonomy:

* :class:`FrameError` -- the byte stream itself is broken (bad magic,
  length over :data:`MAX_PAYLOAD_BYTES`, truncation mid-frame).  The
  connection is unrecoverable: a :class:`Framer` poisons itself after
  raising and the peer must drop the socket.
* :class:`PayloadError` -- the frame was well-formed but its payload
  did not decode to the declared message kind.  Also fatal for the
  connection (the stream cannot be trusted), kept distinct because the
  tests and logs care which layer rejected the input.
* :class:`ServingError` and its subclasses -- application-level typed
  failures carried *inside* well-formed :class:`Rejected` /
  :class:`ErrorReply` messages: :class:`Overloaded` (the gateway shed
  the request), :class:`SiteUnavailable` (a site stayed unreachable
  after the retry), :class:`RemoteQueryError` (the request itself was
  bad or the server failed internally).
"""

from __future__ import annotations

import asyncio
import io
import pickle
import struct
from dataclasses import MISSING, dataclass, fields
from typing import Optional

from repro.distsim.metrics import Metrics

#: Protocol magic: the first two bytes of every frame.
MAGIC = b"RP"
#: Frame header: magic, kind byte, payload length (big-endian u32).
HEADER = struct.Struct("!2sBI")
#: Hard ceiling on one frame's payload.  Generous for fragment pushes
#: (a whole site's XML rides one LoadFragments), tight enough that a
#: corrupt length field cannot make a reader buffer gigabytes.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024
#: Bumped on incompatible wire changes; checked nowhere yet but carried
#: in Ping so mixed deployments can at least be diagnosed.
PROTOCOL_VERSION = 1


# ---------------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------------


class ProtocolError(Exception):
    """Base class: the wire layer rejected some input."""


class FrameError(ProtocolError):
    """The byte stream is not a valid frame sequence (drop the connection)."""


class PayloadError(ProtocolError):
    """A well-framed payload did not decode to its declared message kind."""


class ServingError(Exception):
    """Base class for application-level serving failures."""

    #: Wire code carried in Rejected/ErrorReply messages.
    code = "error"


class Overloaded(ServingError):
    """The gateway's admission control shed this request."""

    code = "overloaded"


class SiteUnavailable(ServingError):
    """A site stayed unreachable after the per-site retry."""

    code = "site-unavailable"


class RemoteQueryError(ServingError):
    """The server rejected the request (bad query/engine) or failed on it."""

    code = "bad-request"


#: Error codes carried by Rejected / ErrorReply messages.
ERR_OVERLOADED = Overloaded.code
ERR_SITE_UNAVAILABLE = SiteUnavailable.code
ERR_BAD_REQUEST = RemoteQueryError.code
ERR_UNKNOWN_FRAGMENT = "unknown-fragment"
ERR_STALE_FRAGMENT = "stale-fragment"
ERR_INTERNAL = "internal"


def error_for(code: str, message: str) -> ServingError:
    """The client-side exception for a typed rejection code."""
    for cls in (Overloaded, SiteUnavailable, RemoteQueryError):
        if code == cls.code:
            return cls(message)
    return ServingError(f"[{code}] {message}")


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Message:
    """Base message: subclasses set ``KIND`` and declare their fields."""

    KIND = 0

    def to_fields(self) -> tuple:
        return tuple(getattr(self, f.name) for f in fields(self))

    @classmethod
    def from_fields(cls, payload_fields: tuple) -> "Message":
        declared = fields(cls)
        # Trailing fields with defaults may be omitted on the wire, so
        # a newer message class still decodes an older peer's frames.
        required = sum(1 for f in declared if f.default is MISSING)
        if not isinstance(payload_fields, tuple) or not (
            required <= len(payload_fields) <= len(declared)
        ):
            raise PayloadError(
                f"{cls.__name__} expects {len(declared)} fields, "
                f"got {type(payload_fields).__name__} of "
                f"{len(payload_fields) if isinstance(payload_fields, tuple) else '?'}"
            )
        message = cls(*payload_fields)
        message.validate()
        return message

    def validate(self) -> None:
        """Subclasses raise :class:`PayloadError` on shape violations."""


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise PayloadError(what)


def _require_trace(trace: object) -> None:
    """A trace field is () (off), (trace_id,) or (trace_id, span_id)."""
    _require(
        isinstance(trace, tuple)
        and len(trace) <= 2
        and all(isinstance(part, str) for part in trace),
        "trace must be a tuple of at most two id strings",
    )


def _require_spans(spans: object) -> None:
    """Span wire forms: 8-tuples of scalars plus a plain attrs dict
    (see :meth:`repro.obs.trace.Span.to_wire`)."""
    _require(isinstance(spans, tuple), "spans must be a tuple")
    for item in spans:  # type: ignore[union-attr]
        _require(
            isinstance(item, tuple)
            and len(item) == 8
            and all(isinstance(part, str) for part in item[:5])
            and all(isinstance(part, (int, float)) for part in item[5:7])
            and isinstance(item[7], dict),
            "each span must be an 8-tuple "
            "(trace_id, span_id, parent_id, name, component, start, duration, attrs)",
        )


# -- coordinator <-> site server --------------------------------------------


@dataclass(frozen=True)
class LoadFragments(Message):
    """Coordinator -> site: make these fragments resident.

    Each entry is either an ``(id, xml)`` string pair (legacy, epoch
    unknown) or an ``(id, epoch, xml)`` triple whose epoch content-
    addresses the copy for the stale-fragment check (see
    :class:`~repro.distsim.resident.ResidentSiteState`).
    """

    KIND = 10
    fragments: tuple  # tuple[(fragment_id, xml_text) | (fragment_id, epoch, xml_text), ...]

    def validate(self) -> None:
        _require(isinstance(self.fragments, tuple), "fragments must be a tuple")
        for item in self.fragments:
            pair = (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[0], str)
                and isinstance(item[1], str)
            )
            triple = (
                isinstance(item, tuple)
                and len(item) == 3
                and isinstance(item[0], str)
                and isinstance(item[1], int)
                and not isinstance(item[1], bool)
                and isinstance(item[2], str)
            )
            _require(
                pair or triple,
                "each fragment must be an (id, xml) string pair "
                "or an (id, epoch, xml) triple",
            )


@dataclass(frozen=True)
class Loaded(Message):
    """Site -> coordinator: these fragment ids are now resident."""

    KIND = 11
    fragment_ids: tuple

    def validate(self) -> None:
        _require(isinstance(self.fragment_ids, tuple), "fragment_ids must be a tuple")
        _require(
            all(isinstance(fid, str) for fid in self.fragment_ids),
            "fragment ids must be strings",
        )


@dataclass(frozen=True)
class ExecuteRequest(Message):
    """Coordinator -> site: one :class:`~repro.distsim.executors.SiteJob`.

    Carries fragment *ids* only -- the fragments themselves are resident
    on the site (shipped once by :class:`LoadFragments`), so a batch
    costs a query broadcast and a triplet reply, never the data.
    """

    KIND = 12
    request_id: int
    site_id: str
    fragment_ids: tuple
    qlist_obj: tuple
    algebra: str
    segments: tuple
    label: str
    #: Optional per-fragment epochs (parallel to ``fragment_ids``).
    #: Empty means "any resident copy" -- pre-epoch coordinators omit it
    #: entirely and the wire decoder fills in the default.
    epochs: tuple = ()
    #: Optional (trace_id, parent_span_id) propagation context.  Empty
    #: means tracing is off; pre-trace coordinators omit the field.
    trace: tuple = ()

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")
        _require(isinstance(self.site_id, str), "site_id must be a string")
        _require(
            isinstance(self.fragment_ids, tuple)
            and all(isinstance(fid, str) for fid in self.fragment_ids),
            "fragment_ids must be a tuple of strings",
        )
        _require(isinstance(self.qlist_obj, (tuple, list)), "qlist_obj must be a sequence")
        _require(isinstance(self.algebra, str), "algebra must be a name string")
        _require(isinstance(self.segments, tuple), "segments must be a tuple")
        _require(isinstance(self.label, str), "label must be a string")
        _require(
            isinstance(self.epochs, tuple)
            and all(
                isinstance(epoch, int) and not isinstance(epoch, bool)
                for epoch in self.epochs
            )
            and len(self.epochs) in (0, len(self.fragment_ids)),
            "epochs must be an int tuple, empty or parallel to fragment_ids",
        )
        _require_trace(self.trace)


@dataclass(frozen=True)
class ExecuteReply(Message):
    """Site -> coordinator: wire-form results of one execute request.

    ``results`` is exactly what
    :func:`repro.distsim.executors.run_resident_job` returns: one
    ``(compact triplet, nodes, ops, segment_ops)`` tuple per fragment.
    """

    KIND = 13
    request_id: int
    results: tuple
    seconds: float
    #: Span wire forms recorded on the site while serving this request
    #: (empty when the request carried no trace context).
    spans: tuple = ()

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")
        _require(isinstance(self.results, tuple), "results must be a tuple")
        _require(isinstance(self.seconds, float), "seconds must be a float")
        _require_spans(self.spans)


@dataclass(frozen=True)
class ErrorReply(Message):
    """Site -> coordinator: a typed per-request failure."""

    KIND = 14
    request_id: int
    code: str
    message: str

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")
        _require(isinstance(self.code, str), "code must be a string")
        _require(isinstance(self.message, str), "message must be a string")


# -- client <-> gateway ------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest(Message):
    """Client -> gateway: evaluate a batch of queries.

    Each query is either a text (compiled server-side through the
    coordinator's cache) or a ``("qlist", to_obj())`` pair for
    pre-compiled queries.
    """

    KIND = 20
    request_id: int
    queries: tuple
    engine: str
    #: Optional trace request: ``(trace_id,)`` asks the gateway to open
    #: a root span, ``(trace_id, span_id)`` parents it on a client-side
    #: span.  Empty (the wire default) means tracing off.
    trace: tuple = ()

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")
        _require(
            isinstance(self.queries, tuple) and len(self.queries) > 0,
            "queries must be a non-empty tuple",
        )
        for query in self.queries:
            _require(
                isinstance(query, str)
                or (
                    isinstance(query, tuple)
                    and len(query) == 2
                    and query[0] == "qlist"
                ),
                "each query must be a text or a ('qlist', obj) pair",
            )
        _require(isinstance(self.engine, str), "engine must be a name string")
        _require_trace(self.trace)


@dataclass(frozen=True)
class QueryReply(Message):
    """Gateway -> client: per-query answers over one batch ledger."""

    KIND = 21
    request_id: int
    answers: tuple
    metrics_obj: dict
    details: dict
    #: The batch's full span tree (gateway root, coordinator dispatches,
    #: site executions) when the request asked for a trace.
    spans: tuple = ()

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")
        _require(
            isinstance(self.answers, tuple)
            and all(isinstance(a, bool) for a in self.answers),
            "answers must be a tuple of bools",
        )
        _require(isinstance(self.metrics_obj, dict), "metrics_obj must be a dict")
        _require(isinstance(self.details, dict), "details must be a dict")
        _require_spans(self.spans)


@dataclass(frozen=True)
class Rejected(Message):
    """Gateway -> client: typed refusal (load shed, site down, bad request)."""

    KIND = 22
    request_id: int
    code: str
    message: str

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")
        _require(isinstance(self.code, str), "code must be a string")
        _require(isinstance(self.message, str), "message must be a string")


# -- telemetry ---------------------------------------------------------------


@dataclass(frozen=True)
class MetricsRequest(Message):
    """Client -> gateway (or coordinator -> site): scrape the registry."""

    KIND = 40
    request_id: int

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")


@dataclass(frozen=True)
class MetricsReply(Message):
    """A metrics registry snapshot plus its Prometheus text exposition.

    ``snapshot`` is the plain-container dict from
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` (restricted-
    unpickler safe); ``text`` is the same data pre-rendered so a dumb
    scraper can dump it without knowing the snapshot schema.
    """

    KIND = 41
    request_id: int
    snapshot: dict
    text: str

    def validate(self) -> None:
        _require(isinstance(self.request_id, int), "request_id must be an int")
        _require(isinstance(self.snapshot, dict), "snapshot must be a dict")
        _require(isinstance(self.text, str), "text must be a string")


# -- liveness / lifecycle ----------------------------------------------------


@dataclass(frozen=True)
class Ping(Message):
    KIND = 30
    nonce: int
    version: int = PROTOCOL_VERSION

    def validate(self) -> None:
        _require(isinstance(self.nonce, int), "nonce must be an int")
        _require(isinstance(self.version, int), "version must be an int")


@dataclass(frozen=True)
class Pong(Message):
    KIND = 31
    nonce: int
    version: int = PROTOCOL_VERSION

    def validate(self) -> None:
        _require(isinstance(self.nonce, int), "nonce must be an int")
        _require(isinstance(self.version, int), "version must be an int")


@dataclass(frozen=True)
class Shutdown(Message):
    """Ask the receiving server to stop accepting and wind down."""

    KIND = 32


MESSAGE_TYPES: dict[int, type[Message]] = {
    cls.KIND: cls
    for cls in (
        LoadFragments,
        Loaded,
        ExecuteRequest,
        ExecuteReply,
        ErrorReply,
        QueryRequest,
        QueryReply,
        Rejected,
        MetricsRequest,
        MetricsReply,
        Ping,
        Pong,
        Shutdown,
    )
}


# ---------------------------------------------------------------------------
# Encode / decode
# ---------------------------------------------------------------------------


class _RestrictedUnpickler(pickle.Unpickler):
    """Payload unpickler that refuses to import anything.

    Message payloads are built from containers and scalars only (ints,
    strings, floats, tuples, lists, dicts, bools, None), so a payload
    that *needs* a global is by definition malformed -- and on a
    network-facing decoder, refusing imports is what keeps a crafted
    payload from instantiating arbitrary classes.
    """

    def find_class(self, module, name):  # noqa: D102 - pickle hook
        raise pickle.UnpicklingError(f"payload may not reference {module}.{name}")


def encode_message(message: Message) -> bytes:
    """One message as one wire frame."""
    payload = pickle.dumps(message.to_fields(), protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"payload of {type(message).__name__} is {len(payload)} bytes "
            f"(max {MAX_PAYLOAD_BYTES})"
        )
    return HEADER.pack(MAGIC, type(message).KIND, len(payload)) + payload


def decode_payload(kind: int, payload: bytes) -> Message:
    """Decode one frame's payload into its message, or raise typed errors."""
    message_cls = MESSAGE_TYPES.get(kind)
    if message_cls is None:
        raise PayloadError(f"unknown message kind {kind}")
    try:
        payload_fields = _RestrictedUnpickler(io.BytesIO(payload)).load()
    except PayloadError:
        raise
    except Exception as error:  # pickle raises a wide, undocumented set
        raise PayloadError(f"undecodable {message_cls.__name__} payload: {error}") from None
    return message_cls.from_fields(payload_fields)


class FrameSplitter:
    """Incremental splitter: bytes in, raw ``(kind, payload)`` frames out.

    Handles arbitrarily interleaved partial reads (a frame may arrive
    one byte at a time, or many frames in one read).  Raises
    :class:`FrameError` on bad magic or an oversized declared length,
    and poisons itself afterwards: once the stream desynchronizes there
    is no way to find the next frame boundary, so every later feed
    fails fast instead of decoding garbage.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD_BYTES) -> None:
        self.max_payload = max_payload
        self._buffer = bytearray()
        self._broken: Optional[str] = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        if self._broken is not None:
            raise FrameError(f"framer poisoned by earlier error: {self._broken}")
        self._buffer.extend(data)
        frames: list[tuple[int, bytes]] = []
        while len(self._buffer) >= HEADER.size:
            magic, kind, length = HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                self._broken = f"bad magic {bytes(magic)!r}"
                raise FrameError(self._broken)
            if length > self.max_payload:
                self._broken = f"declared payload of {length} bytes (max {self.max_payload})"
                raise FrameError(self._broken)
            end = HEADER.size + length
            if len(self._buffer) < end:
                break
            frames.append((kind, bytes(self._buffer[HEADER.size : end])))
            del self._buffer[:end]
        return frames


class Framer:
    """Frame splitter plus payload decoding: bytes in, messages out.

    Decode failures (:class:`PayloadError`) poison the framer like
    frame failures do -- a peer that sent one undecodable payload
    cannot be trusted to have framed the next one honestly.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD_BYTES) -> None:
        self._splitter = FrameSplitter(max_payload)
        self._broken: Optional[str] = None

    @property
    def pending_bytes(self) -> int:
        return self._splitter.pending_bytes

    def feed(self, data: bytes) -> list[Message]:
        if self._broken is not None:
            raise ProtocolError(f"framer poisoned by earlier error: {self._broken}")
        try:
            frames = self._splitter.feed(data)
            return [decode_payload(kind, payload) for kind, payload in frames]
        except ProtocolError as error:
            self._broken = str(error)
            raise


# ---------------------------------------------------------------------------
# asyncio stream helpers
# ---------------------------------------------------------------------------


async def read_message(
    reader: asyncio.StreamReader, max_payload: int = MAX_PAYLOAD_BYTES
) -> Optional[Message]:
    """Read one message; ``None`` on clean EOF at a frame boundary.

    Truncation mid-frame (EOF after a partial header or payload) raises
    :class:`FrameError` -- the peer died or lied about the length, and
    the two cases are indistinguishable on the wire.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError(
            f"truncated frame header ({len(error.partial)}/{HEADER.size} bytes)"
        ) from None
    magic, kind, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if length > max_payload:
        raise FrameError(f"declared payload of {length} bytes (max {max_payload})")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            f"truncated payload ({len(error.partial)}/{length} bytes)"
        ) from None
    return decode_payload(kind, payload)


def write_message(writer: asyncio.StreamWriter, message: Message) -> None:
    """Queue one message on an asyncio stream (caller drains)."""
    writer.write(encode_message(message))


# ---------------------------------------------------------------------------
# Metrics wire form
# ---------------------------------------------------------------------------

#: Metrics fields shipped verbatim (scalar counters and seconds).
_METRIC_SCALARS = (
    "messages",
    "bytes_total",
    "nodes_processed",
    "qlist_ops",
    "compute_seconds_total",
    "elapsed_seconds",
    "wall_seconds",
    "parallel_batches",
    "critical_path_seconds",
    "dirty_site_visits",
    "refresh_rounds",
    "migration_bytes",
    "migration_visits",
)


def metrics_to_wire(metrics: Metrics) -> dict:
    """A batch ledger as a plain dict (what :class:`QueryReply` carries).

    Ships the full deterministic ledger -- per-site visit counters,
    per-kind byte counters and per-segment operation counts included --
    so the client can reconstruct a :class:`~repro.distsim.metrics.Metrics`
    that is **equal counter-for-counter** to what a local engine run
    would have produced.  The differential tests lean on that: the
    simulated ledger is part of the oracle, not just the answers.
    """
    wire = {name: getattr(metrics, name) for name in _METRIC_SCALARS}
    wire["visits"] = dict(metrics.visits)
    wire["bytes_by_kind"] = dict(metrics.bytes_by_kind)
    wire["site_seconds"] = dict(metrics.site_seconds)
    wire["segment_ops"] = dict(metrics.segment_ops)
    wire["critical_site"] = metrics.critical_site
    return wire


def metrics_from_wire(wire: dict) -> Metrics:
    """Inverse of :func:`metrics_to_wire`."""
    metrics = Metrics()
    for name in _METRIC_SCALARS:
        setattr(metrics, name, wire[name])
    metrics.visits.update(wire["visits"])
    metrics.bytes_by_kind.update(wire["bytes_by_kind"])
    metrics.site_seconds.update(wire["site_seconds"])
    metrics.segment_ops.update(wire["segment_ops"])
    metrics.critical_site = wire["critical_site"]
    return metrics


__all__ = [
    "MAGIC",
    "HEADER",
    "MAX_PAYLOAD_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "FrameError",
    "PayloadError",
    "ServingError",
    "Overloaded",
    "SiteUnavailable",
    "RemoteQueryError",
    "ERR_OVERLOADED",
    "ERR_SITE_UNAVAILABLE",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_FRAGMENT",
    "ERR_STALE_FRAGMENT",
    "ERR_INTERNAL",
    "error_for",
    "Message",
    "LoadFragments",
    "Loaded",
    "ExecuteRequest",
    "ExecuteReply",
    "ErrorReply",
    "QueryRequest",
    "QueryReply",
    "Rejected",
    "MetricsRequest",
    "MetricsReply",
    "Ping",
    "Pong",
    "Shutdown",
    "MESSAGE_TYPES",
    "encode_message",
    "decode_payload",
    "FrameSplitter",
    "Framer",
    "read_message",
    "write_message",
    "metrics_to_wire",
    "metrics_from_wire",
]
