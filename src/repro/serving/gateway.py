"""The front-door gateway: many client sessions, a coordinator pool.

One asyncio TCP server multiplexing concurrent
:class:`~repro.core.session.QuerySession` clients.  Each accepted
:class:`~repro.serving.protocol.QueryRequest` is evaluated on a bounded
worker-thread pool (the engine's evaluation is synchronous CPU work and
the :class:`~repro.serving.coordinator.RemoteSiteExecutor` *blocks* its
thread while site replies stream in -- running it on the event loop
would deadlock the loop against itself), while the loop thread stays
free for frame I/O and the coordinators' site links.

Scale-out: the gateway owns ``coordinators`` independent
:class:`~repro.serving.coordinator.Coordinator` instances (``c0`` ...
``cN-1``), each with its own site links, engine pool and compiled-plan
cache, and routes every request to one of them:

* ``"hash"`` (default) -- consistent hash of the request's plan
  fingerprint over a :class:`~repro.serving.routing.HashRing`, so a
  repeated/standing query batch always lands on the same coordinator
  and its warm plan + warm site state; unhashable batches fall back to
  least-inflight;
* ``"least"`` -- always the coordinator with the fewest requests in
  flight (ties by name): spreads one-off traffic evenly;
* ``"skew"`` -- everything to ``c0``: a test policy, the worst case
  the routing differential suite pins answers under.

Routing never affects answers, only placement of the coordination
work; per-coordinator in-flight counts feed both the fallback routing
and the admission limit (the global in-flight figure *is* their sum).

Admission control is a bounded in-flight queue: ``max_inflight``
requests evaluate concurrently, up to ``max_queue`` more wait, and
anything beyond that is shed immediately with a typed
``Rejected(overloaded)`` -- the client sees
:class:`~repro.serving.protocol.Overloaded`, never an unbounded queue.
``max_workers`` sizes the evaluation thread pool independently of the
admission limit (it defaults to ``max_inflight``, the historical
coupling).  Failures map to typed rejections the same way: a site that
stayed dead through the retry becomes ``Rejected(site-unavailable)``, a
malformed query becomes ``Rejected(bad-request)``, anything unexpected
becomes ``Rejected(internal)`` -- the connection always gets an answer
or a typed error for every request id it sent.
"""

from __future__ import annotations

import asyncio
import functools
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.distsim.cluster import Cluster
from repro.obs.logging import emit as obs_emit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanStore, SpanTimer, TraceContext
from repro.serving.coordinator import Coordinator, SiteEndpoint
from repro.serving.routing import HashRing, plan_fingerprint
from repro.serving.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    MetricsReply,
    MetricsRequest,
    Ping,
    Pong,
    ProtocolError,
    QueryReply,
    QueryRequest,
    Rejected,
    ServingError,
    Shutdown,
    metrics_to_wire,
    read_message,
    write_message,
)

logger = logging.getLogger("repro.serving.gateway")

#: Detail values that may ride a QueryReply (the restricted unpickler
#: on the client refuses anything class-shaped, so filter server-side).
_PLAIN = (str, int, float, bool, type(None))


def _plain_details(details: dict) -> dict:
    return {
        key: value
        for key, value in details.items()
        if isinstance(key, str) and isinstance(value, _PLAIN)
    }


#: Routing policies the gateway accepts.
ROUTING_POLICIES = ("hash", "least", "skew")


class Gateway:
    """Front door: accepts client sessions, shields the coordinators."""

    def __init__(
        self,
        cluster: Cluster,
        endpoints: dict[str, Sequence[SiteEndpoint]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 4,
        max_queue: int = 8,
        site_timeout: float = 10.0,
        default_engine: str = "parbox",
        coordinators: int = 1,
        max_workers: Optional[int] = None,
        routing: str = "hash",
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if coordinators < 1:
            raise ValueError("coordinators must be >= 1")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing {routing!r}; choose from {list(ROUTING_POLICIES)}")
        self.host = host
        self.port = port  # 0 until started when OS-assigned
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        #: Evaluation threads, decoupled from the admission limit (the
        #: historical default ties them together).
        self.max_workers = max_workers if max_workers is not None else max_inflight
        self.default_engine = default_engine
        self.routing = routing
        #: One registry for the whole serving process: every coordinator
        #: records its dispatch events into it too, so a single
        #: MetricsReply covers admission, routing, dispatch, and latency.
        self.registry = MetricsRegistry("gateway")
        self.coordinators: tuple[Coordinator, ...] = tuple(
            Coordinator(
                cluster,
                endpoints,
                site_timeout=site_timeout,
                registry=self.registry,
                name=f"c{index}",
            )
            for index in range(coordinators)
        )
        #: Back-compat alias: the pool's first member (the whole tier is
        #: this one coordinator at the default ``coordinators=1``).
        self.coordinator = self.coordinators[0]
        self._by_name = {c.name: c for c in self.coordinators}
        self._ring = HashRing([c.name for c in self.coordinators])
        #: Per-coordinator requests in flight; admission reads their sum.
        self.coordinator_inflight: dict[str, int] = {c.name: 0 for c in self.coordinators}
        #: Requests accepted but not yet replied to (admission control).
        self.inflight = 0
        #: Requests shed by admission control (the overload tests read this).
        self.shed_count = 0
        self._requests_total = self.registry.counter(
            "gateway_requests_total", "Query batches received"
        )
        self._shed_total = self.registry.counter(
            "gateway_shed_total", "Query batches shed by admission control"
        )
        self._replies_total = self.registry.counter(
            "gateway_replies_total", "Replies by outcome", labelnames=("status",)
        )
        self._inflight_gauge = self.registry.gauge(
            "gateway_inflight", "Batches admitted but not yet answered"
        )
        self._latency = self.registry.histogram(
            "gateway_request_seconds", "Admission-to-reply latency of served batches"
        )
        self._routed_total = self.registry.counter(
            "gateway_routed_total",
            "Admitted requests by coordinator and routing policy",
            labelnames=("coordinator", "policy"),
        )
        self._coordinator_inflight_gauge = self.registry.gauge(
            "gateway_coordinator_inflight",
            "Admitted batches in flight per coordinator",
            labelnames=("coordinator",),
        )
        self._coordinator_replies_total = self.registry.counter(
            "gateway_coordinator_replies_total",
            "Replies by coordinator and outcome",
            labelnames=("coordinator", "status"),
        )
        #: Bounded store of every span the gateway saw (its own roots,
        #: coordinator dispatches, site executions) -- `repro trace` fuel.
        self.spans = SpanStore()
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Gateway":
        if self._server is not None:
            raise RuntimeError("gateway already started")
        loop = asyncio.get_running_loop()
        for coordinator in self.coordinators:
            coordinator.bind_loop(loop)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-gateway"
        )
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("gateway listening on %s:%d", self.host, self.port)
        return self

    async def stop(self) -> None:
        """Stop accepting, abort sessions, close site links (idempotent)."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for writer in list(self._writers):
            writer.transport.abort()
        self._writers.clear()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        for coordinator in self.coordinators:
            await coordinator.aclose()
        logger.info("gateway stopped")

    @property
    def running(self) -> bool:
        return self._server is not None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as error:
                    # A client that desynced its stream cannot be
                    # answered (there is no trustworthy request id);
                    # drop the connection, never the process.
                    logger.warning("gateway: dropping %s: %s", peer, error)
                    break
                except (ConnectionError, OSError):
                    break
                if message is None or isinstance(message, Shutdown):
                    break
                if isinstance(message, Ping):
                    async with write_lock:
                        write_message(writer, Pong(nonce=message.nonce))
                        await writer.drain()
                elif isinstance(message, MetricsRequest):
                    snapshot = self.registry.snapshot()
                    reply = MetricsReply(
                        request_id=message.request_id,
                        snapshot=snapshot,
                        text=self.registry.render_text(),
                    )
                    async with write_lock:
                        write_message(writer, reply)
                        await writer.drain()
                elif isinstance(message, QueryRequest):
                    self._admit(message, writer, write_lock)
                else:
                    logger.warning("gateway: unexpected %s", type(message).__name__)
        finally:
            self._writers.discard(writer)
            writer.transport.abort()

    def _route(self, request: QueryRequest) -> tuple[Coordinator, str]:
        """Pick the coordinator for one admitted request.

        Hash routing keys on the plan fingerprint so identical batches
        stick to one coordinator (warm plan cache, warm site links);
        anything unhashable -- and the ``"least"`` policy always --
        goes to the fewest-in-flight coordinator, ties broken by name
        so the choice is deterministic.  ``"skew"`` pins everything on
        ``c0`` (the routing differential tests' worst case).
        """
        if len(self.coordinators) == 1:
            return self.coordinator, self.routing
        if self.routing == "skew":
            return self.coordinator, "skew"
        if self.routing == "hash":
            fingerprint = plan_fingerprint(request.queries)
            if fingerprint is not None:
                return self._by_name[self._ring.route(fingerprint)], "hash"
        name = min(
            self.coordinator_inflight,
            key=lambda candidate: (self.coordinator_inflight[candidate], candidate),
        )
        return self._by_name[name], "least"

    def _admit(
        self, request: QueryRequest, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        self._requests_total.inc()
        if self.inflight >= self.max_inflight + self.max_queue:
            self.shed_count += 1
            self._shed_total.inc()
            self._replies_total.labels(status="shed").inc()
            obs_emit(
                "gateway",
                "shed",
                request_id=request.request_id,
                inflight=self.inflight,
                trace_id=request.trace[0] if request.trace else "",
            )
            rejection = Rejected(
                request.request_id,
                ERR_OVERLOADED,
                f"gateway at capacity ({self.inflight} in flight, "
                f"limit {self.max_inflight}+{self.max_queue})",
            )
            task = asyncio.ensure_future(self._reply(writer, write_lock, rejection))
        else:
            coordinator, policy = self._route(request)
            self._routed_total.labels(coordinator=coordinator.name, policy=policy).inc()
            self.inflight += 1
            self.coordinator_inflight[coordinator.name] += 1
            self._inflight_gauge.set(self.inflight)
            self._coordinator_inflight_gauge.labels(coordinator=coordinator.name).set(
                self.coordinator_inflight[coordinator.name]
            )
            task = asyncio.ensure_future(
                self._serve(request, coordinator, writer, write_lock)
            )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _serve(
        self,
        request: QueryRequest,
        coordinator: Coordinator,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.perf_counter()
        try:
            reply = await self._evaluate(request, coordinator)
        except asyncio.CancelledError:
            raise
        finally:
            self.inflight -= 1
            self.coordinator_inflight[coordinator.name] -= 1
            self._inflight_gauge.set(self.inflight)
            self._coordinator_inflight_gauge.labels(coordinator=coordinator.name).set(
                self.coordinator_inflight[coordinator.name]
            )
        elapsed = time.perf_counter() - started
        self._latency.observe(elapsed)
        status = "ok" if isinstance(reply, QueryReply) else reply.code
        self._replies_total.labels(status=status).inc()
        self._coordinator_replies_total.labels(
            coordinator=coordinator.name, status=status
        ).inc()
        obs_emit(
            "gateway",
            "request",
            request_id=request.request_id,
            status=status,
            seconds=round(elapsed, 6),
            queries=len(request.queries),
            engine=request.engine or self.default_engine,
            coordinator=coordinator.name,
            trace_id=request.trace[0] if request.trace else "",
        )
        try:
            await self._reply(writer, write_lock, reply)
        except (ConnectionError, OSError):  # client gone; nothing to tell it
            pass

    async def _evaluate(self, request: QueryRequest, coordinator: Coordinator):
        engine_name = request.engine or self.default_engine
        loop = asyncio.get_running_loop()
        # A non-empty trace field opens the batch's root span here and
        # threads its context through the coordinator to every site.
        ctx = TraceContext.from_wire(request.trace)
        timer: Optional[SpanTimer] = None
        sink: Optional[list] = None
        trace_ctx: Optional[TraceContext] = None
        if ctx is not None:
            timer = SpanTimer(
                ctx.trace_id,
                ctx.span_id or None,
                "gateway.request",
                "gateway",
                request_id=request.request_id,
                engine=engine_name,
                queries=len(request.queries),
                coordinator=coordinator.name,
            )
            sink = []
            trace_ctx = timer.context()
        evaluate = functools.partial(
            coordinator.evaluate,
            request.queries,
            engine_name,
            trace=trace_ctx,
            span_sink=sink,
        )
        try:
            result = await loop.run_in_executor(self._pool, evaluate)
        except ServingError as error:
            return Rejected(request.request_id, error.code, str(error))
        except (ValueError, TypeError) as error:
            return Rejected(request.request_id, ERR_BAD_REQUEST, str(error))
        except RuntimeError as error:
            # Includes pool-shutdown races during stop(): typed, not a hang.
            return Rejected(request.request_id, ERR_INTERNAL, str(error))
        except Exception as error:  # noqa: BLE001 - typed toward the client
            logger.exception("gateway: request %d failed", request.request_id)
            return Rejected(
                request.request_id, ERR_INTERNAL, f"{type(error).__name__}: {error}"
            )
        finally:
            if timer is not None:
                sink.append(timer.finish().to_wire())
                self.spans.ingest_wire(sink)
        details = _plain_details(result.details)
        details["engine"] = result.engine
        details["coordinator"] = coordinator.name
        return QueryReply(
            request_id=request.request_id,
            answers=tuple(bool(answer) for answer in result.answers),
            metrics_obj=metrics_to_wire(result.metrics),
            details=details,
            spans=tuple(sink) if sink is not None else (),
        )

    async def _reply(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, message
    ) -> None:
        async with write_lock:
            write_message(writer, message)
            await writer.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gateway {self.host}:{self.port} inflight={self.inflight}>"


__all__ = ["Gateway", "ROUTING_POLICIES"]
