"""Request routing across a pool of coordinators.

The gateway's scale-out layer is deliberately tiny and deterministic:

* :func:`plan_fingerprint` reduces a request's query batch -- query
  texts and/or precompiled ``("qlist", entries)`` wire forms, exactly
  as they arrive in a :class:`~repro.serving.protocol.QueryRequest` --
  to one stable 64-bit integer.  Identical batches always fingerprint
  identically across processes and runs (``blake2b`` over a canonical
  byte serialization, no interpreter hash randomization), which is
  what makes routing *sticky*: a standing query lands on the same
  coordinator every time and reuses its warm compiled plan, warm site
  links and warm resident-site state.
* :class:`HashRing` is a consistent-hash ring over coordinator names
  with virtual nodes, so adding a coordinator remaps ~1/N of the key
  space instead of reshuffling everything, and a skewed key set still
  spreads across the pool.

Correctness never depends on the routing decision -- Ameloot et al.'s
parallel-correctness framing (PAPERS.md): any coordinator computes the
same answers over the same placement, which the routing differential
tests assert bitwise against the in-process oracle under every policy.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Optional, Sequence, Union

#: Virtual nodes per ring member: enough that two or three coordinators
#: split real key sets within a few percent of evenly, cheap enough to
#: rebuild the ring on any pool change.
DEFAULT_VNODES = 64


def _hash64(data: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def plan_fingerprint(queries: Sequence[Union[str, tuple]]) -> Optional[int]:
    """One stable 64-bit fingerprint of a request's query batch.

    Accepts the exact shapes a ``QueryRequest.queries`` field carries:
    query *texts* and precompiled ``("qlist", entries)`` tuples.  The
    two forms fingerprint differently on purpose -- they are different
    wire programs -- but any client resending the same wire form gets
    the same fingerprint, hence the same coordinator.  Returns ``None``
    for an empty or unrecognizable batch (the gateway then falls back
    to least-inflight routing); malformed entries are *not* rejected
    here -- routing must never pre-empt the coordinator's typed
    bad-request error.
    """
    if not queries:
        return None
    digest = hashlib.blake2b(digest_size=8)
    for query in queries:
        if isinstance(query, str):
            digest.update(b"s\x00")
            digest.update(query.encode("utf-8"))
        else:
            try:
                tag, obj = query
                canonical = (str(tag), tuple(tuple(entry) for entry in obj))
            except (TypeError, ValueError):
                return None
            digest.update(b"q\x00")
            digest.update(repr(canonical).encode("utf-8"))
        digest.update(b"\x1e")  # record separator: no batch concatenation aliasing
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent hashing over named nodes with virtual nodes.

    ``route(key)`` maps a 64-bit key to the first node point at or
    after it on the ring (wrapping), so each node owns a union of arcs.
    Deterministic given the node names: every gateway replica in a
    fleet would route identically.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes = tuple(nodes)
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"duplicate ring nodes in {list(nodes)}")
        points = []
        for node in self.nodes:
            for replica in range(vnodes):
                points.append((_hash64(f"{node}#{replica}".encode("utf-8")), node))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def route(self, key: int) -> str:
        """The node owning ``key``'s arc."""
        index = bisect.bisect_right(self._keys, key) % len(self._points)
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HashRing {len(self.nodes)} node(s), {len(self._points)} points>"


__all__ = ["DEFAULT_VNODES", "HashRing", "plan_fingerprint"]
