"""A site server: one network process holding resident fragments.

The deployable counterpart of one simulated
:class:`~repro.distsim.site.Site`.  A site server boots *empty*,
receives its fragments once from the coordinator
(:class:`~repro.serving.protocol.LoadFragments` -- data ships exactly
once, the paper's "one visit" discipline extended to placement), and
then answers :class:`~repro.serving.protocol.ExecuteRequest` messages
by running the very same site-local loop the simulated executors run
(:func:`repro.distsim.executors.run_resident_job`), replying with
compact triplets and the deterministic operation counts.  Because the
compute core is shared, a site server's replies are bit-for-bit what
the simulated ledger predicts -- which is what lets the differential
test harness use the simulation as the oracle for the whole networked
tier.

Concurrency model: the read loop stays on the event loop and never
blocks; each execute request runs on a worker thread
(``asyncio.to_thread``), so pings and further requests keep flowing
while a big fragment evaluates.  Replies are correlated by request id
and may complete out of order; a per-connection write lock keeps frames
from interleaving.

Run standalone (the process mode the CLI and the boot-two-sites smoke
use)::

    python -m repro.serving.site_server --host 127.0.0.1 --port 0 --name S1

On startup the server prints ``SITE <name> <host> <port>`` on stdout so
a parent process can harvest the OS-assigned port.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import os
import sys
from typing import Optional

from repro.distsim.executors import ALGEBRAS_BY_NAME
from repro.distsim.resident import ResidentSiteState, qlist_fingerprint
from repro.fragments.fragment import Fragment
from repro.obs.logging import JsonLineHandler, emit as obs_emit, install_event_log
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTimer, TraceContext
from repro.serving.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_STALE_FRAGMENT,
    ERR_UNKNOWN_FRAGMENT,
    ErrorReply,
    ExecuteReply,
    ExecuteRequest,
    LoadFragments,
    Loaded,
    Message,
    MetricsReply,
    MetricsRequest,
    Ping,
    Pong,
    ProtocolError,
    Shutdown,
    read_message,
    write_message,
)
from repro.xpath.qlist import QList

logger = logging.getLogger("repro.serving.site")


class _FragmentView:
    """Live mutable ``fragment_id -> Fragment`` view over resident state.

    Fault tests reach in and ``clear()`` this to simulate a restarted,
    empty site; mutations must therefore hit the underlying
    :class:`~repro.distsim.resident.ResidentSiteState`, not a snapshot.
    """

    def __init__(self, state: ResidentSiteState) -> None:
        self._state = state

    def __getitem__(self, fragment_id: str) -> Fragment:
        return self._state.fragments[fragment_id][1]

    def __setitem__(self, fragment_id: str, fragment: Fragment) -> None:
        from repro.core.bottom_up import linearize_ground  # local: import cycle

        self._state.fragments[fragment_id] = (
            fragment.epoch,
            fragment,
            linearize_ground(fragment),
        )

    def __delitem__(self, fragment_id: str) -> None:
        del self._state.fragments[fragment_id]

    def __contains__(self, fragment_id: object) -> bool:
        return fragment_id in self._state.fragments

    def __iter__(self):
        return iter(self._state.fragments)

    def __len__(self) -> int:
        return len(self._state.fragments)

    def clear(self) -> None:
        self._state.fragments.clear()


class SiteServer:
    """One asyncio TCP server evaluating jobs over resident fragments."""

    def __init__(
        self,
        name: str = "site",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port  # 0 until started when OS-assigned
        #: Resident fragments + compiled query cache -- the same state
        #: class the in-process executor workers run on, so both tiers
        #: share one residency protocol (epochs, ship-once counters,
        #: site-vectorized evaluation).
        self.state = ResidentSiteState()
        self.fragments = _FragmentView(self.state)
        #: Test hook: artificial seconds added before every execute
        #: reply, used by the timeout/retry tests to make this site
        #: reliably slower than the coordinator's deadline.
        self.delay_seconds = 0.0
        #: Served execute requests (useful to assert replica takeover).
        self.requests_served = 0
        #: This site's own scrapeable registry (answers MetricsRequest).
        self.registry = MetricsRegistry(f"site:{name}")
        self._requests_total = self.registry.counter(
            "site_requests_total", "Execute requests served"
        )
        self._errors_total = self.registry.counter(
            "site_errors_total", "Typed error replies", labelnames=("code",)
        )
        self._execute_seconds = self.registry.histogram(
            "site_execute_seconds", "Per-request resident evaluation time"
        )
        self._fragments_gauge = self.registry.gauge(
            "site_fragments_resident", "Fragments currently resident"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SiteServer":
        if self._server is not None:
            raise RuntimeError(f"site server {self.name} already started")
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("site %s listening on %s:%d", self.name, self.host, self.port)
        return self

    async def stop(self, abort: bool = True) -> None:
        """Stop listening and tear connections down (idempotent).

        ``abort=True`` (the default, and what :meth:`kill` uses) resets
        open connections instead of flushing them -- from the
        coordinator's point of view, exactly what a crashed process
        looks like.
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for writer in list(self._writers):
            if abort:
                writer.transport.abort()
            else:
                writer.close()
        self._writers.clear()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        logger.info("site %s stopped", self.name)

    @property
    def running(self) -> bool:
        return self._server is not None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as error:
                    logger.warning("site %s: dropping %s: %s", self.name, peer, error)
                    break
                except (ConnectionError, OSError):
                    break
                if message is None or isinstance(message, Shutdown):
                    break
                await self._dispatch(message, writer, write_lock)
        finally:
            self._writers.discard(writer)
            writer.transport.abort()

    async def _dispatch(
        self, message: Message, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        if isinstance(message, ExecuteRequest):
            # Off the read loop: a slow evaluation must not stall pings
            # or later requests on the same connection.
            task = asyncio.ensure_future(self._execute(message, writer, write_lock))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            return
        if isinstance(message, LoadFragments):
            loaded = await asyncio.to_thread(self._load_fragments, message.fragments)
            await self._send(writer, write_lock, Loaded(fragment_ids=loaded))
        elif isinstance(message, MetricsRequest):
            self._fragments_gauge.set(len(self.fragments))
            reply = MetricsReply(
                request_id=message.request_id,
                snapshot=self.registry.snapshot(),
                text=self.registry.render_text(),
            )
            await self._send(writer, write_lock, reply)
        elif isinstance(message, Ping):
            await self._send(writer, write_lock, Pong(nonce=message.nonce))
        else:
            logger.warning("site %s: unexpected %s", self.name, type(message).__name__)

    def _load_fragments(self, wires: tuple) -> tuple:
        # Legacy (id, xml) pairs carry no epoch; (id, epoch, xml) triples
        # content-address the pushed copy for the stale-fragment check.
        normalized = tuple(
            wire if len(wire) == 3 else (wire[0], None, wire[1]) for wire in wires
        )
        self.state.store(normalized)
        logger.info(
            "site %s: %d fragment(s) resident after load of %d",
            self.name,
            len(self.fragments),
            len(wires),
        )
        return tuple(sorted(self.fragments))

    async def _execute(
        self, request: ExecuteRequest, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            reply = await self._run_request(request)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - reported to the peer, typed
            logger.exception("site %s: request %d failed", self.name, request.request_id)
            reply = ErrorReply(request.request_id, ERR_INTERNAL, f"{type(error).__name__}: {error}")
        if self.delay_seconds:
            await asyncio.sleep(self.delay_seconds)
        try:
            await self._send(writer, write_lock, reply)
        except (ConnectionError, OSError):  # peer gone; nothing to tell it
            pass

    async def _run_request(self, request: ExecuteRequest) -> Message:
        epochs = request.epochs or (None,) * len(request.fragment_ids)
        refs = tuple(zip(request.fragment_ids, epochs))
        missing = self.state.missing_for(refs)
        if missing:
            # Typed, recoverable: the coordinator re-pushes and retries.
            # Unknown = never held (a restarted, empty site); stale =
            # held, but the epoch says the copy predates an update.
            unknown = [fid for fid in missing if fid not in self.state.fragments]
            if unknown:
                self._errors_total.labels(code=ERR_UNKNOWN_FRAGMENT).inc()
                return ErrorReply(
                    request.request_id,
                    ERR_UNKNOWN_FRAGMENT,
                    f"site {self.name} has no fragment(s) {unknown}",
                )
            self._errors_total.labels(code=ERR_STALE_FRAGMENT).inc()
            return ErrorReply(
                request.request_id,
                ERR_STALE_FRAGMENT,
                f"site {self.name} holds stale copies of fragment(s) {missing}",
            )
        algebra_cls = ALGEBRAS_BY_NAME.get(request.algebra)
        if algebra_cls is None:
            self._errors_total.labels(code=ERR_BAD_REQUEST).inc()
            return ErrorReply(
                request.request_id,
                ERR_BAD_REQUEST,
                f"unknown algebra {request.algebra!r}",
            )
        qlist = QList.from_obj(list(request.qlist_obj))
        qlist = self.state.ensure_query(qlist_fingerprint(qlist), qlist.to_obj())
        segments = tuple(tuple(span) for span in request.segments)
        ctx = TraceContext.from_wire(request.trace)
        timer: Optional[SpanTimer] = None
        if ctx is not None:
            timer = SpanTimer(
                ctx.trace_id,
                ctx.span_id or None,
                "site.execute",
                f"site:{self.name}",
                fragments=len(request.fragment_ids),
                label=request.label,
            )
        results, seconds = await asyncio.to_thread(
            self.state.run, self.name, refs, qlist, algebra_cls(), segments
        )
        self.requests_served += 1
        self._requests_total.inc()
        self._execute_seconds.observe(seconds)
        spans = (timer.finish(seconds=round(seconds, 6)).to_wire(),) if timer is not None else ()
        return ExecuteReply(request.request_id, results, seconds, spans)

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, message: Message
    ) -> None:
        async with write_lock:
            write_message(writer, message)
            await writer.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SiteServer {self.name} {self.host}:{self.port} "
            f"fragments={len(self.fragments)}>"
        )


# ---------------------------------------------------------------------------
# Process mode
# ---------------------------------------------------------------------------


async def _serve_forever(server: SiteServer) -> None:
    await server.start()
    obs_emit(
        f"site-{server.name}",
        "boot",
        pid=os.getpid(),
        host=server.host,
        port=server.port,
    )
    print(f"SITE {server.name} {server.host} {server.port}", flush=True)
    try:
        await asyncio.Event().wait()  # run until cancelled / killed
    finally:
        await server.stop()


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point of ``python -m repro.serving.site_server``."""
    parser = argparse.ArgumentParser(
        prog="repro-site-server",
        description="one ParBoX site server process (boots empty; the "
        "coordinator pushes fragments on connect)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = OS-assigned")
    parser.add_argument("--name", default="site")
    parser.add_argument(
        "--log-dir", default=None, help="write JSON-lines event logs into this directory"
    )
    parser.add_argument(
        "--log-file",
        default=None,
        help="(legacy) the event-log directory is derived from this path's parent",
    )
    args = parser.parse_args(argv)
    log_dir = args.log_dir
    if log_dir is None and args.log_file:
        log_dir = os.path.dirname(args.log_file) or "."
    if log_dir:
        # Structured JSON lines, one file per site, flushed per line --
        # a crashed process still leaves attributable evidence.
        event_log = install_event_log(log_dir)
        handler = JsonLineHandler(event_log, component=f"site-{args.name}")
        logging.getLogger("repro.serving").addHandler(handler)
        logging.getLogger("repro.serving").setLevel(logging.INFO)
    server = SiteServer(name=args.name, host=args.host, port=args.port)
    try:
        asyncio.run(_serve_forever(server))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
