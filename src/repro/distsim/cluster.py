"""The cluster: fragmented tree + placement + sites + network.

``Cluster`` is the top-level handle a user builds once and runs many
queries against.  It owns the decomposition (a
:class:`~repro.fragments.fragment.FragmentedTree`), the placement
function ``h`` and the per-site stores, and re-derives the source tree
on demand (cached until the fragmentation or placement changes).

The structural update operations of Section 5 (`split_fragment`,
`merge_fragment`, `move_fragment`) mutate the cluster in place and
invalidate the cached source tree.
"""

from __future__ import annotations

from typing import Optional

from repro.distsim.network import NetworkModel
from repro.distsim.site import Site
from repro.fragments.fragment import Fragment, FragmentedTree
from repro.fragments.fragmenter import merge_fragment, split_fragment
from repro.fragments.source_tree import Placement, SourceTree
from repro.xmltree.node import XMLNode


class Cluster:
    """A set of sites storing the fragments of one document."""

    def __init__(
        self,
        fragmented_tree: FragmentedTree,
        placement: Placement,
        network: Optional[NetworkModel] = None,
    ) -> None:
        self.fragmented_tree = fragmented_tree
        self.placement = placement
        self.network = network or NetworkModel()
        self._sites: dict[str, Site] = {}
        self._source_tree: Optional[SourceTree] = None
        for fragment_id, fragment in fragmented_tree.fragments.items():
            site_id = placement.site_of(fragment_id)
            self._site(site_id).add_fragment(fragment)

    def _site(self, site_id: str) -> Site:
        site = self._sites.get(site_id)
        if site is None:
            site = Site(site_id)
            self._sites[site_id] = site
        return site

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_site(cls, fragmented_tree: FragmentedTree, site_id: str = "S0") -> "Cluster":
        """All fragments on one site (Experiment 4's setting)."""
        placement = Placement({fid: site_id for fid in fragmented_tree.fragments})
        return cls(fragmented_tree, placement)

    @classmethod
    def one_site_per_fragment(
        cls, fragmented_tree: FragmentedTree, site_prefix: str = "S"
    ) -> "Cluster":
        """Fragment ``Fi`` on site ``S<i>`` (Experiments 1-3's setting)."""
        assignment = {}
        for index, fragment_id in enumerate(fragmented_tree.iter_depth_first()):
            assignment[fragment_id] = f"{site_prefix}{index}"
        return cls(fragmented_tree, Placement(assignment))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def source_tree(self) -> SourceTree:
        """The source tree ``S_T`` (cached until a structural change)."""
        if self._source_tree is None:
            self._source_tree = SourceTree.from_fragmented_tree(
                self.fragmented_tree, self.placement
            )
        return self._source_tree

    def site(self, site_id: str) -> Site:
        """The site object for ``site_id``."""
        return self._sites[site_id]

    def sites(self) -> list[Site]:
        """All sites."""
        return list(self._sites.values())

    def site_of(self, fragment_id: str) -> str:
        """Site id storing ``fragment_id``."""
        return self.placement.site_of(fragment_id)

    def fragment(self, fragment_id: str) -> Fragment:
        """Fragment by id."""
        return self.fragmented_tree.fragments[fragment_id]

    @property
    def coordinator_site(self) -> str:
        """The site holding the root fragment."""
        return self.site_of(self.fragmented_tree.root_fragment_id)

    def total_size(self) -> int:
        """|T|: total non-virtual nodes across all fragments.

        In a real deployment this comes from catalog statistics the
        sites report; Hybrid ParBoX needs it for its switching rule.
        """
        return self.fragmented_tree.total_size()

    def card(self) -> int:
        """card(F): the number of fragments."""
        return self.fragmented_tree.card()

    # ------------------------------------------------------------------
    # Structural updates (Section 5)
    # ------------------------------------------------------------------
    def split_fragment(
        self,
        fragment_id: str,
        node: XMLNode,
        new_fragment_id: Optional[str] = None,
        target_site: Optional[str] = None,
    ) -> str:
        """``splitFragments(v)`` + assignment of the new fragment.

        The new fragment stays on the same site unless ``target_site``
        moves it (as Example 5.1 moves F4 to the fresh site S3).
        """
        new_id = split_fragment(self.fragmented_tree, fragment_id, node, new_fragment_id)
        # The parent lost a subtree to a virtual node: its resident
        # copies are stale.  The carved-out fragment is a brand-new
        # object and carries a fresh epoch already.
        self.fragment(fragment_id).bump_epoch()
        origin_site = self.site_of(fragment_id)
        destination = target_site or origin_site
        self.placement.assign(new_id, destination)
        self._site(destination).add_fragment(self.fragment(new_id))
        self._source_tree = None
        return new_id

    def merge_fragment(self, fragment_id: str, virtual_node: XMLNode) -> Optional[str]:
        """``mergeFragments(v)``: absorb a sub-fragment back.

        The absorbed fragment's data moves to ``fragment_id``'s site.
        Returns the absorbed id, or None when ``virtual_node`` is not
        virtual (the paper's no-op case).
        """
        absorbed_id = merge_fragment(self.fragmented_tree, fragment_id, virtual_node)
        if absorbed_id is None:
            return None
        self.fragment(fragment_id).bump_epoch()
        absorbed_site = self.site_of(absorbed_id)
        self._sites[absorbed_site].remove_fragment(absorbed_id)
        self.placement.remove(absorbed_id)
        self._source_tree = None
        return absorbed_id

    def move_fragment(self, fragment_id: str, target_site: str) -> None:
        """Re-assign a fragment to another site."""
        origin = self.site_of(fragment_id)
        if origin == target_site:
            return
        fragment = self._sites[origin].remove_fragment(fragment_id)
        self.placement.assign(fragment_id, target_site)
        self._site(target_site).add_fragment(fragment)
        self._source_tree = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster sites={len(self._sites)} fragments={self.card()} "
            f"|T|={self.total_size()}>"
        )


__all__ = ["Cluster"]
