"""Cost ledger for one query evaluation.

Collects the three cost dimensions of the paper's Fig. 4 plus timing:

* **visits** -- how many times each site was contacted;
* **communication** -- message count and bytes, split by message kind;
* **computation** -- nodes processed and ``node x |QList|`` operations,
  together with the wall-clock seconds the (real) site computations took;
* **elapsed_seconds** -- the engine's simulated parallel time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Mutable cost counters filled in by a :class:`~repro.distsim.runtime.Run`."""

    visits: Counter = field(default_factory=Counter)
    messages: int = 0
    bytes_total: int = 0
    bytes_by_kind: Counter = field(default_factory=Counter)
    nodes_processed: int = 0
    qlist_ops: int = 0
    compute_seconds_total: float = 0.0
    elapsed_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived quantities used by the experiment tables
    # ------------------------------------------------------------------
    def total_visits(self) -> int:
        """Sum of visits over all sites."""
        return sum(self.visits.values())

    def max_visits_per_site(self) -> int:
        """The paper's "number of times each site is visited" (worst site)."""
        return max(self.visits.values()) if self.visits else 0

    def communication_bytes(self) -> int:
        """Total bytes sent over the (inter-site) network."""
        return self.bytes_total

    def summary(self) -> dict:
        """A flat dict for table rendering."""
        return {
            "sites_contacted": len(self.visits),
            "total_visits": self.total_visits(),
            "max_visits_per_site": self.max_visits_per_site(),
            "messages": self.messages,
            "bytes_total": self.bytes_total,
            "nodes_processed": self.nodes_processed,
            "qlist_ops": self.qlist_ops,
            "compute_seconds_total": self.compute_seconds_total,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one engine run: the Boolean answer plus its costs."""

    answer: bool
    engine: str
    metrics: Metrics
    details: dict = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        """Simulated parallel elapsed time of the evaluation."""
        return self.metrics.elapsed_seconds


__all__ = ["Metrics", "EvalResult"]
