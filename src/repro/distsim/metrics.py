"""Cost ledger for one query evaluation.

Collects the three cost dimensions of the paper's Fig. 4 plus timing:

* **visits** -- how many times each site was contacted;
* **communication** -- message count and bytes, split by message kind;
* **computation** -- nodes processed and ``node x |QList|`` operations,
  together with the wall-clock seconds the (real) site computations took;
* **elapsed_seconds** -- the engine's simulated parallel time;
* **wall_seconds** -- the *real* elapsed time of the computation phases
  as executed (equal to ``compute_seconds_total`` under the serial
  executor, smaller under the thread/process executors because site
  jobs genuinely overlap);
* **site_seconds** -- per-site busy time, i.e. how long each site's
  local evaluations took where they actually ran;
* **critical path** -- which parallel branch determined the simulated
  elapsed time (:attr:`Metrics.critical_site`) and the accumulated
  length of the joined branches (:attr:`Metrics.critical_path_seconds`).

Batched evaluations additionally attribute costs *per query*: the
planner's segments let sites report exact per-query operation counts
(:attr:`Metrics.segment_ops`), and a finished batch is reported as a
:class:`BatchResult` whose :class:`QueryCost` rows carry each query's
exact operation count plus its amortized share of the batch-level
visits, messages and bytes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Metrics:
    """Mutable cost counters filled in by a :class:`~repro.distsim.runtime.Run`."""

    visits: Counter = field(default_factory=Counter)
    messages: int = 0
    bytes_total: int = 0
    bytes_by_kind: Counter = field(default_factory=Counter)
    nodes_processed: int = 0
    qlist_ops: int = 0
    compute_seconds_total: float = 0.0
    elapsed_seconds: float = 0.0
    #: Real elapsed seconds of the computation phases (parallel batches
    #: are timed end to end, so overlap shows up as wall < total).
    wall_seconds: float = 0.0
    #: Busy compute seconds attributed to each site.
    site_seconds: Counter = field(default_factory=Counter)
    #: Number of parallel dispatch batches the run issued.
    parallel_batches: int = 0
    #: Site that bounded the longest parallel join of the run.
    critical_site: Optional[str] = None
    #: Sum over joins of the longest branch (the simulated critical path).
    critical_path_seconds: float = 0.0
    #: ``node x entry`` operations attributed to each unique batch
    #: segment (query), as reported by the batched site jobs.
    segment_ops: Counter = field(default_factory=Counter)
    #: Visits that targeted a *dirty* site (stream maintenance only
    #: contacts sites whose fragments an update batch touched; the
    #: stream shape check asserts this equals ``total_visits()``).
    dirty_site_visits: int = 0
    #: Incremental refresh rounds (update batches) folded into this
    #: ledger by a :class:`~repro.stream.maintainer.StreamMaintainer`.
    refresh_rounds: int = 0
    #: Bytes of fragment data shipped site-to-site by rebalancing
    #: (``MoveFragment``, cross-site merges, off-site splits).  A subset
    #: of ``bytes_total``, kept separately because migration is a
    #: one-off cost the placement optimizer amortizes against the
    #: steady-state savings it buys.
    migration_bytes: int = 0
    #: Site contacts made solely to migrate fragment data (the origin
    #: told to ship, the target told to receive).
    migration_visits: int = 0
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived quantities used by the experiment tables
    # ------------------------------------------------------------------
    def total_visits(self) -> int:
        """Sum of visits over all sites."""
        return sum(self.visits.values())

    def max_visits_per_site(self) -> int:
        """The paper's "number of times each site is visited" (worst site)."""
        return max(self.visits.values()) if self.visits else 0

    def communication_bytes(self) -> int:
        """Total bytes sent over the (inter-site) network."""
        return self.bytes_total

    def busiest_site(self) -> Optional[str]:
        """The site with the most attributed busy seconds."""
        if not self.site_seconds:
            return None
        return max(self.site_seconds, key=lambda site: self.site_seconds[site])

    def parallel_speedup(self) -> float:
        """Serial compute time over real wall time (1.0 when serial)."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.compute_seconds_total / self.wall_seconds

    def critical_path_breakdown(self) -> dict:
        """The critical-path summary: who bounded the run, and by how much.

        ``critical_site`` is the site that bounded the *longest* join
        (for multi-join engines like LazyParBoX, the dominant depth
        step); ``critical_path_seconds`` sums every join's longest
        branch.  ``slack_seconds`` is how much busy time the *other*
        sites accumulated while the critical site worked -- the
        quantity a better placement or fragmentation could reclaim.
        """
        critical_busy = (
            self.site_seconds[self.critical_site] if self.critical_site else 0.0
        )
        return {
            "critical_site": self.critical_site,
            "critical_path_seconds": self.critical_path_seconds,
            "critical_site_busy_seconds": critical_busy,
            # The busiest site can differ from the critical one when
            # message transfers, not compute, bound a branch.
            "busiest_site": self.busiest_site(),
            "slack_seconds": max(0.0, sum(self.site_seconds.values()) - critical_busy),
        }

    def summary(self) -> dict:
        """A flat dict for table rendering."""
        return {
            "sites_contacted": len(self.visits),
            "total_visits": self.total_visits(),
            "max_visits_per_site": self.max_visits_per_site(),
            "messages": self.messages,
            "bytes_total": self.bytes_total,
            "nodes_processed": self.nodes_processed,
            "qlist_ops": self.qlist_ops,
            "compute_seconds_total": self.compute_seconds_total,
            "elapsed_seconds": self.elapsed_seconds,
            "wall_seconds": self.wall_seconds,
            "parallel_batches": self.parallel_batches,
            "critical_site": self.critical_site or "",
            "critical_path_seconds": self.critical_path_seconds,
            "dirty_site_visits": self.dirty_site_visits,
            "refresh_rounds": self.refresh_rounds,
            "migration_bytes": self.migration_bytes,
            "migration_visits": self.migration_visits,
        }


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one engine run: the Boolean answer plus its costs."""

    answer: bool
    engine: str
    metrics: Metrics
    details: dict = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        """Simulated parallel elapsed time of the evaluation."""
        return self.metrics.elapsed_seconds

    @property
    def wall_seconds(self) -> float:
        """Real elapsed time of the computation phases as executed."""
        return self.metrics.wall_seconds


@dataclass(frozen=True)
class QueryCost:
    """One query's slice of a batch ledger.

    ``qlist_ops`` is attributed *exactly* (sites count operations per
    planner segment); ``bytes_sent`` is weighted by the query's share
    of the combined query size; ``visits``, ``messages`` and
    ``elapsed_seconds`` are amortized evenly over the batch, because a
    batch pays them once regardless of how many queries ride along --
    they are fractional by design (20 messages over 8 queries is 2.5
    messages per query).  ``shared_with`` counts the *other* queries
    that deduplicated onto this query's segment.
    """

    index: int
    source: Optional[str]
    answer: bool
    qlist_len: int
    shared_with: int
    visits: float
    messages: float
    bytes_sent: float
    qlist_ops: float
    elapsed_seconds: float


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batched evaluation: N answers over one ledger.

    ``metrics`` is the whole batch's cost ledger -- the paper-style
    visit/traffic/computation counters for the *single* set of site
    visits the batch cost; ``per_query`` slices it back into
    :class:`QueryCost` rows.
    """

    answers: tuple[bool, ...]
    engine: str
    metrics: Metrics
    per_query: tuple[QueryCost, ...]
    details: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.answers)

    def __getitem__(self, index: int) -> QueryCost:
        return self.per_query[index]

    @property
    def elapsed_seconds(self) -> float:
        """Simulated parallel elapsed time of the whole batch."""
        return self.metrics.elapsed_seconds

    @property
    def wall_seconds(self) -> float:
        """Real elapsed time of the batch's computation phases."""
        return self.metrics.wall_seconds

    @property
    def bytes_per_query(self) -> float:
        """Amortized network traffic: the batching headline number."""
        return self.metrics.bytes_total / len(self.answers)

    @property
    def visits_per_query(self) -> float:
        """Amortized site visits per query."""
        return self.metrics.total_visits() / len(self.answers)

    @property
    def messages_per_query(self) -> float:
        """Amortized message count per query."""
        return self.metrics.messages / len(self.answers)

    def single(self) -> EvalResult:
        """The batch-of-one view: a plain :class:`EvalResult`.

        Engines implement batches natively and derive ``evaluate()``
        from this, so a single query's result (answer, metrics object,
        details) is exactly what the unbatched code path produced.
        """
        if len(self.answers) != 1:
            raise ValueError(f"single() on a batch of {len(self.answers)}")
        return EvalResult(
            answer=self.answers[0],
            engine=self.engine,
            metrics=self.metrics,
            details=self.details,
        )


__all__ = ["Metrics", "EvalResult", "QueryCost", "BatchResult"]
