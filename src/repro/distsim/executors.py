"""Interchangeable site-execution strategies.

The paper's ParBoX family evaluates fragments "in parallel, at each
site".  The seed of this repository *simulated* that parallelism: every
site thunk ran serially on the driver thread and the engines composed
the individually-measured seconds with ``max(...)`` by hand.  This
module makes the parallelism real while keeping the simulation honest:

* :class:`SerialSiteExecutor` -- the deterministic baseline; site jobs
  run one after another on the calling thread (the seed's behavior);
* :class:`ThreadSiteExecutor` -- a ``ThreadPoolExecutor`` with one
  worker per dispatched site.  Site evaluations are dispatched
  concurrently and interleave, but ``bottom_up`` is pure-Python CPU
  work, so on a GIL-ful CPython the threads time-slice rather than
  truly overlap -- expect ~1x wall time; the strategy's value is the
  concurrent *structure* (deadlock-freedom, shared-memory dispatch,
  a real pool exercising the engines' fork/join) and real overlap on
  GIL-releasing workloads or free-threaded builds;
* :class:`ProcessSiteExecutor` -- a ``ProcessPoolExecutor`` for
  CPU-bound formula evaluation.  Work crosses the process boundary in
  the repository's *wire formats* (fragments as serialized XML with
  virtual-node placeholders, queries as QList objects, results as
  triplet objects), exactly the data a real deployment would put on the
  network -- nothing engine-internal is pickled.

The unit of dispatch is a :class:`SiteJob`: "this site partially
evaluates these fragments against this QList with this algebra".  Every
engine's parallel stage is an instance of that job, which is what lets
one executor interface serve ParBoX, FullDist, Lazy and the sequential
baselines alike.  Executors return :class:`SiteOutcome` values carrying
the triplets, the deterministic operation counts and the *busy seconds*
measured where the work actually ran; the
:meth:`~repro.distsim.runtime.Run.parallel` primitive folds those into
the cost ledger and the critical-path calculation.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.boolexpr.compose import (
    CanonicalAlgebra,
    FormulaAlgebra,
    PaperAlgebra,
)
from repro.fragments.fragment import Fragment
from repro.xpath.qlist import QList

#: Algebras a remote evaluator (process worker or networked site
#: server) can reconstruct by name.
ALGEBRAS_BY_NAME = {
    CanonicalAlgebra.name: CanonicalAlgebra,
    PaperAlgebra.name: PaperAlgebra,
}
_ALGEBRAS_BY_NAME = ALGEBRAS_BY_NAME  # legacy alias


def algebra_wire_name(algebra: FormulaAlgebra) -> str:
    """The registry name an algebra travels under, with an exact-type check.

    Shared by every wire boundary (the process executor and the
    networked serving tier): an exact type match matters because a
    subclass inheriting ``name`` would be silently swapped for its base
    on the remote side, changing answers only under remote execution.
    """
    algebra_name = getattr(algebra, "name", None)
    registered = ALGEBRAS_BY_NAME.get(algebra_name)
    if registered is None or type(algebra) is not registered:
        raise ValueError(
            f"remote execution only supports the named algebras "
            f"{sorted(ALGEBRAS_BY_NAME)}, not {type(algebra).__name__!r}; "
            f"use the serial or threads strategy for custom algebras"
        )
    return algebra_name


# ---------------------------------------------------------------------------
# The unit of dispatch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SiteJob:
    """One site's parallel work: evaluate ``fragments`` against ``qlist``.

    ``qlist`` may be a *combined* batch query, in which case
    ``segments`` carries the planner's ``(offset, length)`` span per
    unique query so the site can attribute its operation counts back to
    individual queries (``FragmentOutcome.segment_ops``).  An empty
    ``segments`` means single-query accounting.
    """

    site_id: str
    fragments: tuple[Fragment, ...]
    qlist: QList
    algebra: FormulaAlgebra
    label: str = "bottomUp"
    segments: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class FragmentOutcome:
    """The partial answer of one fragment plus its deterministic costs.

    ``segment_ops`` attributes ``qlist_ops`` to the batch's unique
    queries (one count per :attr:`SiteJob.segments` span); empty for
    unbatched jobs.
    """

    triplet: "VectorTriplet"  # noqa: F821 - imported lazily (cycle)
    nodes_visited: int
    qlist_ops: int
    segment_ops: tuple[int, ...] = ()


@dataclass(frozen=True)
class SiteOutcome:
    """Everything a site sends back after one :class:`SiteJob`.

    ``seconds`` is the busy time measured around the site-local loop,
    in the thread or process where it actually executed.
    """

    site_id: str
    fragments: tuple[FragmentOutcome, ...]
    seconds: float

    def triplets(self) -> dict[str, "VectorTriplet"]:  # noqa: F821
        """The produced triplets keyed by fragment id."""
        return {
            outcome.triplet.fragment_id: outcome.triplet for outcome in self.fragments
        }

    def reply_bytes(self) -> int:
        """Wire size of the one reply message carrying all triplets."""
        return sum(outcome.triplet.wire_bytes() for outcome in self.fragments)


def execute_site_job(job: SiteJob) -> SiteOutcome:
    """Run one site job in the current thread and time it.

    This is the in-process execution path shared by the serial and
    thread strategies; the process strategy runs the same loop inside a
    worker process via :func:`_run_job_payload`.

    Busy seconds are measured as *thread CPU time*, not wall time: on
    the thread executor, a wall clock would silently charge each site
    for the time it spent waiting on the GIL while its siblings ran,
    making the simulated ledger depend on the execution strategy.  CPU
    time keeps the attribution executor-independent (the evaluation
    loop never blocks, so its CPU time is its serial wall time).
    """
    from repro.core.bottom_up import bottom_up  # local: avoids an import cycle

    started = time.thread_time()
    outcomes = []
    for fragment in job.fragments:
        triplet, stats = bottom_up(fragment, job.qlist, job.algebra)
        outcomes.append(
            FragmentOutcome(
                triplet=triplet,
                nodes_visited=stats.nodes_visited,
                qlist_ops=stats.qlist_ops,
                segment_ops=_segment_ops(stats.nodes_visited, job.segments),
            )
        )
    seconds = time.thread_time() - started
    return SiteOutcome(site_id=job.site_id, fragments=tuple(outcomes), seconds=seconds)


def _segment_ops(
    nodes_visited: int, segments: tuple[tuple[int, int], ...]
) -> tuple[int, ...]:
    """Per-query operation counts of one fragment evaluation.

    ``bottomUp`` touches every entry at every node, so a segment of
    *length* entries costs exactly ``nodes x length`` operations --
    the same accounting unit as ``BottomUpStats.qlist_ops``.
    """
    return tuple(nodes_visited * length for _, length in segments)


# ---------------------------------------------------------------------------
# Process-boundary wire forms
# ---------------------------------------------------------------------------


def fragment_wire(fragment: Fragment) -> tuple[str, str]:
    """One fragment in wire form: ``(fragment_id, serialized XML)``."""
    from repro.xmltree.serializer import serialize  # local: import cycle

    return (fragment.fragment_id, serialize(fragment.root))


def fragment_from_wire(wire: tuple[str, str]) -> Fragment:
    """Inverse of :func:`fragment_wire`."""
    from repro.xmltree.parser import parse_xml  # local: import cycle

    fragment_id, xml_text = wire
    return Fragment(fragment_id, parse_xml(xml_text).root)


def run_resident_job(
    fragments: Sequence[Fragment],
    qlist: QList,
    algebra: FormulaAlgebra,
    segments: tuple[tuple[int, int], ...],
) -> tuple[tuple, float]:
    """The site-local evaluation loop, results in wire form.

    The shared core of every remote evaluator: the process executor's
    worker runs it after rebuilding fragments from the payload, the
    networked site server runs it over its *resident* fragments.
    Returns ``(per-fragment results, busy seconds)`` where each result
    is ``(compact triplet, nodes visited, qlist ops, segment ops)``.
    Triplets use the compact codec, not ``to_obj()``: ground entries
    collapse into three int bitmasks and residual formulas ship once
    each through a hash-consed table, cutting the real wire volume
    without touching the simulated ledger (``wire_bytes`` stays
    defined over ``to_obj()``).
    """
    from repro.core.bottom_up import bottom_up  # local: import cycle

    started = time.thread_time()
    results = []
    for fragment in fragments:
        triplet, stats = bottom_up(fragment, qlist, algebra)
        results.append(
            (
                triplet.to_compact(),
                stats.nodes_visited,
                stats.qlist_ops,
                _segment_ops(stats.nodes_visited, segments),
            )
        )
    seconds = time.thread_time() - started
    return (tuple(results), seconds)


def outcome_from_wire(site_id: str, fragment_results: tuple, seconds: float) -> SiteOutcome:
    """Rebuild a :class:`SiteOutcome` from wire-form per-fragment results."""
    from repro.core.vectors import VectorTriplet  # local: import cycle

    outcomes = tuple(
        FragmentOutcome(
            triplet=VectorTriplet.from_compact(triplet_wire),
            nodes_visited=nodes,
            qlist_ops=ops,
            segment_ops=tuple(segment_ops),
        )
        for triplet_wire, nodes, ops, segment_ops in fragment_results
    )
    return SiteOutcome(site_id=site_id, fragments=outcomes, seconds=seconds)


def _job_payload(job: SiteJob) -> tuple:
    """Lower a job to wire formats a worker process can reconstruct."""
    fragments = tuple(fragment_wire(fragment) for fragment in job.fragments)
    return (job.site_id, fragments, job.qlist.to_obj(), algebra_wire_name(job.algebra), job.segments)


def _run_job_payload(payload: tuple) -> tuple:
    """Worker-process entry point: rebuild the job, run it, wire the result.

    Payload reconstruction (XML parsing) happens *outside* the timed
    region: it is transport cost of this execution strategy, not site
    compute of the algorithm, and charging it would make the simulated
    ledger depend on the executor.
    """
    site_id, fragment_texts, qlist_obj, algebra_name, segments = payload
    qlist = QList.from_obj(qlist_obj)
    algebra = ALGEBRAS_BY_NAME[algebra_name]()
    segments = tuple(tuple(span) for span in segments)
    fragments = [fragment_from_wire(wire) for wire in fragment_texts]
    results, seconds = run_resident_job(fragments, qlist, algebra, segments)
    return (site_id, results, seconds)


def _outcome_from_payload(result: tuple) -> SiteOutcome:
    """Rebuild a :class:`SiteOutcome` from a worker's wire-form reply."""
    site_id, fragment_results, seconds = result
    return outcome_from_wire(site_id, fragment_results, seconds)


# ---------------------------------------------------------------------------
# The three strategies
# ---------------------------------------------------------------------------


class SiteExecutor:
    """Strategy interface: run a batch of site jobs, one outcome each.

    ``run_jobs`` must return outcomes for every job (order preserved)
    and may execute them with any concurrency structure; per-site busy
    seconds are always measured where the work ran.
    """

    #: Registry key and display name.
    name = "abstract"

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (no-op for poolless strategies)."""

    def __enter__(self) -> "SiteExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class SerialSiteExecutor(SiteExecutor):
    """The deterministic baseline: jobs run in order on the caller."""

    name = "serial"

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        return [execute_site_job(job) for job in jobs]


#: Worker ceiling for an unbounded thread executor.  ThreadPoolExecutor
#: spawns workers lazily (one per not-yet-covered queued job), so a high
#: ceiling costs nothing up front while letting every site of any batch
#: this repository realistically dispatches run on its own worker.
DEFAULT_THREAD_CEILING = 256


class ThreadSiteExecutor(SiteExecutor):
    """One pool worker per dispatched site (or a configured cap).

    One pool is created lazily and kept for the executor's lifetime:
    spawning threads per batch would cost as much as the site work on
    millisecond workloads (LazyParBoX dispatches one batch per depth
    step).  Workers materialize on demand up to the ceiling, so a
    16-site broadcast really gets 16 concurrent site evaluations and
    batches beyond the ceiling queue rather than fail.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers or DEFAULT_THREAD_CEILING,
                thread_name_prefix="repro-site",
            )
        return self._pool

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        if not jobs:
            return []
        if len(jobs) == 1:  # no pool needed for a single site
            return [execute_site_job(jobs[0])]
        return list(self._ensure_pool().map(execute_site_job, jobs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessSiteExecutor(SiteExecutor):
    """Site jobs on a process pool, for CPU-bound formula evaluation.

    The pool is created lazily and cached on the executor (forking per
    batch would dominate small runs); fragments and results cross the
    boundary in wire form only.  Fragments are re-serialized on every
    batch by design: trees are mutable (the update workloads edit them
    in place) and nodes carry no version signal to invalidate a cache
    with, so caching the XML would trade correctness under mutation for
    speed -- the per-batch toll is reported honestly as wall time
    instead.  Call :meth:`close` (or use the executor as a context
    manager) to reap the workers early; an unclosed pool is shut down
    at interpreter exit by ``concurrent.futures``.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or min(8, os.cpu_count() or 2)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        if not jobs:
            return []
        payloads = [_job_payload(job) for job in jobs]
        pool = self._ensure_pool()
        return [_outcome_from_payload(reply) for reply in pool.map(_run_job_payload, payloads)]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Strategy name -> constructor, for the CLI and ``Engine(executor=...)``.
EXECUTOR_REGISTRY: dict[str, type[SiteExecutor]] = {
    SerialSiteExecutor.name: SerialSiteExecutor,
    ThreadSiteExecutor.name: ThreadSiteExecutor,
    ProcessSiteExecutor.name: ProcessSiteExecutor,
}


def resolve_executor(
    executor: Union[str, SiteExecutor, None],
    max_workers: Optional[int] = None,
) -> SiteExecutor:
    """Normalize an executor choice to an instance.

    Accepts ``None`` (the serial default), a registry name or an
    already-built :class:`SiteExecutor` (returned unchanged, so a pool
    can be shared across engines).
    """
    if executor is None:
        return SerialSiteExecutor()
    if isinstance(executor, SiteExecutor):
        return executor
    try:
        factory = EXECUTOR_REGISTRY[executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {sorted(EXECUTOR_REGISTRY)}"
        ) from None
    if factory is SerialSiteExecutor:
        return factory()
    return factory(max_workers=max_workers)


__all__ = [
    "SiteJob",
    "FragmentOutcome",
    "SiteOutcome",
    "execute_site_job",
    "ALGEBRAS_BY_NAME",
    "algebra_wire_name",
    "fragment_wire",
    "fragment_from_wire",
    "run_resident_job",
    "outcome_from_wire",
    "SiteExecutor",
    "SerialSiteExecutor",
    "ThreadSiteExecutor",
    "ProcessSiteExecutor",
    "DEFAULT_THREAD_CEILING",
    "EXECUTOR_REGISTRY",
    "resolve_executor",
]
