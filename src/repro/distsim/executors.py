"""Interchangeable site-execution strategies.

The paper's ParBoX family evaluates fragments "in parallel, at each
site".  The seed of this repository *simulated* that parallelism: every
site thunk ran serially on the driver thread and the engines composed
the individually-measured seconds with ``max(...)`` by hand.  This
module makes the parallelism real while keeping the simulation honest:

* :class:`SerialSiteExecutor` -- the deterministic baseline; site jobs
  run one after another on the calling thread (the seed's behavior);
* :class:`ThreadSiteExecutor` -- a ``ThreadPoolExecutor`` with one
  worker per dispatched site.  Site evaluations are dispatched
  concurrently and interleave, but ``bottom_up`` is pure-Python CPU
  work, so on a GIL-ful CPython the threads time-slice rather than
  truly overlap -- expect ~1x wall time; the strategy's value is the
  concurrent *structure* (deadlock-freedom, shared-memory dispatch,
  a real pool exercising the engines' fork/join) and real overlap on
  GIL-releasing workloads or free-threaded builds;
* :class:`ProcessSiteExecutor` -- **persistent site workers with
  resident fragment state**.  Each long-lived worker process receives a
  fragment's wire form (serialized XML) exactly once per epoch --
  content-addressed by :attr:`Fragment.epoch`, invalidated by the
  typed update ops, cluster split/merge and the stream maintainer --
  and keeps the parsed fragment plus its linearized form resident
  (:class:`~repro.distsim.resident.ResidentSiteState`, shared with the
  networked serving tier).  Batches then ship only ``(fragment_id,
  epoch)`` references and the query program; replies travel as compact
  triplets whose large bitmasks ride pickle protocol-5 out-of-band
  buffers (:mod:`~repro.distsim.transport`), with
  ``multiprocessing.shared_memory`` for bulk totals.  A worker that
  missed an invalidation answers with a typed *stale* reply and the
  dispatcher re-pushes and retries -- the in-process mirror of the
  serving tier's ``unknown-fragment`` self-heal.  ``resident=False``
  keeps the workers but re-ships full payloads per batch (the
  dispatch-tax baseline the benchmarks measure against).

The unit of dispatch is a :class:`SiteJob`: "this site partially
evaluates these fragments against this QList with this algebra".  Every
engine's parallel stage is an instance of that job, which is what lets
one executor interface serve ParBoX, FullDist, Lazy and the sequential
baselines alike.  Executors return :class:`SiteOutcome` values carrying
the triplets, the deterministic operation counts and the *busy seconds*
measured where the work actually ran; the
:meth:`~repro.distsim.runtime.Run.parallel` primitive folds those into
the cost ledger and the critical-path calculation.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import threading
import time
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Optional, Sequence, Union

from repro.boolexpr.compose import (
    CanonicalAlgebra,
    FormulaAlgebra,
    PaperAlgebra,
)
from repro.fragments.fragment import Fragment
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.xpath.qlist import QList

#: Algebras a remote evaluator (process worker or networked site
#: server) can reconstruct by name.
ALGEBRAS_BY_NAME = {
    CanonicalAlgebra.name: CanonicalAlgebra,
    PaperAlgebra.name: PaperAlgebra,
}
_ALGEBRAS_BY_NAME = ALGEBRAS_BY_NAME  # legacy alias


def algebra_wire_name(algebra: FormulaAlgebra) -> str:
    """The registry name an algebra travels under, with an exact-type check.

    Shared by every wire boundary (the process executor and the
    networked serving tier): an exact type match matters because a
    subclass inheriting ``name`` would be silently swapped for its base
    on the remote side, changing answers only under remote execution.
    """
    algebra_name = getattr(algebra, "name", None)
    registered = ALGEBRAS_BY_NAME.get(algebra_name)
    if registered is None or type(algebra) is not registered:
        raise ValueError(
            f"remote execution only supports the named algebras "
            f"{sorted(ALGEBRAS_BY_NAME)}, not {type(algebra).__name__!r}; "
            f"use the serial or threads strategy for custom algebras"
        )
    return algebra_name


# ---------------------------------------------------------------------------
# The unit of dispatch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SiteJob:
    """One site's parallel work: evaluate ``fragments`` against ``qlist``.

    ``qlist`` may be a *combined* batch query, in which case
    ``segments`` carries the planner's ``(offset, length)`` span per
    unique query so the site can attribute its operation counts back to
    individual queries (``FragmentOutcome.segment_ops``).  An empty
    ``segments`` means single-query accounting.
    """

    site_id: str
    fragments: tuple[Fragment, ...]
    qlist: QList
    algebra: FormulaAlgebra
    label: str = "bottomUp"
    segments: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class FragmentOutcome:
    """The partial answer of one fragment plus its deterministic costs.

    ``segment_ops`` attributes ``qlist_ops`` to the batch's unique
    queries (one count per :attr:`SiteJob.segments` span); empty for
    unbatched jobs.
    """

    triplet: "VectorTriplet"  # noqa: F821 - imported lazily (cycle)
    nodes_visited: int
    qlist_ops: int
    segment_ops: tuple[int, ...] = ()


@dataclass(frozen=True)
class SiteOutcome:
    """Everything a site sends back after one :class:`SiteJob`.

    ``seconds`` is the busy time measured around the site-local loop,
    in the thread or process where it actually executed.
    """

    site_id: str
    fragments: tuple[FragmentOutcome, ...]
    seconds: float

    def triplets(self) -> dict[str, "VectorTriplet"]:  # noqa: F821
        """The produced triplets keyed by fragment id."""
        return {
            outcome.triplet.fragment_id: outcome.triplet for outcome in self.fragments
        }

    def reply_bytes(self) -> int:
        """Wire size of the one reply message carrying all triplets."""
        return sum(outcome.triplet.wire_bytes() for outcome in self.fragments)


def execute_site_job(job: SiteJob) -> SiteOutcome:
    """Run one site job in the current thread and time it.

    This is the in-process execution path shared by the serial and
    thread strategies; the process strategy runs the same loop inside a
    worker process via :func:`_run_job_payload`.

    Busy seconds are measured as *thread CPU time*, not wall time: on
    the thread executor, a wall clock would silently charge each site
    for the time it spent waiting on the GIL while its siblings ran,
    making the simulated ledger depend on the execution strategy.  CPU
    time keeps the attribution executor-independent (the evaluation
    loop never blocks, so its CPU time is its serial wall time).
    """
    from repro.core.bottom_up import bottom_up  # local: avoids an import cycle

    started = time.thread_time()
    outcomes = []
    for fragment in job.fragments:
        triplet, stats = bottom_up(fragment, job.qlist, job.algebra)
        outcomes.append(
            FragmentOutcome(
                triplet=triplet,
                nodes_visited=stats.nodes_visited,
                qlist_ops=stats.qlist_ops,
                segment_ops=_segment_ops(stats.nodes_visited, job.segments),
            )
        )
    seconds = time.thread_time() - started
    return SiteOutcome(site_id=job.site_id, fragments=tuple(outcomes), seconds=seconds)


def _segment_ops(
    nodes_visited: int, segments: tuple[tuple[int, int], ...]
) -> tuple[int, ...]:
    """Per-query operation counts of one fragment evaluation.

    ``bottomUp`` touches every entry at every node, so a segment of
    *length* entries costs exactly ``nodes x length`` operations --
    the same accounting unit as ``BottomUpStats.qlist_ops``.
    """
    return tuple(nodes_visited * length for _, length in segments)


# ---------------------------------------------------------------------------
# Process-boundary wire forms
# ---------------------------------------------------------------------------


def fragment_wire(fragment: Fragment) -> tuple[str, str]:
    """One fragment in wire form: ``(fragment_id, serialized XML)``."""
    from repro.xmltree.serializer import serialize  # local: import cycle

    return (fragment.fragment_id, serialize(fragment.root))


def resident_fragment_wire(fragment: Fragment) -> tuple[str, int, str]:
    """A fragment's resident-push wire form: ``(id, epoch, XML)``.

    The epoch rides along so the receiving
    :class:`~repro.distsim.resident.ResidentSiteState` can content-
    address its copy; used by the process executor's pushes and the
    serving coordinator's ``LoadFragments`` alike.
    """
    from repro.xmltree.serializer import serialize  # local: import cycle

    return (fragment.fragment_id, fragment.epoch, serialize(fragment.root))


def fragment_from_wire(wire: tuple[str, str]) -> Fragment:
    """Inverse of :func:`fragment_wire`."""
    from repro.xmltree.parser import parse_xml  # local: import cycle

    fragment_id, xml_text = wire
    return Fragment(fragment_id, parse_xml(xml_text).root)


def run_resident_job(
    fragments: Sequence[Fragment],
    qlist: QList,
    algebra: FormulaAlgebra,
    segments: tuple[tuple[int, int], ...],
) -> tuple[tuple, float]:
    """The site-local evaluation loop, results in wire form.

    The shared core of every remote evaluator: the process executor's
    worker runs it after rebuilding fragments from the payload, the
    networked site server runs it over its *resident* fragments.
    Returns ``(per-fragment results, busy seconds)`` where each result
    is ``(compact triplet, nodes visited, qlist ops, segment ops)``.
    Triplets use the compact codec, not ``to_obj()``: ground entries
    collapse into three int bitmasks and residual formulas ship once
    each through a hash-consed table, cutting the real wire volume
    without touching the simulated ledger (``wire_bytes`` stays
    defined over ``to_obj()``).
    """
    from repro.core.bottom_up import bottom_up  # local: import cycle

    started = time.thread_time()
    results = []
    for fragment in fragments:
        triplet, stats = bottom_up(fragment, qlist, algebra)
        results.append(
            (
                triplet.to_compact(),
                stats.nodes_visited,
                stats.qlist_ops,
                _segment_ops(stats.nodes_visited, segments),
            )
        )
    seconds = time.thread_time() - started
    return (tuple(results), seconds)


def outcome_from_wire(site_id: str, fragment_results: tuple, seconds: float) -> SiteOutcome:
    """Rebuild a :class:`SiteOutcome` from wire-form per-fragment results."""
    from repro.core.vectors import VectorTriplet  # local: import cycle

    outcomes = tuple(
        FragmentOutcome(
            triplet=VectorTriplet.from_compact(triplet_wire),
            nodes_visited=nodes,
            qlist_ops=ops,
            segment_ops=tuple(segment_ops),
        )
        for triplet_wire, nodes, ops, segment_ops in fragment_results
    )
    return SiteOutcome(site_id=site_id, fragments=outcomes, seconds=seconds)


def _job_payload(job: SiteJob) -> tuple:
    """Lower a job to wire formats a worker process can reconstruct."""
    fragments = tuple(fragment_wire(fragment) for fragment in job.fragments)
    return (job.site_id, fragments, job.qlist.to_obj(), algebra_wire_name(job.algebra), job.segments)


def _run_job_payload(payload: tuple) -> tuple:
    """Worker-process entry point: rebuild the job, run it, wire the result.

    Payload reconstruction (XML parsing) happens *outside* the timed
    region: it is transport cost of this execution strategy, not site
    compute of the algorithm, and charging it would make the simulated
    ledger depend on the executor.
    """
    site_id, fragment_texts, qlist_obj, algebra_name, segments = payload
    qlist = QList.from_obj(qlist_obj)
    algebra = ALGEBRAS_BY_NAME[algebra_name]()
    segments = tuple(tuple(span) for span in segments)
    fragments = [fragment_from_wire(wire) for wire in fragment_texts]
    results, seconds = run_resident_job(fragments, qlist, algebra, segments)
    return (site_id, results, seconds)


def _outcome_from_payload(result: tuple) -> SiteOutcome:
    """Rebuild a :class:`SiteOutcome` from a worker's wire-form reply."""
    site_id, fragment_results, seconds = result
    return outcome_from_wire(site_id, fragment_results, seconds)


# ---------------------------------------------------------------------------
# The three strategies
# ---------------------------------------------------------------------------


class SiteExecutor:
    """Strategy interface: run a batch of site jobs, one outcome each.

    ``run_jobs`` must return outcomes for every job (order preserved)
    and may execute them with any concurrency structure; per-site busy
    seconds are always measured where the work ran.
    """

    #: Registry key and display name.
    name = "abstract"

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        raise NotImplementedError

    def retire_fragments(self, fragment_ids: Sequence[str]) -> None:
        """Drop any resident per-fragment state for these fragments.

        Called by the stream maintainer when fragments are removed
        (merge) or migrated (move, off-site split) so stateful
        executors reclaim worker memory; a no-op for the stateless
        strategies.
        """

    def close(self) -> None:
        """Release pooled workers (no-op for poolless strategies)."""

    def __enter__(self) -> "SiteExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class SerialSiteExecutor(SiteExecutor):
    """The deterministic baseline: jobs run in order on the caller."""

    name = "serial"

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        return [execute_site_job(job) for job in jobs]


#: Worker ceiling for an unbounded thread executor.  ThreadPoolExecutor
#: spawns workers lazily (one per not-yet-covered queued job), so a high
#: ceiling costs nothing up front while letting every site of any batch
#: this repository realistically dispatches run on its own worker.
DEFAULT_THREAD_CEILING = 256


class ThreadSiteExecutor(SiteExecutor):
    """One pool worker per dispatched site (or a configured cap).

    One pool is created lazily and kept for the executor's lifetime:
    spawning threads per batch would cost as much as the site work on
    millisecond workloads (LazyParBoX dispatches one batch per depth
    step).  Workers materialize on demand up to the ceiling, so a
    16-site broadcast really gets 16 concurrent site evaluations and
    batches beyond the ceiling queue rather than fail.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers or DEFAULT_THREAD_CEILING,
                thread_name_prefix="repro-site",
            )
        return self._pool

    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        if not jobs:
            return []
        if len(jobs) == 1:  # no pool needed for a single site
            return [execute_site_job(jobs[0])]
        return list(self._ensure_pool().map(execute_site_job, jobs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _resident_worker_main(conn) -> None:
    """Entry point of one persistent site-worker process.

    A strict request-reply loop over zero-copy transport frames: the
    parent never has more than one outstanding *frame* per worker, so
    neither side can deadlock on a full pipe.  A frame is one message
    or one ``("batch", messages)`` envelope (see
    :func:`~repro.distsim.transport.unwrap_batch`); a batch is handled
    message by message, in order, and answered with exactly one reply
    per message in one envelope -- so a dispatcher coalescing a whole
    site batch into one pipe write gets one wakeup back.  Messages:

    * ``("push", wires)`` -- install ``(id, epoch, xml)`` triples;
    * ``("retire", ids)`` -- drop resident fragments;
    * ``("job", site_id, refs, fingerprint, qlist_obj, algebra, segments
      [, trace])`` -- evaluate resident fragments; answers
      ``("stale", missing)`` instead of guessing when a reference cannot
      be served.  The optional trailing ``trace`` element is a
      ``(trace_id, parent_span_id)`` pair; when present the ok reply
      grows a trailing tuple of span wire forms (both sides index
      tolerantly, so either end may predate the field);
    * ``("rawjob", payload)`` -- the legacy full-payload path
      (``resident=False`` baseline);
    * ``("stats",)`` -- residency introspection for tests/leak checks;
    * ``("stop",)`` -- exit (never batched with other messages).
    """
    from repro.distsim import transport
    from repro.distsim.resident import ResidentSiteState, StaleResidentError

    state = ResidentSiteState()
    algebras: dict[str, FormulaAlgebra] = {}

    def handle(message: tuple) -> tuple:
        """One message -> one reply; errors answer typed, never raise."""
        kind = message[0]
        try:
            if kind == "job":
                _, site_id, refs, fingerprint, qlist_obj, algebra_name, segments = message[:7]
                trace = message[7] if len(message) > 7 else ()
                qlist = state.ensure_query(fingerprint, qlist_obj)
                algebra = algebras.get(algebra_name)
                if algebra is None:
                    algebra = algebras.setdefault(algebra_name, ALGEBRAS_BY_NAME[algebra_name]())
                segments = tuple(tuple(span) for span in segments)
                timer = None
                if trace:
                    timer = obs_trace.SpanTimer(
                        trace[0],
                        trace[1] if len(trace) > 1 else None,
                        "worker.execute",
                        f"worker:{os.getpid()}",
                        site=site_id,
                        fragments=len(refs),
                    )
                try:
                    results, seconds = state.run(site_id, refs, qlist, algebra, segments)
                except StaleResidentError as stale:
                    return ("stale", stale.missing)
                from repro.core.vectors import compact_with_buffers

                wired = tuple(
                    (compact_with_buffers(compact), nodes, ops, segment_ops)
                    for compact, nodes, ops, segment_ops in results
                )
                reply = ("ok", site_id, wired, seconds)
                if timer is not None:
                    reply += ((timer.finish(seconds=round(seconds, 6)).to_wire(),),)
                return reply
            if kind == "push":
                return ("ok", state.store(message[1]))
            if kind == "retire":
                return ("ok", state.retire(message[1]))
            if kind == "rawjob":
                return ("ok",) + tuple(_run_job_payload(message[1]))
            if kind == "stats":
                return (
                    "ok",
                    {
                        "resident": state.resident_epochs(),
                        "receive_counts": dict(state.receive_counts),
                        "queries": sorted(state.queries),
                    },
                )
            return ("error", "ValueError", f"unknown message {kind!r}")
        except Exception as error:  # surface to the parent, keep serving
            return ("error", type(error).__name__, str(error))

    while True:
        try:
            frame = transport.recv_payload(conn)
        except (EOFError, OSError):
            break
        stop = False
        replies = []
        for message in transport.unwrap_batch(frame):
            if message[0] == "stop":
                stop = True
                break
            replies.append(handle(message))
        if replies:
            try:
                transport.send_payload(conn, transport.wrap_batch(tuple(replies)))
            except (BrokenPipeError, OSError):
                break
        if stop:
            break
    conn.close()


class _ResidentWorker:
    """Parent-side handle of one worker: process, pipe, residency model."""

    __slots__ = ("index", "process", "conn", "resident", "submission")

    def __init__(self, index: int, process, conn) -> None:
        from repro.distsim import transport  # local: import order

        self.index = index
        self.process = process
        self.conn = conn
        #: The dispatcher's model of the worker's residency:
        #: fragment id -> epoch last pushed.  Optimistic (updated at
        #: enqueue); any desync is caught by the worker's epoch check
        #: and healed by re-push.
        self.resident: dict[str, int] = {}
        #: Coalesces this worker's submissions into framed pipe writes
        #: (one wakeup per flush); dies and is rebuilt with the worker.
        self.submission = transport.SubmissionQueue(
            functools.partial(transport.send_payload, conn)
        )


#: Per-job retry budget across stale replies and worker deaths.  One
#: self-heal round fully restores residency, so hitting the budget
#: means something is systematically wrong -- fail loudly.
_MAX_JOB_ATTEMPTS = 3


class ProcessSiteExecutor(SiteExecutor):
    """Persistent site workers with resident fragment state.

    Workers are long-lived ``multiprocessing`` processes wired to the
    dispatcher by one duplex pipe each.  Sites gain worker *affinity*
    on first dispatch (round-robin over ``max_workers``), so a site's
    fragments are pushed to exactly one worker and stay resident there;
    each push is recorded in :attr:`ship_log` as ``(worker, fragment,
    epoch)`` and never repeated for the same epoch.  Jobs then carry
    only references and the query program, and all jobs of a batch are
    multiplexed over the worker pipes concurrently (strict one-
    outstanding-message-per-worker request-reply, so a 1-worker pool is
    deadlock-free by construction).

    Self-healing: a worker that missed an invalidation answers *stale*
    and the dispatcher re-pushes exactly the named fragments and
    retries; a dead worker is respawned, its residency model reset, and
    its in-flight jobs re-dispatched.  ``stats`` counts ships, jobs,
    submits (framed pipe writes), stale retries and respawns.

    Submission is **batched** by default: everything queued for one
    worker -- catch-up pushes and all of the batch's jobs bound to it
    -- ships as one framed pipe write (one worker wakeup per batch,
    not per job), and the worker answers with one reply envelope the
    same way.  ``batch_submission=False`` restores one frame per
    message: the dispatch-tax baseline ``bench_hotpath.py`` measures
    the coalescing against.  Either way at most one *frame* is in
    flight per worker, so the request-reply deadlock-freedom argument
    is unchanged.

    ``resident=False`` keeps the persistent pool but ships full
    fragment+query payloads per job -- the dispatch-tax baseline.
    ``warm`` (a cluster) spawns workers and pre-pushes every site's
    fragments at construction, so the first batch pays neither worker
    spawn nor the full-state ship.  Call :meth:`close` (or use the
    executor as a context manager) to reap the workers; they are
    daemonic, so an unclosed pool dies with the interpreter.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        resident: bool = True,
        warm=None,
        batch_submission: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or min(8, os.cpu_count() or 2)
        self.resident = resident
        self.batch_submission = batch_submission
        #: Counter: ships / jobs / submits / stale_retries / respawns / retired.
        self.stats: Counter = Counter()
        #: Every fragment push: ``(worker_index, fragment_id, epoch)``.
        self.ship_log: list[tuple[int, str, int]] = []
        self._workers: list[Optional[_ResidentWorker]] = [None] * self.max_workers
        self._site_affinity: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Trace context of the batch being dispatched, read once per
        #: dispatch from the ambient obs context (None when tracing off).
        self._current_trace = None
        if warm is not None:
            self.warm_up(warm)

    def _count(self, event: str, n: int = 1) -> None:
        """One executor event: ``stats`` always, the process-global
        metrics registry only when one is installed (a single module
        attribute check -- the hot path stays free when nobody looks)."""
        self.stats[event] += n
        if obs_metrics._REGISTRY is not None:
            obs_metrics._REGISTRY.counter(
                "executor_events_total",
                "Resident-executor events: ships, jobs, submits, stale_retries, respawns, retired",
                labelnames=("event",),
            ).labels(event=event).inc(n)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _ResidentWorker:
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_resident_worker_main,
            args=(child_conn,),
            name=f"repro-site-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _ResidentWorker(index, process, parent_conn)
        self._workers[index] = worker
        return worker

    def _worker_for(self, site_id: str) -> _ResidentWorker:
        index = self._site_affinity.get(site_id)
        if index is None:
            index = len(self._site_affinity) % self.max_workers
            self._site_affinity[site_id] = index
        worker = self._workers[index]
        if worker is None or not worker.process.is_alive():
            worker = self._respawn(index, count=worker is not None)
        return worker

    def _respawn(self, index: int, count: bool = True) -> _ResidentWorker:
        worker = self._workers[index]
        if worker is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            if count:
                self._count("respawns")
        return self._spawn(index)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_jobs(self, jobs: Sequence[SiteJob]) -> list[SiteOutcome]:
        if not jobs:
            return []
        # One ambient-context read per batch (None unless a span
        # collector is installed *and* a span is open on this thread).
        self._current_trace = obs_trace.active_context()
        with self._lock:
            return self._dispatch(list(jobs))

    def _dispatch(self, jobs: list[SiteJob]) -> list[SiteOutcome]:
        outcomes: list[Optional[SiteOutcome]] = [None] * len(jobs)
        attempts = [0] * len(jobs)
        # queue item: (payload, tag); tag = ("push",) or ("job", index)
        queues: dict[int, deque] = {}
        for job_index, job in enumerate(jobs):
            worker = self._worker_for(job.site_id)
            queue = queues.setdefault(worker.index, deque())
            self._enqueue(queue, worker, job_index, job)
        self._pump(queues, jobs, outcomes, attempts)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _enqueue(self, queue: deque, worker: _ResidentWorker, job_index: int, job: SiteJob) -> None:
        """Queue one job (and any catch-up pushes) for ``worker``.

        In resident mode the push set is computed against the
        dispatcher's residency model and the model updated here, at
        enqueue time, so back-to-back jobs referencing the same
        fragment queue exactly one push between them.
        """
        algebra_name = algebra_wire_name(job.algebra)  # validate before any send
        if not self.resident:
            queue.append((("rawjob", _job_payload(job)), ("job", job_index)))
            self._count("jobs")
            return
        wires = []
        for fragment in job.fragments:
            epoch = fragment.epoch
            if worker.resident.get(fragment.fragment_id) != epoch:
                wires.append(resident_fragment_wire(fragment))
                worker.resident[fragment.fragment_id] = epoch
                self.ship_log.append((worker.index, fragment.fragment_id, epoch))
                self._count("ships")
        if wires:
            queue.append((("push", tuple(wires)), ("push",)))
        from repro.distsim.resident import qlist_fingerprint  # local: import cycle

        payload = (
            "job",
            job.site_id,
            tuple((fragment.fragment_id, fragment.epoch) for fragment in job.fragments),
            qlist_fingerprint(job.qlist),
            job.qlist.to_obj(),
            algebra_name,
            job.segments,
        )
        if self._current_trace is not None:
            payload += (self._current_trace.to_wire(),)
        queue.append((payload, ("job", job_index)))
        self._count("jobs")

    def _pump(
        self,
        queues: dict[int, deque],
        jobs: list[SiteJob],
        outcomes: list,
        attempts: list[int],
    ) -> None:
        """Drain all worker queues concurrently, one in-flight frame each.

        With ``batch_submission`` every kick drains the worker's whole
        queue through its :class:`~repro.distsim.transport.SubmissionQueue`
        into one framed write and expects one reply envelope carrying
        one reply per message, in order; without it, one message per
        frame (the pre-coalescing protocol, bit for bit).
        """
        from repro.distsim import transport

        in_flight: dict[int, tuple] = {}  # worker index -> tags of the sent frame

        def kick(index: int) -> None:
            while True:
                queue = queues.get(index)
                if not queue:
                    in_flight.pop(index, None)
                    return
                worker = self._workers[index]
                if self.batch_submission:
                    entries = list(queue)
                    queue.clear()
                else:
                    entries = [queue.popleft()]
                tags = tuple(tag for _, tag in entries)
                try:
                    for payload, _ in entries:
                        worker.submission.submit(payload)
                    worker.submission.flush()
                except (BrokenPipeError, OSError):
                    self._recover(index, tags, queues, jobs, attempts)
                    continue  # retry the (re-queued) work on the fresh worker
                self._count("submits")
                in_flight[index] = tags
                return

        for index in list(queues):
            kick(index)
        while in_flight:
            conn_to_index = {self._workers[i].conn: i for i in in_flight}
            for conn in _connection_wait(list(conn_to_index)):
                index = conn_to_index[conn]
                tags = in_flight[index]
                try:
                    frame = transport.recv_payload(conn)
                except (EOFError, OSError):
                    self._recover(index, tags, queues, jobs, attempts)
                    kick(index)
                    continue
                replies = transport.unwrap_batch(frame)
                if len(replies) != len(tags):  # pragma: no cover - protocol bug
                    raise RuntimeError(
                        f"site worker {index} answered {len(replies)} replies "
                        f"to a {len(tags)}-message frame"
                    )
                for tag, reply in zip(tags, replies):
                    self._on_reply(index, tag, reply, queues, jobs, outcomes, attempts)
                kick(index)

    def _recover(
        self,
        index: int,
        tags: tuple,
        queues: dict[int, deque],
        jobs: list[SiteJob],
        attempts: list[int],
    ) -> None:
        """A worker died mid-exchange: respawn it and re-dispatch.

        ``tags`` names every message of the lost frame.  The fresh
        worker's residency model starts empty, so each re-queued job
        recomputes its full push set; a lost *push* needs no replay --
        the next job referencing those fragments will draw a stale
        reply and self-heal.
        """
        worker = self._respawn(index)
        for tag in tags:
            if tag[0] != "job":
                continue
            job_index = tag[1]
            attempts[job_index] += 1
            if attempts[job_index] >= _MAX_JOB_ATTEMPTS:
                raise RuntimeError(
                    f"site worker {index} died repeatedly running "
                    f"job for site {jobs[job_index].site_id!r}"
                )
            self._enqueue(queues.setdefault(index, deque()), worker, job_index, jobs[job_index])
            self.stats["jobs"] -= 1  # re-dispatch, not a new job

    def _on_reply(
        self,
        index: int,
        tag: tuple,
        reply: tuple,
        queues: dict[int, deque],
        jobs: list[SiteJob],
        outcomes: list,
        attempts: list[int],
    ) -> None:
        kind = reply[0]
        if kind == "ok":
            if tag[0] == "job":
                _, site_id, results, seconds = reply[:4]
                outcomes[tag[1]] = outcome_from_wire(site_id, results, seconds)
                if len(reply) > 4 and reply[4]:
                    collector = obs_trace.installed_spans()
                    if collector is not None:
                        collector.ingest_wire(reply[4])
            return
        if kind == "stale" and tag[0] == "job":
            from repro.distsim.resident import StaleResidentError  # local: import cycle

            job_index = tag[1]
            job = jobs[job_index]
            attempts[job_index] += 1
            self._count("stale_retries")
            if attempts[job_index] >= _MAX_JOB_ATTEMPTS:
                raise StaleResidentError(job.site_id, reply[1])
            worker = self._workers[index]
            for fragment_id in reply[1]:  # drop the desynced model entries
                worker.resident.pop(fragment_id, None)
            self._enqueue(queues.setdefault(index, deque()), worker, job_index, job)
            self.stats["jobs"] -= 1  # re-dispatch, not a new job
            return
        if kind == "error":
            raise RuntimeError(f"site worker {index} failed: {reply[1]}: {reply[2]}")
        raise RuntimeError(f"site worker {index}: unexpected reply {reply[:1]!r} to {tag[0]!r}")

    # ------------------------------------------------------------------
    # Residency management
    # ------------------------------------------------------------------
    def warm_up(self, cluster) -> int:
        """Spawn workers and pre-push every site's fragments.

        The opt-in warm start (also reachable as ``warm=cluster`` at
        construction): after it, the first batch pays neither worker
        spawn nor the full-state ship.  Returns the number of fragments
        shipped; idempotent for unchanged epochs.
        """
        if not self.resident:
            return 0
        from repro.distsim import transport

        with self._lock:
            shipped = 0
            for site in cluster.sites():
                fragments = list(site.iter_fragments())
                if not fragments:
                    continue
                worker = self._worker_for(site.site_id)
                wires = []
                for fragment in fragments:
                    if worker.resident.get(fragment.fragment_id) != fragment.epoch:
                        wires.append(resident_fragment_wire(fragment))
                        worker.resident[fragment.fragment_id] = fragment.epoch
                        self.ship_log.append((worker.index, fragment.fragment_id, fragment.epoch))
                        self._count("ships")
                if not wires:
                    continue
                transport.send_payload(worker.conn, ("push", tuple(wires)))
                reply = transport.recv_payload(worker.conn)
                if reply[0] != "ok":  # pragma: no cover - defensive
                    raise RuntimeError(f"warm-up push failed: {reply!r}")
                shipped += len(wires)
            return shipped

    def retire_fragments(self, fragment_ids: Sequence[str]) -> None:
        """Tell every worker holding these fragments to drop them."""
        targets = tuple(fragment_ids)
        if not targets or not self.resident:
            return
        from repro.distsim import transport

        with self._lock:
            for worker in self._workers:
                if worker is None or not worker.process.is_alive():
                    continue
                held = [fid for fid in targets if fid in worker.resident]
                if not held:
                    continue
                try:
                    transport.send_payload(worker.conn, ("retire", tuple(held)))
                    transport.recv_payload(worker.conn)
                except (BrokenPipeError, EOFError, OSError):
                    self._respawn(worker.index)
                    continue
                for fragment_id in held:
                    worker.resident.pop(fragment_id, None)
                self._count("retired", len(held))

    def worker_stats(self) -> list[dict]:
        """Residency introspection of every live worker (tests, leaks)."""
        from repro.distsim import transport

        with self._lock:
            stats = []
            for worker in self._workers:
                if worker is None or not worker.process.is_alive():
                    continue
                transport.send_payload(worker.conn, ("stats",))
                reply = transport.recv_payload(worker.conn)
                if reply[0] != "ok":  # pragma: no cover - defensive
                    raise RuntimeError(f"stats request failed: {reply!r}")
                stats.append({"worker": worker.index, **reply[1]})
            return stats

    def close(self) -> None:
        from repro.distsim import transport

        with self._lock:
            workers = [worker for worker in self._workers if worker is not None]
            self._workers = [None] * self.max_workers
            self._site_affinity.clear()
            for worker in workers:
                try:
                    transport.send_payload(worker.conn, ("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for worker in workers:
                worker.process.join(timeout=5)
                if worker.process.is_alive():  # pragma: no cover - defensive
                    worker.process.terminate()
                    worker.process.join(timeout=1)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover - already torn down
                    pass


#: Strategy name -> constructor, for the CLI and ``Engine(executor=...)``.
EXECUTOR_REGISTRY: dict[str, type[SiteExecutor]] = {
    SerialSiteExecutor.name: SerialSiteExecutor,
    ThreadSiteExecutor.name: ThreadSiteExecutor,
    ProcessSiteExecutor.name: ProcessSiteExecutor,
}


def resolve_executor(
    executor: Union[str, SiteExecutor, None],
    max_workers: Optional[int] = None,
) -> SiteExecutor:
    """Normalize an executor choice to an instance.

    Accepts ``None`` (the serial default), a registry name or an
    already-built :class:`SiteExecutor` (returned unchanged, so a pool
    can be shared across engines).
    """
    if executor is None:
        return SerialSiteExecutor()
    if isinstance(executor, SiteExecutor):
        return executor
    try:
        factory = EXECUTOR_REGISTRY[executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {sorted(EXECUTOR_REGISTRY)}"
        ) from None
    if factory is SerialSiteExecutor:
        return factory()
    return factory(max_workers=max_workers)


__all__ = [
    "SiteJob",
    "FragmentOutcome",
    "SiteOutcome",
    "execute_site_job",
    "ALGEBRAS_BY_NAME",
    "algebra_wire_name",
    "fragment_wire",
    "resident_fragment_wire",
    "fragment_from_wire",
    "run_resident_job",
    "outcome_from_wire",
    "SiteExecutor",
    "SerialSiteExecutor",
    "ThreadSiteExecutor",
    "ProcessSiteExecutor",
    "DEFAULT_THREAD_CEILING",
    "EXECUTOR_REGISTRY",
    "resolve_executor",
]
