"""Event tracing for evaluations.

Attach a :class:`Trace` to a :class:`~repro.distsim.runtime.Run` to
record the exact sequence of visits, messages and site computations --
the observable protocol of an algorithm.  Tests use traces to assert
protocol-level properties ("the query was broadcast before any triplet
came back", "no message carries fragment data"); the CLI's ``--trace``
renders them as a timeline for humans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded step of an evaluation."""

    sequence: int
    kind: str  # 'visit' | 'message' | 'compute'
    site: str  # visited/computing site, or the sender for messages
    peer: Optional[str] = None  # message recipient
    detail: str = ""  # message kind, or a compute label
    amount: float = 0.0  # bytes for messages, seconds for compute

    def render(self) -> str:
        """One timeline line."""
        if self.kind == "visit":
            return f"[{self.sequence:03d}] visit    {self.site}"
        if self.kind == "message":
            return (
                f"[{self.sequence:03d}] message  {self.site} -> {self.peer}  "
                f"{self.detail} ({int(self.amount)} B)"
            )
        return f"[{self.sequence:03d}] compute  {self.site}  {self.detail} ({self.amount * 1000:.2f} ms)"


class Trace:
    """An append-only event log for one evaluation."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    # ------------------------------------------------------------------
    # Recording (called by Run)
    # ------------------------------------------------------------------
    def record_visit(self, site: str) -> None:
        self._append("visit", site)

    def record_message(self, src: str, dst: str, kind: str, nbytes: int) -> None:
        self._append("message", src, peer=dst, detail=kind, amount=float(nbytes))

    def record_compute(self, site: str, seconds: float, label: str = "") -> None:
        self._append("compute", site, detail=label, amount=seconds)

    def _append(self, kind: str, site: str, **kw) -> None:
        self._events.append(TraceEvent(sequence=len(self._events), kind=kind, site=site, **kw))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> list[TraceEvent]:
        """All events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def messages_between(self, src: str, dst: str) -> list[TraceEvent]:
        """Messages from ``src`` to ``dst``, in order."""
        return [
            event
            for event in self._events
            if event.kind == "message" and event.site == src and event.peer == dst
        ]

    def first_index(self, predicate) -> Optional[int]:
        """Sequence number of the first event satisfying ``predicate``."""
        for event in self._events:
            if predicate(event):
                return event.sequence
        return None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def render(self) -> str:
        """The full timeline, one event per line."""
        return "\n".join(event.render() for event in self._events)


__all__ = ["Trace", "TraceEvent"]
