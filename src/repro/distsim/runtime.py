"""The :class:`Run` ledger: cost attribution for one evaluation.

Engines drive a ``Run`` through four primitives:

* :meth:`Run.visit` -- record a coordinator/engine-initiated contact to
  a site (the paper's visit count);
* :meth:`Run.message` -- record an inter-site message and get back its
  simulated transfer time (0 for intra-site);
* :meth:`Run.compute` -- execute a site-local thunk, wall-clock time it,
  attribute the seconds and return ``(result, seconds)``;
* :meth:`Run.add_ops` -- record deterministic operation counts
  (nodes processed, ``node x |QList|`` ops).

The engine then composes those ingredients into a simulated elapsed
time (max over parallel branches, sum over sequential steps) and stores
it with :meth:`Run.finish`.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, TypeVar

from repro.distsim.cluster import Cluster
from repro.distsim.metrics import Metrics
from repro.distsim.trace import Trace

T = TypeVar("T")


class Run:
    """Cost ledger bound to a cluster for the duration of one evaluation.

    Pass a :class:`~repro.distsim.trace.Trace` to additionally record
    the full event timeline (visits, messages, computations in order).
    """

    def __init__(self, cluster: Cluster, trace: Optional[Trace] = None) -> None:
        self.cluster = cluster
        self.metrics = Metrics()
        self.trace = trace
        self._finished = False

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def visit(self, site_id: str) -> None:
        """Count one visit to ``site_id``."""
        self.metrics.visits[site_id] += 1
        if self.trace is not None:
            self.trace.record_visit(site_id)

    def message(self, src_site: str, dst_site: str, nbytes: int, kind: str) -> float:
        """Record a message; returns its simulated transfer seconds.

        Intra-site messages cost nothing and are not counted as network
        traffic (they never leave the machine).
        """
        same = src_site == dst_site
        if not same:
            self.metrics.messages += 1
            self.metrics.bytes_total += nbytes
            self.metrics.bytes_by_kind[kind] += nbytes
        if self.trace is not None:
            self.trace.record_message(src_site, dst_site, kind, nbytes)
        return self.cluster.network.transfer_seconds(nbytes, same_site=same)

    def ingress(self, dst_site: str, total_bytes: int, senders: int, kind: str) -> float:
        """Record a many-to-one shipment bounded by the receiver's link."""
        self.metrics.messages += senders
        self.metrics.bytes_total += total_bytes
        self.metrics.bytes_by_kind[kind] += total_bytes
        return self.cluster.network.ingress_seconds(total_bytes, senders)

    def compute(self, site_id: str, thunk: Callable[[], T]) -> tuple[T, float]:
        """Execute ``thunk`` as site-local work; returns (result, seconds)."""
        started = time.perf_counter()
        result = thunk()
        seconds = time.perf_counter() - started
        self.metrics.compute_seconds_total += seconds
        if self.trace is not None:
            self.trace.record_compute(site_id, seconds, getattr(thunk, "__name__", ""))
        return result, seconds

    def add_ops(self, nodes: int, ops: int) -> None:
        """Record deterministic computation counters."""
        self.metrics.nodes_processed += nodes
        self.metrics.qlist_ops += ops

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self, elapsed_seconds: float) -> Metrics:
        """Set the simulated elapsed time and freeze the run."""
        if self._finished:
            raise RuntimeError("run already finished")
        self.metrics.elapsed_seconds = elapsed_seconds
        self._finished = True
        return self.metrics


__all__ = ["Run"]
