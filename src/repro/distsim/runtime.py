"""The :class:`Run` ledger: cost attribution for one evaluation.

Engines drive a ``Run`` through six primitives:

* :meth:`Run.visit` -- record a coordinator/engine-initiated contact to
  a site (the paper's visit count);
* :meth:`Run.message` -- record an inter-site message and get back its
  simulated transfer time (0 for intra-site);
* :meth:`Run.compute` -- execute a site-local thunk, wall-clock time it,
  attribute the seconds and return ``(result, seconds)``;
* :meth:`Run.parallel` -- dispatch a batch of
  :class:`~repro.distsim.executors.SiteJob` values through the run's
  site executor (serial / threads / process), attribute per-site busy
  seconds and return the :class:`ParallelBatch` of outcomes;
* :meth:`Run.join` -- fold per-branch finish times into the simulated
  elapsed time of the fork/join: the *critical path* (max over
  branches), recorded with the branch that determined it;
* :meth:`Run.add_ops` -- record deterministic operation counts
  (nodes processed, ``node x |QList|`` ops);
* :meth:`Run.migrate` -- record a fragment-data shipment between sites
  during rebalancing (one :data:`MSG_MIGRATE` message, counted both in
  the normal traffic ledger and in the dedicated migration counters).

The engine composes those ingredients into a simulated elapsed time
(:meth:`Run.join` over parallel branches, sum over sequential steps)
and stores it with :meth:`Run.finish`.  Independently of the simulated
composition, the ledger tracks the *real* wall-clock time of the
computation phases (``metrics.wall_seconds``), which shrinks below
``compute_seconds_total`` when a concurrent executor overlaps site
work -- the two are reported side by side by the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, TypeVar

from repro.distsim.cluster import Cluster
from repro.distsim.executors import (
    SerialSiteExecutor,
    SiteExecutor,
    SiteJob,
    SiteOutcome,
)
from repro.distsim.metrics import Metrics
from repro.distsim.trace import Trace

#: Message kind of fragment-data shipments during rebalancing.  Defined
#: here (not in :mod:`repro.core.engine` with the evaluation kinds)
#: because :meth:`Run.migrate` is the primitive that emits it and
#: ``distsim`` must not import ``core``.
MSG_MIGRATE = "migrate"

T = TypeVar("T")


@dataclass(frozen=True)
class ParallelBatch:
    """The outcomes of one :meth:`Run.parallel` dispatch.

    ``outcomes`` preserves dispatch order (site id -> outcome);
    ``wall_seconds`` is the real end-to-end duration of the batch,
    which under a concurrent executor is less than the sum of the
    per-site busy times.
    """

    outcomes: dict[str, SiteOutcome]
    wall_seconds: float

    def busy_seconds_total(self) -> float:
        """Sum of all per-site busy seconds (the serial-equivalent cost)."""
        return sum(outcome.seconds for outcome in self.outcomes.values())

    def __iter__(self):
        return iter(self.outcomes.items())

    def __len__(self) -> int:
        return len(self.outcomes)


class Run:
    """Cost ledger bound to a cluster for the duration of one evaluation.

    Pass a :class:`~repro.distsim.trace.Trace` to additionally record
    the full event timeline (visits, messages, computations in order)
    and a :class:`~repro.distsim.executors.SiteExecutor` to choose how
    :meth:`parallel` batches really execute (default: serial).
    """

    def __init__(
        self,
        cluster: Cluster,
        trace: Optional[Trace] = None,
        executor: Optional[SiteExecutor] = None,
    ) -> None:
        self.cluster = cluster
        self.metrics = Metrics()
        self.trace = trace
        self.executor = executor or SerialSiteExecutor()
        self._finished = False
        self._longest_join = 0.0

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def visit(self, site_id: str, dirty: bool = False) -> None:
        """Count one visit to ``site_id``.

        ``dirty=True`` additionally counts the visit as a dirty-site
        contact (stream maintenance visits *only* dirty sites; the
        separate counter lets the shape checks assert that).
        """
        self.metrics.visits[site_id] += 1
        if dirty:
            self.metrics.dirty_site_visits += 1
        if self.trace is not None:
            self.trace.record_visit(site_id)

    def message(self, src_site: str, dst_site: str, nbytes: int, kind: str) -> float:
        """Record a message; returns its simulated transfer seconds.

        Intra-site messages cost nothing and are not counted as network
        traffic (they never leave the machine).
        """
        same = src_site == dst_site
        if not same:
            self.metrics.messages += 1
            self.metrics.bytes_total += nbytes
            self.metrics.bytes_by_kind[kind] += nbytes
        if self.trace is not None:
            self.trace.record_message(src_site, dst_site, kind, nbytes)
        return self.cluster.network.transfer_seconds(nbytes, same_site=same)

    def migrate(self, src_site: str, dst_site: str, nbytes: int) -> float:
        """Record one fragment migration; returns its transfer seconds.

        A migration contacts both endpoints (the origin is told to ship,
        the target to receive) and moves ``nbytes`` of fragment data as
        one :data:`MSG_MIGRATE` message.  The bytes count toward the
        normal traffic ledger *and* the dedicated migration counters, so
        rebalancing cost stays distinguishable from evaluation cost.
        An intra-site "migration" (placement unchanged, or a merge whose
        endpoints share a site) costs nothing and is not counted.
        """
        if src_site == dst_site:
            return 0.0
        self.visit(src_site)
        self.visit(dst_site)
        self.metrics.migration_visits += 2
        self.metrics.migration_bytes += nbytes
        return self.message(src_site, dst_site, nbytes, MSG_MIGRATE)

    def ingress(self, dst_site: str, total_bytes: int, senders: int, kind: str) -> float:
        """Record a many-to-one shipment bounded by the receiver's link."""
        self.metrics.messages += senders
        self.metrics.bytes_total += total_bytes
        self.metrics.bytes_by_kind[kind] += total_bytes
        return self.cluster.network.ingress_seconds(total_bytes, senders)

    def compute(self, site_id: str, thunk: Callable[[], T]) -> tuple[T, float]:
        """Execute ``thunk`` as site-local work; returns (result, seconds).

        Serial primitive: the thunk runs inline on the calling thread.
        The attributed seconds are thread CPU time -- the same clock
        :func:`~repro.distsim.executors.execute_site_job` uses -- so
        the simulated ledger stays in one clock domain regardless of
        how the parallel stages execute; the real elapsed wall time of
        the call accumulates separately into ``wall_seconds``.
        """
        wall_started = time.perf_counter()
        cpu_started = time.thread_time()
        result = thunk()
        seconds = time.thread_time() - cpu_started
        self.metrics.compute_seconds_total += seconds
        self.metrics.wall_seconds += time.perf_counter() - wall_started
        self.metrics.site_seconds[site_id] += seconds
        if self.trace is not None:
            self.trace.record_compute(site_id, seconds, getattr(thunk, "__name__", ""))
        return result, seconds

    def parallel(self, jobs: Iterable[SiteJob]) -> ParallelBatch:
        """Dispatch site jobs through the executor; attribute their costs.

        Per-site busy seconds are measured where the work ran and
        accumulate into ``compute_seconds_total`` and ``site_seconds``
        exactly as serial :meth:`compute` calls would; the batch's real
        end-to-end duration accumulates into ``wall_seconds``, so the
        simulated ledger is executor-independent while the wall clock
        reflects true concurrency.
        """
        job_list = list(jobs)
        seen_sites = {job.site_id for job in job_list}
        if len(seen_sites) != len(job_list):
            # The batch result is keyed by site id; a duplicate would
            # silently drop one job's triplets while still charging its
            # seconds.  Engines batch at most one job per site (that is
            # the paper's visit unit); merge fragments into one job.
            raise ValueError("parallel() requires at most one job per site per batch")
        started = time.perf_counter()
        outcomes = self.executor.run_jobs(job_list)
        wall = time.perf_counter() - started
        batch_outcomes: dict[str, SiteOutcome] = {}
        for job, outcome in zip(job_list, outcomes):
            batch_outcomes[outcome.site_id] = outcome
            self.metrics.compute_seconds_total += outcome.seconds
            self.metrics.site_seconds[outcome.site_id] += outcome.seconds
            if self.trace is not None:
                self.trace.record_compute(outcome.site_id, outcome.seconds, job.label)
        self.metrics.wall_seconds += wall
        self.metrics.parallel_batches += 1
        return ParallelBatch(outcomes=batch_outcomes, wall_seconds=wall)

    def join(self, branch_finish: Mapping[str, float]) -> float:
        """Simulated elapsed time of a fork/join: the critical path.

        ``branch_finish`` maps each parallel branch (site id) to its
        finish time relative to the fork.  Returns the maximum;
        repeated joins (e.g. one per LazyParBoX depth step) accumulate
        their critical paths, and ``metrics.critical_site`` keeps the
        site that bounded the *longest* join of the run -- the branch
        that dominated the elapsed time, not merely the last one.
        """
        if not branch_finish:
            return 0.0
        critical_site, finish = max(branch_finish.items(), key=lambda item: item[1])
        if finish >= self._longest_join:
            self._longest_join = finish
            self.metrics.critical_site = critical_site
        self.metrics.critical_path_seconds += finish
        return finish

    def add_ops(self, nodes: int, ops: int) -> None:
        """Record deterministic computation counters."""
        self.metrics.nodes_processed += nodes
        self.metrics.qlist_ops += ops

    def add_segment_ops(self, segment_index: int, ops: int) -> None:
        """Attribute operations to one batch segment (unique query)."""
        self.metrics.segment_ops[segment_index] += ops

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self, elapsed_seconds: float) -> Metrics:
        """Set the simulated elapsed time and freeze the run."""
        if self._finished:
            raise RuntimeError("run already finished")
        self.metrics.elapsed_seconds = elapsed_seconds
        self._finished = True
        return self.metrics


__all__ = ["Run", "ParallelBatch", "MSG_MIGRATE"]
