"""Resident site state: the one protocol behind every remote evaluator.

A *resident* holder (a persistent process-executor worker, a networked
``SiteServer``) receives each fragment's wire form **once per epoch**
-- the content-address minted by :meth:`Fragment.bump_epoch` -- and
keeps three things per fragment: the epoch it holds, the parsed
:class:`Fragment`, and its :class:`~repro.core.bottom_up.GroundLinear`
linearization (``None`` for fragments with virtual nodes).  After
that, batches ship only ``(fragment_id, epoch)`` references plus the
query program; evaluation runs through
:func:`~repro.core.bottom_up.site_bottom_up`, so all ground fragments
co-located on the holder fold in one site-vectorized pass with shared
compiled programs and per-``(fragment, query)`` base caches.

A job referencing an epoch the holder does not have raises
:class:`StaleResidentError` -- typed, with the exact missing ids -- so
dispatchers re-push and retry instead of serving stale answers.  This
is the in-process mirror of the serving tier's ``unknown-fragment`` /
``stale-fragment`` self-heal, and both tiers run through this class.

``receive_counts`` tracks wire receptions per ``(fragment_id, epoch)``
so the differential tests can assert the ship-exactly-once contract
from the holder's side, not just the dispatcher's model.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import Counter
from typing import Optional, Sequence

from repro.fragments.fragment import Fragment
from repro.xpath.qlist import QList


class StaleResidentError(RuntimeError):
    """A job referenced fragments this holder lacks or holds stale.

    Recoverable by construction: ``missing`` names exactly the
    fragments whose wire form must be (re-)pushed before the retry.
    Raised when a holder missed an invalidation -- a ``MoveFragment``
    re-homing the fragment, a ``SplitFragment``/``MergeFragment``
    rewriting it, or any content edit bumping its epoch.
    """

    def __init__(self, site_id: str, missing: Sequence[str]) -> None:
        self.site_id = site_id
        self.missing = tuple(missing)
        super().__init__(
            f"site {site_id}: resident state is missing or stale for "
            f"fragment(s) {sorted(self.missing)}"
        )


def qlist_fingerprint(qlist: QList) -> str:
    """Stable content fingerprint of a QList's wire form (cached on it).

    Resident holders key their query cache on this, so a dispatcher
    can ship the program once and reference it by fingerprint after --
    and two QList objects with identical entries share one resident
    compilation.
    """
    cached = getattr(qlist, "_resident_fingerprint", None)
    if cached is None:
        payload = json.dumps(qlist.to_obj(), separators=(",", ":"))
        cached = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        try:
            qlist._resident_fingerprint = cached
        except AttributeError:
            pass
    return cached


class ResidentSiteState:
    """Fragment + query residency of one remote evaluation holder."""

    def __init__(self) -> None:
        #: fragment id -> (epoch, Fragment, GroundLinear | None)
        self.fragments: dict[str, tuple] = {}
        #: query fingerprint -> canonical QList object
        self.queries: dict[str, QList] = {}
        #: (fragment_id, epoch) -> wire receptions (ship-once witness)
        self.receive_counts: Counter = Counter()

    # ------------------------------------------------------------------
    # Residency lifecycle
    # ------------------------------------------------------------------
    def store(self, wires: Sequence[tuple]) -> int:
        """Install fragments from ``(fragment_id, epoch, xml)`` wire triples.

        Parsing and linearization happen here, exactly once per epoch;
        afterwards evaluation never touches XML again.  Returns the
        number of fragments installed.
        """
        from repro.core.bottom_up import linearize_ground  # local: import cycle
        from repro.xmltree.parser import parse_xml  # local: import cycle

        for fragment_id, epoch, xml_text in wires:
            fragment = Fragment(fragment_id, parse_xml(xml_text).root)
            if epoch is None:
                # Legacy epoch-less wire: keep the freshly minted epoch so
                # the entry stays an int and epoch-less refs still match.
                epoch = fragment.epoch
            else:
                fragment.epoch = epoch
            self.fragments[fragment_id] = (epoch, fragment, linearize_ground(fragment))
            self.receive_counts[(fragment_id, epoch)] += 1
        return len(wires)

    def retire(self, fragment_ids: Sequence[str]) -> int:
        """Drop resident fragments; returns how many were actually held."""
        dropped = 0
        for fragment_id in fragment_ids:
            if self.fragments.pop(fragment_id, None) is not None:
                dropped += 1
        return dropped

    def resident_epochs(self) -> dict[str, int]:
        """Live ``fragment_id -> epoch`` view (leak checks, debugging)."""
        return {fid: entry[0] for fid, entry in self.fragments.items()}

    def missing_for(self, refs: Sequence[tuple]) -> list[str]:
        """Which ``(fragment_id, epoch)`` references this holder cannot serve.

        ``epoch=None`` means "any resident copy" (the serving tier's
        legacy pushes carry no epoch); otherwise epochs must match
        exactly.
        """
        missing = []
        for fragment_id, epoch in refs:
            entry = self.fragments.get(fragment_id)
            if entry is None or (epoch is not None and entry[0] != epoch):
                missing.append(fragment_id)
        return missing

    # ------------------------------------------------------------------
    # Query residency
    # ------------------------------------------------------------------
    def ensure_query(self, fingerprint: str, qlist_obj=None) -> QList:
        """The canonical resident QList for ``fingerprint``.

        The first reference must carry the wire form (``qlist_obj``);
        later references hit the cache, which is what keeps compiled
        entries, ground programs, lane kernels and per-fragment base
        arrays alive across batches.
        """
        qlist = self.queries.get(fingerprint)
        if qlist is None:
            if qlist_obj is None:
                raise KeyError(f"unknown resident query {fingerprint!r}")
            qlist = QList.from_obj(qlist_obj)
            self.queries[fingerprint] = qlist
        return qlist

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def run(
        self,
        site_id: str,
        refs: Sequence[tuple],
        qlist: QList,
        algebra,
        segments: tuple = (),
    ) -> tuple[tuple, float]:
        """Evaluate resident fragments; wire-form results like
        :func:`~repro.distsim.executors.run_resident_job`.

        ``refs`` is the ordered ``(fragment_id, epoch)`` list of the
        job; raises :class:`StaleResidentError` before touching any
        fragment if one reference cannot be served.  Returns
        ``(per-fragment results, busy seconds)`` where each result is
        ``(compact triplet, nodes visited, qlist ops, segment ops)`` --
        bitwise identical to the per-fragment path, one vectorized
        pass for all ground fragments.
        """
        from repro.core.bottom_up import site_bottom_up  # local: import cycle

        missing = self.missing_for(refs)
        if missing:
            raise StaleResidentError(site_id, missing)
        residents = [
            (entry[1], entry[2])
            for entry in (self.fragments[fragment_id] for fragment_id, _ in refs)
        ]
        n = len(qlist)
        started = time.thread_time()
        evaluated = site_bottom_up(residents, qlist, algebra)
        results = tuple(
            (
                triplet.to_compact(),
                nodes,
                nodes * n,
                tuple(nodes * length for _, length in segments),
            )
            for triplet, nodes in evaluated
        )
        seconds = time.thread_time() - started
        return results, seconds


__all__ = ["ResidentSiteState", "StaleResidentError", "qlist_fingerprint"]
