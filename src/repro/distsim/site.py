"""A site: a named store of fragments.

Sites are deliberately passive containers -- algorithm-specific work
(partial evaluation, selection passes, maintenance recomputation) is
expressed in the engines and *attributed* to a site through the
:class:`~repro.distsim.runtime.Run` ledger.  This keeps every engine's
distribution structure explicit and auditable.
"""

from __future__ import annotations

from typing import Iterator

from repro.fragments.fragment import Fragment


class Site:
    """A named site holding zero or more fragments (insertion-ordered)."""

    def __init__(self, site_id: str) -> None:
        self.site_id = site_id
        self._fragments: dict[str, Fragment] = {}

    def add_fragment(self, fragment: Fragment) -> None:
        """Store a fragment; ids must be unique per site."""
        if fragment.fragment_id in self._fragments:
            raise ValueError(f"fragment {fragment.fragment_id!r} already at {self.site_id}")
        self._fragments[fragment.fragment_id] = fragment

    def remove_fragment(self, fragment_id: str) -> Fragment:
        """Remove and return a fragment."""
        return self._fragments.pop(fragment_id)

    def fragment(self, fragment_id: str) -> Fragment:
        """Look up a local fragment."""
        return self._fragments[fragment_id]

    def has_fragment(self, fragment_id: str) -> bool:
        """True when the fragment is stored here."""
        return fragment_id in self._fragments

    def fragment_ids(self) -> list[str]:
        """Local fragment ids (``card(F_Si)`` many)."""
        return list(self._fragments)

    def iter_fragments(self) -> Iterator[Fragment]:
        """Iterate local fragments."""
        return iter(self._fragments.values())

    def data_size(self) -> int:
        """Sum of local fragment sizes (the paper's ``|F_Si|``)."""
        return sum(fragment.size() for fragment in self._fragments.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Site {self.site_id} fragments={self.fragment_ids()}>"


__all__ = ["Site"]
