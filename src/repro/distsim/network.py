"""The LAN cost model.

Message cost = latency + size / bandwidth, with intra-site messages free
(they never touch the wire).  The model is deliberately simple -- the
experiments compare *algorithm structures* (how many messages, how many
bytes, what runs in parallel), not network micro-behaviour.

The defaults are calibrated to the paper's testbed *balance*, not its
physical numbers: what the simulation must preserve is the ratio of
communication seconds to this implementation's measured site-compute
seconds.  They started as the literal 2006 LAN (100 Mbit/s switched
Ethernet, 0.5 ms one-way) when the evaluator's per-node cost stood in
for a 2006-era evaluator; the bitset ground kernel (PR 5) made site
compute ~7x faster per node, so latency and bandwidth are scaled by
the same factor to keep simulated elapsed comparisons meaningful.
Byte and message *counts* are unaffected -- only seconds move.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Compute speedup of the bitset ground kernel over the seed evaluator,
#: applied to the 2006 constants so the compute/communication balance
#: of the paper's testbed is preserved (see module docstring).  The
#: single source of the calibration factor -- BenchConfig scales its
#: experiment network with the same constant.
KERNEL_SPEEDUP = 7.0

#: 100 Mbit/s in bytes per second, balance-scaled.
DEFAULT_BANDWIDTH = 12_500_000.0 * KERNEL_SPEEDUP
#: 0.5 ms one-way LAN latency in seconds, balance-scaled.
DEFAULT_LATENCY = 0.0005 / KERNEL_SPEEDUP


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters for inter-site transfers."""

    latency_seconds: float = DEFAULT_LATENCY
    bandwidth_bytes_per_second: float = DEFAULT_BANDWIDTH

    def transfer_seconds(self, nbytes: int, same_site: bool = False) -> float:
        """Simulated one-way transfer time for a message of ``nbytes``."""
        if same_site:
            return 0.0
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return self.latency_seconds + nbytes / self.bandwidth_bytes_per_second

    def ingress_seconds(self, total_bytes: int, senders: int) -> float:
        """Time for one site to *receive* ``total_bytes`` from ``senders`` sites.

        Models the receiver's access link as the bottleneck (transfers
        share the coordinator's ingress bandwidth), which is what makes
        NaiveCentralized's shipping phase grow with the total shipped
        volume rather than the largest single fragment.
        """
        if senders <= 0 or total_bytes <= 0:
            return 0.0
        return self.latency_seconds + total_bytes / self.bandwidth_bytes_per_second


__all__ = ["NetworkModel", "DEFAULT_BANDWIDTH", "DEFAULT_LATENCY", "KERNEL_SPEEDUP"]
