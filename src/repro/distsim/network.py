"""The LAN cost model.

Message cost = latency + size / bandwidth, with intra-site messages free
(they never touch the wire).  Defaults model the paper's testbed-era
local network: 100 Mbit/s switched Ethernet with 0.5 ms one-way latency.
The model is deliberately simple -- the experiments compare *algorithm
structures* (how many messages, how many bytes, what runs in parallel),
not network micro-behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

#: 100 Mbit/s in bytes per second.
DEFAULT_BANDWIDTH = 12_500_000.0
#: One-way LAN latency in seconds.
DEFAULT_LATENCY = 0.0005


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters for inter-site transfers."""

    latency_seconds: float = DEFAULT_LATENCY
    bandwidth_bytes_per_second: float = DEFAULT_BANDWIDTH

    def transfer_seconds(self, nbytes: int, same_site: bool = False) -> float:
        """Simulated one-way transfer time for a message of ``nbytes``."""
        if same_site:
            return 0.0
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return self.latency_seconds + nbytes / self.bandwidth_bytes_per_second

    def ingress_seconds(self, total_bytes: int, senders: int) -> float:
        """Time for one site to *receive* ``total_bytes`` from ``senders`` sites.

        Models the receiver's access link as the bottleneck (transfers
        share the coordinator's ingress bandwidth), which is what makes
        NaiveCentralized's shipping phase grow with the total shipped
        volume rather than the largest single fragment.
        """
        if senders <= 0 or total_bytes <= 0:
            return 0.0
        return self.latency_seconds + total_bytes / self.bandwidth_bytes_per_second


__all__ = ["NetworkModel", "DEFAULT_BANDWIDTH", "DEFAULT_LATENCY"]
