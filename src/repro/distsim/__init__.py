"""Distributed-system substrate.

The paper's experiments ran on 10 Linux machines on a LAN.  This package
replaces that testbed with an *accounted simulation*:

* site-local computation **really executes** (the actual ``bottomUp``
  code runs for every fragment) and is wall-clock timed;
* message costs follow a parameterized LAN model
  (:class:`NetworkModel`: latency + bytes/bandwidth, zero for intra-site
  transfers);
* every engine builds its simulated elapsed time from these ingredients
  according to its own concurrency structure (parallel = max over
  branches, sequential = sum), via a :class:`Run` ledger that also
  tracks the paper's three cost metrics -- per-site **visits**, total
  **communication** bytes and total **computation** (node x |QList|
  operations).  A thread-pool backend offers truly concurrent stage-2
  execution for comparison.

:class:`Cluster` owns the fragmented tree, the placement and the site
stores, and exposes the structural update operations of Section 5.
"""

from repro.distsim.network import NetworkModel
from repro.distsim.metrics import Metrics
from repro.distsim.site import Site
from repro.distsim.cluster import Cluster
from repro.distsim.runtime import Run

__all__ = ["NetworkModel", "Metrics", "Site", "Cluster", "Run"]
