"""Distributed-system substrate.

The paper's experiments ran on 10 Linux machines on a LAN.  This package
replaces that testbed with an *accounted simulation*:

* site-local computation **really executes** (the actual ``bottomUp``
  code runs for every fragment) and is wall-clock timed -- either
  serially on the driver (the deterministic baseline) or genuinely
  concurrently on a thread or process pool, via the interchangeable
  :mod:`~repro.distsim.executors` strategies;
* message costs follow a parameterized LAN model
  (:class:`NetworkModel`: latency + bytes/bandwidth, zero for intra-site
  transfers);
* every engine builds its simulated elapsed time from these ingredients
  according to its own concurrency structure, via a :class:`Run` ledger:
  parallel stages dispatch :class:`~repro.distsim.executors.SiteJob`
  batches through :meth:`Run.parallel` and fold the branch finish times
  with :meth:`Run.join` (the critical path); sequential steps sum.  The
  ledger also tracks the paper's three cost metrics -- per-site
  **visits**, total **communication** bytes and total **computation**
  (node x |QList| operations) -- plus per-site busy time and the real
  wall clock of the computation phases.

:class:`Cluster` owns the fragmented tree, the placement and the site
stores, and exposes the structural update operations of Section 5.
"""

from repro.distsim.network import NetworkModel
from repro.distsim.metrics import BatchResult, EvalResult, Metrics, QueryCost
from repro.distsim.site import Site
from repro.distsim.cluster import Cluster
from repro.distsim.executors import (
    EXECUTOR_REGISTRY,
    ProcessSiteExecutor,
    SerialSiteExecutor,
    SiteExecutor,
    SiteJob,
    SiteOutcome,
    ThreadSiteExecutor,
    resolve_executor,
)
from repro.distsim.runtime import ParallelBatch, Run

__all__ = [
    "NetworkModel",
    "Metrics",
    "EvalResult",
    "BatchResult",
    "QueryCost",
    "Site",
    "Cluster",
    "Run",
    "ParallelBatch",
    "SiteExecutor",
    "SerialSiteExecutor",
    "ThreadSiteExecutor",
    "ProcessSiteExecutor",
    "SiteJob",
    "SiteOutcome",
    "EXECUTOR_REGISTRY",
    "resolve_executor",
]
