"""Zero-copy payload transport between the executor and its site workers.

The resident process executor talks to its workers over
``multiprocessing`` pipes.  Naive ``Connection.send`` pickles with
protocol 3-ish defaults and copies every bitmask through the pickle
stream; this module layers **pickle protocol-5 out-of-band buffers**
on top of the raw pipe instead:

* the payload skeleton (tuples, strings, small ints) is pickled once,
  with every :class:`pickle.PickleBuffer` inside it -- the large
  TRUE/FALSE prefix masks of compact triplets, see
  :func:`repro.core.vectors.compact_with_buffers` -- collected by the
  ``buffer_callback`` instead of being serialized;
* small buffer totals ride the pipe as separate ``send_bytes`` frames
  (``recv_bytes`` hands each back as one contiguous ``bytes`` object
  that is used *directly* as the pickle buffer -- no re-copy through
  the unpickler);
* totals at or above :data:`SHM_THRESHOLD_BYTES` ride **one**
  ``multiprocessing.shared_memory`` segment: the sender copies each
  buffer into the mapping and ships only ``(name, offsets)``, so the
  bulk bytes never enter the pipe at all (pipes bounce through a
  small kernel buffer, one syscall round per ~64KB).  The receiver
  makes one bulk copy out of the mapping before unlinking it --
  detaching from the segment's lifetime is what lets the receiver
  decode lazily without holding the mapping open.

Frames are tagged with one leading byte: ``0`` (no buffers), ``P``
(buffers follow on the pipe) or ``S`` (buffers in shared memory).
Both directions of the executor's strict request-reply protocol use
the same two functions, as does any test driving a worker by hand.

On top of single-payload frames sits **batched submission**:
:class:`SubmissionQueue` coalesces every message bound for one
connection into a single framed write (a lone message ships as
itself; two or more ship as one ``("batch", (...))`` envelope), and
:func:`unwrap_batch` splits an envelope back into its messages.  One
framed write is one receiver wakeup, so a dispatcher fanning a batch
of jobs out to a worker pays one pipe round per *worker*, not one per
*job* -- the reply travels as one envelope the same way.  The envelope
is pickled as part of the ordinary payload, so out-of-band protocol-5
buffers anywhere inside the batched messages keep their zero-copy
path unchanged.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable

#: First element of a coalesced-frame envelope.  A plain tuple tag --
#: not a class -- so both sides of a pipe can speak it without import
#: coupling, mirroring the worker protocol's ``("job", ...)`` style.
BATCH = "batch"

#: Out-of-band buffer totals at or above this many bytes ride one
#: shared-memory segment instead of pipe frames.
SHM_THRESHOLD_BYTES = 1 << 20


def _unregister_shm(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    The tracker assumes creator-unlinks; here the *receiver* unlinks,
    so the creator must unregister or the tracker warns (and retries
    the unlink) at interpreter shutdown.  Best-effort: the private API
    has been stable across 3.10-3.13, but a miss only costs a warning.
    """
    try:
        from multiprocessing.resource_tracker import unregister

        unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift
        pass


def send_payload(conn, obj: Any, shm_threshold: int = SHM_THRESHOLD_BYTES) -> None:
    """Pickle ``obj`` with protocol 5 and ship it over ``conn``."""
    buffers: list[pickle.PickleBuffer] = []
    body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    if not buffers:
        conn.send_bytes(b"0" + body)
        return
    views = [buffer.raw().cast("B") for buffer in buffers]
    total = sum(view.nbytes for view in views)
    if total < shm_threshold:
        sizes = tuple(view.nbytes for view in views)
        conn.send_bytes(b"P" + pickle.dumps(sizes, protocol=5))
        conn.send_bytes(body)
        for view in views:
            conn.send_bytes(view)
        return
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=total)
    offsets: list[tuple[int, int]] = []
    cursor = 0
    for view in views:
        end = cursor + view.nbytes
        segment.buf[cursor:end] = view
        offsets.append((cursor, end))
        cursor = end
    conn.send_bytes(b"S" + pickle.dumps((segment.name, tuple(offsets)), protocol=5))
    conn.send_bytes(body)
    segment.close()
    _unregister_shm(segment.name)


def recv_payload(conn) -> Any:
    """Receive one :func:`send_payload` frame set and unpickle it."""
    frame = conn.recv_bytes()
    tag, header = frame[:1], frame[1:]
    if tag == b"0":
        return pickle.loads(header)
    if tag == b"P":
        sizes = pickle.loads(header)
        body = conn.recv_bytes()
        buffers = [conn.recv_bytes() for _ in sizes]
        return pickle.loads(body, buffers=buffers)
    if tag == b"S":
        from multiprocessing import shared_memory

        name, offsets = pickle.loads(header)
        body = conn.recv_bytes()
        segment = shared_memory.SharedMemory(name=name)
        try:
            # One bulk copy out of the mapping: lets the segment be
            # unlinked immediately while the decoded object keeps
            # zero-copy views into the local bytes.
            data = bytes(segment.buf)
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
        view = memoryview(data)
        buffers = [view[start:end] for start, end in offsets]
        return pickle.loads(body, buffers=buffers)
    raise ValueError(f"unknown transport frame tag {tag!r}")


def wrap_batch(payloads: tuple) -> Any:
    """The wire form of a submission flush: itself when alone, else one
    :data:`BATCH` envelope carrying all messages in submission order."""
    if len(payloads) == 1:
        return payloads[0]
    return (BATCH, payloads)


def unwrap_batch(message: Any) -> tuple:
    """Split one received frame into its logical messages.

    The inverse of :func:`wrap_batch` for any frame: a batch envelope
    yields its messages in submission order, anything else yields
    itself -- so receivers handle batched and unbatched peers with one
    code path.  Protocol messages never collide with the envelope:
    every worker message/reply leads with a kind string other than
    ``"batch"``.
    """
    if isinstance(message, tuple) and len(message) == 2 and message[0] == BATCH:
        return tuple(message[1])
    return (message,)


class SubmissionQueue:
    """Coalesce messages bound for one connection into framed writes.

    The dispatcher-side half of batched submission: ``submit`` buffers
    a message, ``flush`` ships everything buffered as **one**
    :func:`send_payload` frame (via :func:`wrap_batch`).  ``writes``
    and ``submitted`` count frames and messages respectively; their
    ratio is the observable batching factor the dispatch benchmarks
    and tests assert on.
    """

    __slots__ = ("send", "_pending", "writes", "submitted")

    def __init__(self, send: Callable[[Any], None]) -> None:
        #: One-argument sender for a finished frame, usually
        #: ``functools.partial(send_payload, conn)``; injected so the
        #: queue is transport-agnostic (tests drive it with a list).
        self.send = send
        self._pending: list = []
        self.writes = 0
        self.submitted = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, payload: Any) -> None:
        self._pending.append(payload)
        self.submitted += 1

    def flush(self) -> int:
        """Ship everything pending in one frame; returns the message count."""
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        self.send(wrap_batch(tuple(pending)))
        self.writes += 1
        return len(pending)


__all__ = [
    "send_payload",
    "recv_payload",
    "SHM_THRESHOLD_BYTES",
    "BATCH",
    "wrap_batch",
    "unwrap_batch",
    "SubmissionQueue",
]
