"""Incremental maintenance of Boolean XPath views (paper, Section 5).

A materialized view ``M(q, T)`` caches ``(S_T, ans)`` -- the source tree
and the query answer -- augmented (as the paper's algorithm outline
requires) with the per-fragment ``(V, CV, DV)`` triplets.  Under the four
update operations (``insNode``, ``delNode``, ``splitFragments``,
``mergeFragments``) maintenance is localized: only the updated
fragment's site recomputes, only its triplet crosses the network, and
``evalST`` re-runs at the view site only when the triplet actually
changed.
"""

from repro.views.materialized import MaterializedView, MaintenanceReport
from repro.views.registry import SubscriptionRegistry, RegistryReport

__all__ = [
    "MaterializedView",
    "MaintenanceReport",
    "SubscriptionRegistry",
    "RegistryReport",
]
