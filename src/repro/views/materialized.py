"""The materialized view and its incremental maintenance algorithm.

Lifecycle (paper, Section 5):

* :meth:`MaterializedView.create` runs ParBoX once and caches the state
  ``(S_T, ans)`` plus every fragment's triplet;
* **content updates** -- after a batch of ``insNode`` / ``delNode`` on
  one fragment, call :meth:`refresh_fragment`: only that fragment's site
  re-runs ``bottomUp``; the new triplet is shipped to the view site and,
  *only if it differs from the cached one*, ``evalST`` recomputes
  ``ans``.  Communication is ``O(|q| card(F_j))`` -- independent of both
  ``|T|`` and the update size;
* **structural updates** -- :meth:`apply_split` / :meth:`apply_merge`
  wrap the cluster's ``splitFragments`` / ``mergeFragments``; ``ans``
  provably cannot change, but the source tree and the affected triplets
  are refreshed (two new triplets cross the network on a split, one on
  a merge).

Every maintenance call returns a :class:`MaintenanceReport` so tests and
benchmarks can check the locality and traffic bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.boolexpr.compose import FormulaAlgebra
from repro.core.bottom_up import bottom_up
from repro.core.engine import MSG_TRIPLET
from repro.core.eval_st import answer_variable, build_equation_system
from repro.core.parbox import ParBoXEngine
from repro.core.vectors import VectorTriplet
from repro.distsim.cluster import Cluster
from repro.distsim.runtime import Run
from repro.xmltree.node import XMLNode
from repro.xpath.qlist import QList


@dataclass(frozen=True)
class MaintenanceReport:
    """What one maintenance step cost, and whether the answer moved."""

    operation: str
    fragment_id: str
    answer: bool
    answer_changed: bool
    triplet_changed: bool
    sites_visited: tuple[str, ...]
    traffic_bytes: int
    nodes_recomputed: int

    def is_localized(self) -> bool:
        """True when at most one (data) site participated."""
        return len(self.sites_visited) <= 1


class MaterializedView:
    """A cached Boolean XPath view over a fragmented, distributed tree."""

    def __init__(
        self,
        cluster: Cluster,
        qlist: QList,
        view_site: Optional[str] = None,
        algebra: Optional[FormulaAlgebra] = None,
    ) -> None:
        self.cluster = cluster
        self.qlist = qlist
        self.algebra = algebra
        self.view_site = view_site or cluster.coordinator_site
        self.triplets: dict[str, VectorTriplet] = {}
        self.ans: bool = False
        self._created = False

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        cluster: Cluster,
        qlist: QList,
        view_site: Optional[str] = None,
        algebra: Optional[FormulaAlgebra] = None,
    ) -> "MaterializedView":
        """Materialize the view by running ParBoX once."""
        view = cls(cluster, qlist, view_site=view_site, algebra=algebra)
        view._initial_evaluation()
        return view

    def _initial_evaluation(self) -> None:
        # One ParBoX pass: every fragment's triplet is computed and cached.
        source_tree = self.cluster.source_tree()
        for fragment_id in source_tree.fragment_ids():
            triplet, _ = bottom_up(self.cluster.fragment(fragment_id), self.qlist, self.algebra)
            self.triplets[fragment_id] = triplet
        self.ans = self._solve()
        self._created = True

    def _solve(self) -> bool:
        system = build_equation_system(self.triplets)
        return system.value_of(answer_variable(self.cluster.source_tree(), self.qlist))

    # ------------------------------------------------------------------
    # Content updates (insNode / delNode batches)
    # ------------------------------------------------------------------
    def refresh_fragment(self, fragment_id: str) -> MaintenanceReport:
        """Incrementally maintain after updates inside one fragment.

        Only the site storing ``fragment_id`` is visited; it re-runs
        ``bottomUp`` on that fragment alone and ships the new triplet to
        the view site.  If the triplet is identical to the cached one,
        maintenance stops without touching ``ans``.
        """
        run = Run(self.cluster)
        site_id = self.cluster.site_of(fragment_id)
        run.visit(site_id)
        fragment = self.cluster.fragment(fragment_id)
        (pair, _seconds) = run.compute(
            site_id, lambda: bottom_up(fragment, self.qlist, self.algebra)
        )
        new_triplet, stats = pair
        run.add_ops(stats.nodes_visited, stats.qlist_ops)
        run.message(site_id, self.view_site, new_triplet.wire_bytes(), MSG_TRIPLET)

        old_triplet = self.triplets[fragment_id]
        triplet_changed = new_triplet != old_triplet
        old_answer = self.ans
        if triplet_changed:
            self.triplets[fragment_id] = new_triplet
            self.ans = self._solve()
        run.finish(0.0)
        return MaintenanceReport(
            operation="refresh",
            fragment_id=fragment_id,
            answer=self.ans,
            answer_changed=self.ans != old_answer,
            triplet_changed=triplet_changed,
            sites_visited=tuple(run.metrics.visits),
            traffic_bytes=run.metrics.bytes_total,
            nodes_recomputed=stats.nodes_visited,
        )

    def insert_node(
        self,
        fragment_id: str,
        parent: XMLNode,
        label: str,
        text: Optional[str] = None,
    ) -> MaintenanceReport:
        """``insNode(A, v)`` inside a fragment, then incremental refresh."""
        node = XMLNode(label, text=text)
        parent.add_child(node)
        return self.refresh_fragment(fragment_id)

    def delete_node(self, fragment_id: str, node: XMLNode) -> MaintenanceReport:
        """``delNode(v)`` inside a fragment, then incremental refresh."""
        fragment = self.cluster.fragment(fragment_id)
        if node is fragment.root:
            raise ValueError("cannot delete a fragment's root")
        node.detach()
        return self.refresh_fragment(fragment_id)

    # ------------------------------------------------------------------
    # Structural updates (splitFragments / mergeFragments)
    # ------------------------------------------------------------------
    def apply_split(
        self,
        fragment_id: str,
        node: XMLNode,
        new_fragment_id: Optional[str] = None,
        target_site: Optional[str] = None,
    ) -> MaintenanceReport:
        """``splitFragments(v)``: update state without touching ``ans``.

        The split site recomputes and ships **two** triplets (revised
        ``F_j`` and new ``F_k``); the answer provably does not change --
        asserted here as a safety net.
        """
        run = Run(self.cluster)
        origin_site = self.cluster.site_of(fragment_id)
        new_id = self.cluster.split_fragment(fragment_id, node, new_fragment_id, target_site)
        run.visit(origin_site)

        nodes = 0
        for fid in (fragment_id, new_id):
            (pair, _seconds) = run.compute(
                origin_site,
                lambda f=self.cluster.fragment(fid): bottom_up(f, self.qlist, self.algebra),
            )
            triplet, stats = pair
            run.add_ops(stats.nodes_visited, stats.qlist_ops)
            nodes += stats.nodes_visited
            self.triplets[fid] = triplet
            run.message(origin_site, self.view_site, triplet.wire_bytes(), MSG_TRIPLET)

        old_answer = self.ans
        self.ans = self._solve()
        assert self.ans == old_answer, "splitFragments must not change the view answer"
        run.finish(0.0)
        return MaintenanceReport(
            operation="split",
            fragment_id=fragment_id,
            answer=self.ans,
            answer_changed=False,
            triplet_changed=True,
            sites_visited=tuple(run.metrics.visits),
            traffic_bytes=run.metrics.bytes_total,
            nodes_recomputed=nodes,
        )

    def apply_merge(self, fragment_id: str, virtual_node: XMLNode) -> MaintenanceReport:
        """``mergeFragments(v)``: absorb a sub-fragment; ``ans`` unchanged."""
        run = Run(self.cluster)
        absorbed = self.cluster.merge_fragment(fragment_id, virtual_node)
        if absorbed is None:  # the paper's no-op case
            run.finish(0.0)
            return MaintenanceReport(
                operation="merge-noop",
                fragment_id=fragment_id,
                answer=self.ans,
                answer_changed=False,
                triplet_changed=False,
                sites_visited=(),
                traffic_bytes=0,
                nodes_recomputed=0,
            )
        self.triplets.pop(absorbed, None)
        site_id = self.cluster.site_of(fragment_id)
        run.visit(site_id)
        (pair, _seconds) = run.compute(
            site_id,
            lambda: bottom_up(self.cluster.fragment(fragment_id), self.qlist, self.algebra),
        )
        triplet, stats = pair
        run.add_ops(stats.nodes_visited, stats.qlist_ops)
        self.triplets[fragment_id] = triplet
        run.message(site_id, self.view_site, triplet.wire_bytes(), MSG_TRIPLET)

        old_answer = self.ans
        self.ans = self._solve()
        assert self.ans == old_answer, "mergeFragments must not change the view answer"
        run.finish(0.0)
        return MaintenanceReport(
            operation="merge",
            fragment_id=fragment_id,
            answer=self.ans,
            answer_changed=False,
            triplet_changed=True,
            sites_visited=tuple(run.metrics.visits),
            traffic_bytes=run.metrics.bytes_total,
            nodes_recomputed=stats.nodes_visited,
        )

    # ------------------------------------------------------------------
    # Oracles
    # ------------------------------------------------------------------
    def recompute_from_scratch(self) -> bool:
        """Full ParBoX re-evaluation (the expensive alternative)."""
        return ParBoXEngine(self.cluster, self.algebra).evaluate(self.qlist).answer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MaterializedView ans={self.ans} fragments={len(self.triplets)}>"


__all__ = ["MaterializedView", "MaintenanceReport"]
