"""A subscription registry: many standing Boolean queries, one traversal.

The paper motivates Boolean XPath with publish/subscribe systems, where
*many* subscriptions stand against the same (distributed) document.
Maintaining each as an independent
:class:`~repro.views.materialized.MaterializedView` would traverse an
updated fragment once **per subscription**; the registry instead keeps
the whole book standing on a
:class:`~repro.stream.maintainer.StreamMaintainer` and maintains it in
a *single* combined ``bottomUp`` pass per dirty fragment -- the
per-update site work is ``O(|F_j| · Σ|q_i|)`` with one traversal's
constant factor, and only the triplet slices that actually changed
cross the network.

Registration is incremental end to end:

* a textually repeated subscription is compiled once (the shared
  :class:`~repro.core.plan.QueryCache`);
* a subscription compiling to an already-standing query joins its
  segment with **no recomputation and no re-solve at all** -- and
  unsubscribing such a duplicate is equally free;
* a genuinely new query evaluates *only its own segment* over the
  fragments (not the whole combined plan), and unsubscribing the last
  rider of a segment just drops caches -- the surviving segments'
  answers and triplets are reused as-is.

The registry exposes the same maintenance contract as a single view:
create, then call :meth:`notify_fragment_updated` after content changes
inside a fragment; the report lists which subscriptions flipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.boolexpr.compose import FormulaAlgebra
from repro.core.plan import BatchPlan, QueryCache
from repro.distsim.cluster import Cluster
from repro.distsim.executors import SiteExecutor
from repro.stream.maintainer import StreamMaintainer
from repro.xpath.qlist import QList


@dataclass(frozen=True)
class RegistryReport:
    """Outcome of one maintenance round."""

    fragment_id: str
    changed: tuple[str, ...]  # subscriptions whose answer flipped
    triplet_changed: bool
    sites_visited: tuple[str, ...]
    traffic_bytes: int
    nodes_recomputed: int


class SubscriptionRegistry:
    """Standing Boolean XPath subscriptions over one cluster.

    A thin naming/report facade over a
    :class:`~repro.stream.maintainer.StreamMaintainer`; pass
    ``executor`` (a name or a shared
    :class:`~repro.distsim.executors.SiteExecutor`) to refresh dirty
    sites concurrently.
    """

    def __init__(
        self,
        cluster: Cluster,
        algebra: Optional[FormulaAlgebra] = None,
        executor: Union[str, SiteExecutor, None] = None,
    ) -> None:
        self.cluster = cluster
        self.algebra = algebra
        self._maintainer = StreamMaintainer(cluster, algebra=algebra, executor=executor)

    @property
    def cache(self) -> QueryCache:
        """The compiled-query cache (shared with the maintainer)."""
        return self._maintainer.cache

    @property
    def maintainer(self) -> StreamMaintainer:
        """The underlying stream maintainer (changefeed, update log)."""
        return self._maintainer

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def subscribe(self, name: str, query: Union[str, QList]) -> bool:
        """Register a subscription (text or compiled); returns its answer.

        A duplicate of a standing query costs bookkeeping only; a new
        one evaluates just its own segment across the fragments.
        """
        return self._maintainer.subscribe(name, query)

    def unsubscribe(self, name: str) -> None:
        """Remove a subscription (never re-solves surviving ones)."""
        self._maintainer.unsubscribe(name)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def answers(self) -> dict[str, bool]:
        """Current answer of every subscription."""
        return self._maintainer.answers()

    def answer(self, name: str) -> bool:
        """Current answer of one subscription."""
        return self._maintainer.answer(name)

    def names(self) -> list[str]:
        """Registered subscription names, in registration order."""
        return self._maintainer.names()

    def plan(self) -> Optional[BatchPlan]:
        """The current batch plan (None when no subscriptions stand)."""
        return self._maintainer.plan()

    def combined_size(self) -> int:
        """|QList| of the combined query (the shared-traversal width).

        Smaller than the sum of subscription sizes whenever
        deduplication collapsed identical queries.
        """
        return self._maintainer.combined_size()

    def duplicate_subscriptions(self) -> int:
        """Standing subscriptions that share another one's compiled query."""
        return self._maintainer.duplicate_subscriptions()

    def __len__(self) -> int:
        return len(self._maintainer)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def notify_fragment_updated(self, fragment_id: str) -> RegistryReport:
        """Incrementally maintain **all** subscriptions after an update.

        One visit to the fragment's site, one combined ``bottomUp``
        pass -- regardless of how many subscriptions stand -- and only
        the changed triplet slices on the wire (a control-sized ack
        when nothing moved).
        """
        if len(self._maintainer) == 0:
            raise ValueError("no subscriptions registered")
        round_ = self._maintainer.refresh([fragment_id])
        return RegistryReport(
            fragment_id=fragment_id,
            changed=round_.changed,
            triplet_changed=round_.triplet_changed,
            sites_visited=round_.sites_visited,
            traffic_bytes=round_.traffic_bytes,
            nodes_recomputed=round_.nodes_recomputed,
        )

    def recompute_from_scratch(self) -> dict[str, bool]:
        """Oracle: fresh evaluation of every subscription."""
        return self._maintainer.recompute_from_scratch()

    def close(self) -> None:
        """Release the executor pool the underlying maintainer owns."""
        self._maintainer.close()

    def __enter__(self) -> "SubscriptionRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SubscriptionRegistry {len(self)} subscriptions |q|={self.combined_size()}>"


__all__ = ["SubscriptionRegistry", "RegistryReport"]
