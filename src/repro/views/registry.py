"""A subscription registry: many standing Boolean queries, one traversal.

The paper motivates Boolean XPath with publish/subscribe systems, where
*many* subscriptions stand against the same (distributed) document.
Maintaining each as an independent
:class:`~repro.views.materialized.MaterializedView` would traverse an
updated fragment once **per subscription**; the registry instead plans
all subscriptions as one batch
(:func:`~repro.core.plan.plan_batch` -- the same planner the engines'
``evaluate_many`` uses) and evaluates the combined QList in a *single*
``bottomUp`` pass per fragment -- the per-update site work is
``O(|F_j| · Σ|q_i|)`` with one traversal's constant factor, and the
update message carries one combined triplet.  Textually repeated
subscriptions are compiled once (the registry's
:class:`~repro.core.plan.QueryCache`), and subscriptions that compile
to identical QLists collapse onto one shared slice of the combined
query, shrinking both the broadcast and the per-update traversal.

The registry exposes the same maintenance contract as a single view:
create, then call :meth:`notify_fragment_updated` after content changes
inside a fragment; the report lists which subscriptions flipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.boolexpr.compose import FormulaAlgebra
from repro.core.bottom_up import bottom_up
from repro.core.engine import MSG_TRIPLET
from repro.core.eval_st import answer_variable, build_equation_system
from repro.core.plan import BatchPlan, QueryCache, plan_batch
from repro.core.vectors import VectorTriplet
from repro.distsim.cluster import Cluster
from repro.distsim.runtime import Run
from repro.xpath.qlist import QList


@dataclass(frozen=True)
class RegistryReport:
    """Outcome of one maintenance round."""

    fragment_id: str
    changed: tuple[str, ...]  # subscriptions whose answer flipped
    triplet_changed: bool
    sites_visited: tuple[str, ...]
    traffic_bytes: int
    nodes_recomputed: int


class SubscriptionRegistry:
    """Standing Boolean XPath subscriptions over one cluster."""

    def __init__(self, cluster: Cluster, algebra: Optional[FormulaAlgebra] = None) -> None:
        self.cluster = cluster
        self.algebra = algebra
        self.cache = QueryCache()
        self._names: list[str] = []
        self._qlists: list[QList] = []
        self._plan: Optional[BatchPlan] = None
        self._triplets: dict[str, VectorTriplet] = {}
        self._answers: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def subscribe(self, name: str, query: Union[str, QList]) -> bool:
        """Register a subscription (text or compiled); returns its answer.

        Texts go through the registry's compiled-query cache, so a
        popular subscription arriving from many subscribers is parsed
        once; identical compiled queries share one slice of the
        combined plan regardless.
        """
        if name in self._names:
            raise ValueError(f"subscription {name!r} already registered")
        # Compile before touching any state: a parse error must leave
        # the registry exactly as it was.
        qlist = self.cache.qlist(query)
        self._names.append(name)
        self._qlists.append(qlist)
        self._rebuild()
        return self._answers[name]

    def unsubscribe(self, name: str) -> None:
        """Remove a subscription."""
        index = self._names.index(name)
        del self._names[index]
        del self._qlists[index]
        if self._names:
            self._rebuild()
        else:
            self._plan = None
            self._triplets.clear()
            self._answers.clear()

    def _rebuild(self) -> None:
        self._plan = plan_batch(self._qlists)
        self._triplets = {}
        source_tree = self.cluster.source_tree()
        for fragment_id in source_tree.fragment_ids():
            triplet, _ = bottom_up(
                self.cluster.fragment(fragment_id), self._plan.combined, self.algebra
            )
            self._triplets[fragment_id] = triplet
        self._solve()

    def _solve(self) -> None:
        assert self._plan is not None
        system = build_equation_system(self._triplets)
        source_tree = self.cluster.source_tree()
        self._answers = {
            name: system.value_of(answer_variable(source_tree, index=answer_index))
            for name, answer_index in zip(self._names, self._plan.answer_indices)
        }

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def answers(self) -> dict[str, bool]:
        """Current answer of every subscription."""
        return dict(self._answers)

    def answer(self, name: str) -> bool:
        """Current answer of one subscription."""
        return self._answers[name]

    def names(self) -> list[str]:
        """Registered subscription names, in registration order."""
        return list(self._names)

    def plan(self) -> Optional[BatchPlan]:
        """The current batch plan (None when no subscriptions stand)."""
        return self._plan

    def combined_size(self) -> int:
        """|QList| of the combined query (the shared-traversal width).

        Smaller than the sum of subscription sizes whenever
        deduplication collapsed identical queries.
        """
        return len(self._plan.combined) if self._plan is not None else 0

    def duplicate_subscriptions(self) -> int:
        """Standing subscriptions that share another one's compiled query."""
        return self._plan.duplicate_count() if self._plan is not None else 0

    def __len__(self) -> int:
        return len(self._names)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def notify_fragment_updated(self, fragment_id: str) -> RegistryReport:
        """Incrementally maintain **all** subscriptions after an update.

        One visit to the fragment's site, one combined ``bottomUp``
        pass, one combined triplet on the wire -- regardless of how many
        subscriptions stand.
        """
        if self._plan is None:
            raise ValueError("no subscriptions registered")
        combined = self._plan.combined
        run = Run(self.cluster)
        site_id = self.cluster.site_of(fragment_id)
        run.visit(site_id)
        fragment = self.cluster.fragment(fragment_id)
        (pair, _seconds) = run.compute(
            site_id, lambda: bottom_up(fragment, combined, self.algebra)
        )
        new_triplet, stats = pair
        run.add_ops(stats.nodes_visited, stats.qlist_ops)
        run.message(site_id, self.cluster.coordinator_site, new_triplet.wire_bytes(), MSG_TRIPLET)

        old_answers = dict(self._answers)
        triplet_changed = new_triplet != self._triplets[fragment_id]
        if triplet_changed:
            self._triplets[fragment_id] = new_triplet
            self._solve()
        changed = tuple(
            name for name in self._names if self._answers[name] != old_answers[name]
        )
        run.finish(0.0)
        return RegistryReport(
            fragment_id=fragment_id,
            changed=changed,
            triplet_changed=triplet_changed,
            sites_visited=tuple(run.metrics.visits),
            traffic_bytes=run.metrics.bytes_total,
            nodes_recomputed=stats.nodes_visited,
        )

    def recompute_from_scratch(self) -> dict[str, bool]:
        """Oracle: fresh evaluation of every subscription."""
        self._rebuild()
        return self.answers()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SubscriptionRegistry {len(self)} subscriptions |q|={self.combined_size()}>"


__all__ = ["SubscriptionRegistry", "RegistryReport"]
