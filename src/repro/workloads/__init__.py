"""Workloads: documents, fragmentations and queries for the experiments.

* :mod:`repro.workloads.portfolio` -- the paper's running example (the
  stock portfolio of Fig. 1(b) with the fragmentation of Fig. 2);
* :mod:`repro.workloads.xmark` -- a deterministic XMark-like auction
  document generator (the paper's data source), sized in *scaled MB*;
* :mod:`repro.workloads.queries` -- query factories: the four
  ``|QList| in {2, 8, 15, 23}`` sizes of Experiments 1-3 and the
  fragment-targeted ``qFk`` queries of Experiment 2;
* :mod:`repro.workloads.topologies` -- the fragment-tree shapes of
  Fig. 6 (star FT1, chain FT2, bushy FT3) realized over XMark data;
* :mod:`repro.workloads.pubsub` -- many-subscriber subscription streams
  (popular queries recur) for the batching experiments;
* :mod:`repro.workloads.updates` -- skewed fragment-update streams
  (hot fragments, occasional split/merge) for the stream experiments.
"""

from repro.workloads.portfolio import (
    build_portfolio_tree,
    build_portfolio_cluster,
    PORTFOLIO_QUERIES,
)
from repro.workloads.xmark import generate_xmark_site, NODES_PER_SCALED_MB
from repro.workloads.queries import (
    query_of_size,
    QUERY_SIZES,
    seal_query,
    random_query,
)
from repro.workloads.topologies import (
    star_ft1,
    chain_ft2,
    bushy_ft3,
    co_located,
    FT3_SHAPE,
)
from repro.workloads.pubsub import subscription_texts
from repro.workloads.updates import update_stream

__all__ = [
    "build_portfolio_tree",
    "build_portfolio_cluster",
    "PORTFOLIO_QUERIES",
    "generate_xmark_site",
    "NODES_PER_SCALED_MB",
    "query_of_size",
    "QUERY_SIZES",
    "seal_query",
    "random_query",
    "star_ft1",
    "chain_ft2",
    "bushy_ft3",
    "co_located",
    "FT3_SHAPE",
    "subscription_texts",
    "update_stream",
]
