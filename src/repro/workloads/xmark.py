"""A deterministic XMark-like document generator.

The paper's experiments generate "multiple XMark sites" and assign
(fragments of) them to machines.  The original XMark generator emits
real megabytes of auction-site XML; here documents are sized in **scaled
megabytes**: one scaled MB corresponds to :data:`NODES_PER_SCALED_MB`
element nodes (configurable; override with the ``REPRO_NODES_PER_MB``
environment variable).  All sweeps in the experiments vary *relative*
sizes, so the scale constant cancels out of every comparison.

The element vocabulary follows XMark's auction schema: ``site`` with
``regions`` (items per continent), ``categories``, ``people`` (persons
with profiles) and ``open_auctions`` / ``closed_auctions`` (with
bidders, prices, annotations).  Generation is fully deterministic given
the seed.
"""

from __future__ import annotations

import os
import random
from typing import Optional

from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import XMLTree

#: Element nodes per scaled megabyte (the size unit of all experiments).
NODES_PER_SCALED_MB = int(os.environ.get("REPRO_NODES_PER_MB", "160"))

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
_WORDS = (
    "gold", "silver", "vintage", "rare", "mint", "boxed", "antique", "signed",
    "original", "limited", "classic", "restored", "sealed", "graded", "promo",
)
_CITIES = ("lagos", "osaka", "perth", "bergen", "dallas", "quito", "seoul", "turin")
_COUNTRIES = ("nigeria", "japan", "australia", "norway", "usa", "ecuador", "korea", "italy")


class _Emitter:
    """Tracks the node budget while records are appended."""

    def __init__(self, builder: TreeBuilder, budget: int) -> None:
        self.builder = builder
        self.remaining = budget

    def spend(self, nodes: int) -> None:
        self.remaining -= nodes


def generate_xmark_site(
    scaled_mb: float,
    seed: int = 0,
    site_index: int = 0,
    nodes_per_mb: Optional[int] = None,
) -> XMLTree:
    """Generate one XMark-like ``site`` document of ``scaled_mb`` scaled MB.

    ``site_index`` diversifies text content between the multiple "XMark
    sites" an experiment generates (matching the paper's setup).
    """
    per_mb = nodes_per_mb or NODES_PER_SCALED_MB
    budget = max(10, int(scaled_mb * per_mb))
    rng = random.Random((seed << 16) ^ site_index)

    builder = TreeBuilder("site")
    emitter = _Emitter(builder, budget)
    emitter.spend(1)  # the root

    # Fixed small sections first, then fill with the three record kinds
    # in XMark-ish proportions: items 40%, people 25%, auctions 35%.
    _emit_categories(emitter, rng)
    section_budget = emitter.remaining
    _emit_regions(emitter, rng, int(section_budget * 0.40))
    _emit_people(emitter, rng, int(section_budget * 0.25))
    _emit_auctions(emitter, rng, emitter.remaining)
    return builder.build()


def _words(rng: random.Random, count: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def _emit_categories(emitter: _Emitter, rng: random.Random) -> None:
    builder = emitter.builder
    builder.open("categories")
    emitter.spend(1)
    for index in range(4):
        builder.open("category")
        builder.leaf("name", f"category-{index}")
        builder.leaf("description", _words(rng, 3))
        builder.close()
        emitter.spend(3)
    builder.close()


def _emit_regions(emitter: _Emitter, rng: random.Random, budget: int) -> None:
    builder = emitter.builder
    builder.open("regions")
    emitter.spend(1)
    for name in _REGIONS:
        builder.open(name)
        builder.close()
    emitter.spend(len(_REGIONS))
    # Fill the region elements round-robin by appending items directly.
    regions = builder.current.children
    index = 0
    while budget >= 12:
        region = regions[index % len(regions)]
        item_nodes = _item_node_count()
        _append_item(region, rng, index)
        emitter.spend(item_nodes)
        budget -= item_nodes
        index += 1
    builder.close()


def _item_node_count() -> int:
    return 12  # item + 11 leaves/subnodes, kept in sync with _append_item


def _append_item(region, rng: random.Random, index: int) -> None:
    from repro.xmltree.node import XMLNode

    item = XMLNode("item")
    item.add_child(XMLNode("location", text=rng.choice(_COUNTRIES)))
    item.add_child(XMLNode("quantity", text=str(rng.randint(1, 9))))
    item.add_child(XMLNode("name", text=f"item-{index}-{_words(rng, 1)}"))
    item.add_child(XMLNode("payment", text="creditcard"))
    description = XMLNode("description")
    description.add_child(XMLNode("text", text=_words(rng, 4)))
    item.add_child(description)
    item.add_child(XMLNode("shipping", text="worldwide"))
    item.add_child(XMLNode("incategory", text=f"category-{rng.randint(0, 3)}"))
    mailbox = XMLNode("mailbox")
    mail = XMLNode("mail")
    mail.add_child(XMLNode("from", text=f"user{rng.randint(0, 999)}"))
    mailbox.add_child(mail)
    item.add_child(mailbox)
    region.add_child(item)


def _person_node_count() -> int:
    return 11  # person + 10 descendants, kept in sync with _emit_people


def _emit_people(emitter: _Emitter, rng: random.Random, budget: int) -> None:
    builder = emitter.builder
    builder.open("people")
    emitter.spend(1)
    index = 0
    while budget >= _person_node_count():
        builder.open("person")
        builder.leaf("name", f"person-{index}")
        builder.leaf("emailaddress", f"person{index}@example.net")
        builder.open("address")
        builder.leaf("city", rng.choice(_CITIES))
        builder.leaf("country", rng.choice(_COUNTRIES))
        builder.close()
        builder.open("profile")
        builder.leaf("interest", f"category-{rng.randint(0, 3)}")
        builder.leaf("education", rng.choice(("high-school", "college", "graduate")))
        builder.leaf("age", str(rng.randint(18, 80)))
        builder.close()
        builder.leaf("creditcard", f"{rng.randint(1000, 9999)}-{rng.randint(1000, 9999)}")
        builder.close()
        emitter.spend(_person_node_count())
        budget -= _person_node_count()
        index += 1
    builder.close()


def _auction_node_count(bidders: int) -> int:
    return 7 + 3 * bidders  # kept in sync with _emit_auctions


def _emit_auctions(emitter: _Emitter, rng: random.Random, budget: int) -> None:
    builder = emitter.builder
    builder.open("open_auctions")
    emitter.spend(1)
    index = 0
    while True:
        bidders = rng.randint(1, 3)
        cost = _auction_node_count(bidders)
        if budget < cost:
            break
        builder.open("open_auction")
        builder.leaf("initial", str(rng.randint(1, 200)))
        for bid in range(bidders):
            builder.open("bidder")
            builder.leaf("date", f"2006-0{rng.randint(1, 9)}-1{rng.randint(0, 9)}")
            # The first bid of every document is a deterministic
            # increase of 7, so the |QList| = 15 and 23 benchmark
            # queries have data-independent answers (true/false resp.).
            if index == 0 and bid == 0:
                builder.leaf("increase", "7")
            else:
                builder.leaf("increase", str(rng.randint(10, 50)))
            builder.close()
        builder.leaf("current", str(rng.randint(200, 900)))
        builder.leaf("itemref", f"item-{rng.randint(0, 500)}")
        builder.leaf("seller", f"person-{rng.randint(0, 200)}")
        builder.open("annotation")
        builder.leaf("description", _words(rng, 2))
        builder.close()
        builder.close()
        emitter.spend(cost)
        budget -= cost
        index += 1
    builder.close()


__all__ = ["generate_xmark_site", "NODES_PER_SCALED_MB"]
