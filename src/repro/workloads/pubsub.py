"""Many-subscriber pub/sub workloads over the XMark vocabulary.

The batching experiments need what a real dissemination broker sees: a
long stream of standing Boolean XPath subscriptions where a few
*popular* subscriptions recur verbatim (everyone watches the GOOG
price) amid a long tail of personalized ones.  :func:`subscription_texts`
generates that stream deterministically: subscribers draw from a small
pool of templates, so a batch of *B* consecutive subscriptions contains
``unique(B) <= pool_size`` distinct texts -- and the bigger the batch,
the larger the fraction the batch planner deduplicates away, which is
exactly the amortization curve the ``batching`` experiment plots.
"""

from __future__ import annotations

import random

# Template pool: realistic subscription bodies over XMark element names.
# The {city}/{amount}/{category} slots give the long tail; templates
# without slots are the "popular" subscriptions every subscriber shares.
_TEMPLATES = (
    "[//person[profile/education = \"college\"]]",
    "[//bidder[increase = \"{amount}\"]]",
    "[//address[city = \"{city}\"]]",
    "[not(//item[shipping])]",
    "[//profile[interest = \"{category}\"]]",
    "[//open_auction[annotation/description]]",
    "[//item[location = \"{city}\" and //bidder]]",
    "[//seller or //bidder[increase = \"{amount}\"]]",
)

_CITIES = ("lagos", "perth", "quito", "oslo")
_AMOUNTS = ("3", "7", "12")
_CATEGORIES = ("category-1", "category-2")


def _distinct_pool_texts() -> frozenset[str]:
    """Every concrete text the template pool can produce."""
    return frozenset(
        template.format(city=city, amount=amount, category=category)
        for template in _TEMPLATES
        for city in _CITIES
        for amount in _AMOUNTS
        for category in _CATEGORIES
    )


def subscription_texts(
    count: int,
    seed: int = 0,
    pool_size: int = 12,
) -> list[str]:
    """A deterministic stream of ``count`` subscription texts.

    First materializes a pool of ``pool_size`` concrete subscriptions
    (templates with their slots filled), then draws the stream from the
    pool with replacement -- duplicates are the point: they model
    popular subscriptions and give the batch planner something to
    deduplicate.  Same ``(count, seed, pool_size)`` -> same stream.
    """
    if count < 1:
        raise ValueError("need at least one subscription")
    attainable = len(_distinct_pool_texts())
    if not 1 <= pool_size <= attainable:
        raise ValueError(
            f"pool_size must be between 1 and {attainable} "
            f"(the template pool's distinct texts)"
        )
    rng = random.Random(seed)
    pool: list[str] = []
    seen: set[str] = set()
    while len(pool) < pool_size:
        template = rng.choice(_TEMPLATES)
        text = template.format(
            city=rng.choice(_CITIES),
            amount=rng.choice(_AMOUNTS),
            category=rng.choice(_CATEGORIES),
        )
        if text not in seen:
            seen.add(text)
            pool.append(text)
    return [rng.choice(pool) for _ in range(count)]


__all__ = ["subscription_texts"]
