"""Query workloads.

Experiments 1 and 3 sweep the query size ``|QList(q)| in {2, 8, 15, 23}``
(paper Figs. 8 and 12).  :func:`query_of_size` returns hand-crafted XBL
queries over the XMark vocabulary whose *compiled* sizes hit those
targets exactly -- each factory call re-verifies the size, so a change
to the normalizer or the QList compiler cannot silently shift the
experimental parameters.

Experiment 2 needs queries satisfied by one specific fragment
(``qF0``, ``qFn``, ``qF(n/2)``); the topology factories plant a unique
``seal`` marker per fragment and :func:`seal_query` targets it.

:func:`random_query` generates seeded random XBL queries for the
property-based tests (not for the benchmarks).
"""

from __future__ import annotations

import random

from repro.xpath import compile_query
from repro.xpath.qlist import QList

#: The query sizes used by the paper's Experiments 1 and 3.
QUERY_SIZES = (2, 8, 15, 23)

# Queries tuned so that |QList| is exactly the dict key.  Verified at
# every use by query_of_size().
_SIZED_QUERIES = {
    # [*]: "the root has a child".  |QList| = 2 (eps, child).
    2: "[*]",
    # Persons having a profile, anywhere.  |QList| = 8.
    8: "[//person[profile]]",
    # A bid with increase 7 exists, and some category is defined.
    # |QList| = 15.
    15: '[//bidder[increase/text() = "7"] and //category]',
    # No auction has a bid increase of 7, yet some profile mentions an
    # education.  |QList| = 23.
    23: (
        '[not(//open_auction[bidder/increase/text() = "7"]) and '
        "//profile[education]]"
    ),
}


def query_of_size(size: int) -> QList:
    """Compile the canonical benchmark query with ``|QList| == size``."""
    try:
        text = _SIZED_QUERIES[size]
    except KeyError:
        raise ValueError(f"no canonical query of size {size}; have {sorted(_SIZED_QUERIES)}")
    qlist = compile_query(text)
    if len(qlist) != size:
        raise AssertionError(
            f"query {text!r} compiled to |QList|={len(qlist)}, expected {size}"
        )
    return qlist


def seal_query(fragment_id: str) -> QList:
    """A query satisfied exactly by the fragment carrying the given seal.

    The topology factories add ``<seal>seal-<fid></seal>`` under each
    fragment's root, so ``[//seal/text() = "seal-Fk"]`` is true on the
    whole tree iff fragment ``Fk`` participates -- and resolvable by
    LazyParBoX only once it has descended to ``Fk``'s depth.
    """
    return compile_query(f'[//seal/text() = "seal-{fragment_id}"]')


# ---------------------------------------------------------------------------
# Random queries for property-based testing
# ---------------------------------------------------------------------------

_LABEL_POOL = (
    "site", "regions", "item", "name", "person", "profile", "education",
    "open_auction", "bidder", "increase", "city", "category", "seal", "a", "b",
)
_TEXT_POOL = ("lagos", "college", "7", "category-1", "gold", "x")


def random_query(
    rng: random.Random,
    max_depth: int = 3,
    labels: tuple[str, ...] = _LABEL_POOL,
    texts: tuple[str, ...] = _TEXT_POOL,
) -> str:
    """A random textual XBL query (seeded; used by the oracle tests)."""
    return f"[{_random_bool(rng, max_depth, labels, texts)}]"


def _random_bool(rng: random.Random, depth: int, labels, texts) -> str:
    choices = ["path", "texteq"]
    if depth > 0:
        choices += ["and", "or", "not"]
    kind = rng.choice(choices)
    if kind == "and":
        return (
            f"({_random_bool(rng, depth - 1, labels, texts)} and "
            f"{_random_bool(rng, depth - 1, labels, texts)})"
        )
    if kind == "or":
        return (
            f"({_random_bool(rng, depth - 1, labels, texts)} or "
            f"{_random_bool(rng, depth - 1, labels, texts)})"
        )
    if kind == "not":
        return f"not({_random_bool(rng, depth - 1, labels, texts)})"
    path = _random_path(rng, depth, labels, texts)
    if kind == "texteq":
        return f'{path}/text() = "{rng.choice(texts)}"'
    return path


def _random_path(rng: random.Random, depth: int, labels, texts) -> str:
    length = rng.randint(1, 3)
    pieces: list[str] = []
    for index in range(length):
        if index == 0:
            sep = rng.choice(["", "", "//", "/"])
        else:
            sep = rng.choice(["/", "//"])
        step = rng.choice(["label", "label", "label", "star"])
        name = rng.choice(labels) if step == "label" else "*"
        qualifier = ""
        if depth > 0 and rng.random() < 0.3:
            qualifier = f"[{_random_bool(rng, depth - 1, labels, texts)}]"
        pieces.append(f"{sep}{name}{qualifier}")
    return "".join(pieces)


__all__ = ["QUERY_SIZES", "query_of_size", "seal_query", "random_query"]
