"""The paper's running example: the stock portfolio of Fig. 1(b).

The document: a person trades stocks through two brokers in two
(overlapping) markets; per stock, the code, the price paid (``buy``)
and the current selling price (``sell``).

``build_portfolio_cluster`` reproduces the fragmentation of Fig. 2:

* **F0** (root) -- the portfolio plus the Bache/NYSE subtree; stored on
  the owner's desktop ``S0``;
* **F1** -- the Merill Lynch broker (which "requires that all trade data
  are accessed through its own servers"), on ``S1``; F1 is itself
  fragmented:
* **F2** -- the NASDAQ-held GOOG position inside F1, on the NASDAQ
  server ``S2``;
* **F3** -- the Bache/NASDAQ market data, also on ``S2`` ("fragments F2
  and F3 are both stored in its own servers").
"""

from __future__ import annotations

from repro.distsim.cluster import Cluster
from repro.fragments.fragment import Fragment, FragmentedTree
from repro.fragments.source_tree import Placement
from repro.xmltree.builder import element
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

#: Queries from the paper's prose, ready to compile.
PORTFOLIO_QUERIES = {
    # Section 1: "whether the GOOG stock reaches a selling price of $376".
    "goog_sell_376": '[//stock[code = "GOOG" and sell = "376"]]',
    # Section 2.2's example query.
    "goog_not_yhoo": (
        '[//broker[//stock/code/text() = "GOOG" and '
        'not(//stock/code/text() = "YHOO")]]'
    ),
    # Example 2.1's query.
    "yhoo": '[//stock[code/text() = "YHOO"]]',
    # Section 4's lazy-evaluation example.
    "merill": '[/portofolio/broker/name = "Merill Lynch"]',
}


def _stock(code: str, buy: str, sell: str) -> XMLNode:
    return element(
        "stock",
        element("code", text=code),
        element("buy", text=buy),
        element("sell", text=sell),
    )


def build_portfolio_tree() -> XMLTree:
    """The whole (unfragmented) portfolio document."""
    root = element(
        "portofolio",  # the paper's spelling, kept for query fidelity
        element(
            "broker",
            element("name", text="Bache"),
            element(
                "market",
                element("name", text="NYSE"),
                _stock("IBM", "80", "78"),
                _stock("HPQ", "30", "33"),
            ),
        ),
        element(
            "broker",
            element("name", text="Merill Lynch"),
            element(
                "market",
                element("name", text="NASDAQ"),
                _stock("AAPL", "71", "65"),
                _stock("GOOG", "370", "372"),
            ),
        ),
        element(
            "broker",
            element("name", text="Bache"),
            element(
                "market",
                element("name", text="NASDAQ"),
                _stock("YHOO", "33", "35"),
                _stock("GOOG", "374", "373"),
            ),
        ),
    )
    return XMLTree(root)


def build_portfolio_fragments() -> FragmentedTree:
    """The fragmentation of Fig. 2: F0 -> {F1 -> F2, F3}."""
    # F2: the GOOG position held at NASDAQ inside the Merill Lynch data.
    f2_root = _stock("GOOG", "370", "372")

    # F1: the Merill Lynch broker; its GOOG stock is the virtual F2.
    f1_root = element(
        "broker",
        element("name", text="Merill Lynch"),
        element(
            "market",
            element("name", text="NASDAQ"),
            _stock("AAPL", "71", "65"),
            XMLNode.virtual("F2"),
        ),
    )

    # F3: the Bache-visible NASDAQ market data.
    f3_root = element(
        "market",
        element("name", text="NASDAQ"),
        _stock("YHOO", "33", "35"),
        _stock("GOOG", "374", "373"),
    )

    # F0: the root fragment -- portfolio, the local Bache/NYSE data, and
    # virtual nodes for F1 and F3.
    f0_root = element(
        "portofolio",
        element(
            "broker",
            element("name", text="Bache"),
            element(
                "market",
                element("name", text="NYSE"),
                _stock("IBM", "80", "78"),
                _stock("HPQ", "30", "33"),
            ),
        ),
        XMLNode.virtual("F1"),
        element(
            "broker",
            element("name", text="Bache"),
            XMLNode.virtual("F3"),
        ),
    )

    fragments = {
        "F0": Fragment("F0", f0_root),
        "F1": Fragment("F1", f1_root),
        "F2": Fragment("F2", f2_root),
        "F3": Fragment("F3", f3_root),
    }
    return FragmentedTree(fragments, "F0")


def build_portfolio_cluster() -> Cluster:
    """Fragments placed as in Fig. 2(b): F0@S0, F1@S1, F2@S2, F3@S2."""
    placement = Placement({"F0": "S0", "F1": "S1", "F2": "S2", "F3": "S2"})
    return Cluster(build_portfolio_fragments(), placement)


__all__ = [
    "PORTFOLIO_QUERIES",
    "build_portfolio_tree",
    "build_portfolio_fragments",
    "build_portfolio_cluster",
]
