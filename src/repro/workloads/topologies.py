"""The fragment-tree topologies of the experiments (paper, Fig. 6).

* **FT1** (:func:`star_ft1`) -- F0 with F1..Fn-1 as direct
  sub-fragments; Experiment 1's shape.
* **FT2** (:func:`chain_ft2`) -- a chain F0 <- F1 <- ... <- Fn ("in a
  temporal database each fragment can represent an XMark site at a point
  in time"); Experiment 2's shape.
* **FT3** (:func:`bushy_ft3`) -- the natural bushy tree of Experiment 3,
  8 fragments with the paper's per-fragment size ratios.
* :func:`co_located` -- Experiment 4: all fragments on one site.

Every fragment is an XMark-like "site" document; a virtual node for each
sub-fragment is attached under the fragment root, and each fragment
carries a unique ``<seal>seal-<fid></seal>`` marker so Experiment 2's
targeted queries (:func:`repro.workloads.queries.seal_query`) can be
aimed at any fragment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.distsim.cluster import Cluster
from repro.fragments.fragment import Fragment, FragmentedTree
from repro.fragments.source_tree import Placement
from repro.workloads.xmark import generate_xmark_site
from repro.xmltree.node import XMLNode


def _xmark_fragment(
    fragment_id: str,
    scaled_mb: float,
    seed: int,
    site_index: int,
    sub_fragments: Sequence[str] = (),
    nodes_per_mb: Optional[int] = None,
) -> Fragment:
    """One XMark site as a fragment, with seal marker and virtual leaves."""
    tree = generate_xmark_site(scaled_mb, seed=seed, site_index=site_index, nodes_per_mb=nodes_per_mb)
    root = tree.root
    root.add_child(XMLNode("seal", text=f"seal-{fragment_id}"))
    for sub_id in sub_fragments:
        root.add_child(XMLNode.virtual(sub_id))
    return Fragment(fragment_id, root)


def star_ft1(
    n_fragments: int,
    total_mb: float,
    seed: int = 0,
    nodes_per_mb: Optional[int] = None,
    one_site_each: bool = True,
) -> Cluster:
    """FT1: F0 with F1..F{n-1} as direct children, equal sizes.

    With ``one_site_each`` (Experiments 1-3's placement) fragment ``Fi``
    goes to site ``Si``; otherwise everything lands on ``S0``
    (Experiment 4's placement).
    """
    if n_fragments < 1:
        raise ValueError("need at least one fragment")
    per_fragment = total_mb / n_fragments
    ids = [f"F{i}" for i in range(n_fragments)]
    fragments = {
        "F0": _xmark_fragment("F0", per_fragment, seed, 0, sub_fragments=ids[1:], nodes_per_mb=nodes_per_mb)
    }
    for index, fragment_id in enumerate(ids[1:], start=1):
        fragments[fragment_id] = _xmark_fragment(
            fragment_id, per_fragment, seed, index, nodes_per_mb=nodes_per_mb
        )
    tree = FragmentedTree(fragments, "F0")
    if one_site_each:
        placement = Placement({fid: f"S{i}" for i, fid in enumerate(ids)})
    else:
        placement = Placement({fid: "S0" for fid in ids})
    return Cluster(tree, placement)


def chain_ft2(
    n_fragments: int,
    total_mb: float,
    seed: int = 0,
    nodes_per_mb: Optional[int] = None,
) -> Cluster:
    """FT2: the chain F0 <- F1 <- ... <- F{n-1}, equal sizes, one site each."""
    if n_fragments < 1:
        raise ValueError("need at least one fragment")
    per_fragment = total_mb / n_fragments
    ids = [f"F{i}" for i in range(n_fragments)]
    fragments: dict[str, Fragment] = {}
    for index, fragment_id in enumerate(ids):
        subs = [ids[index + 1]] if index + 1 < n_fragments else []
        fragments[fragment_id] = _xmark_fragment(
            fragment_id, per_fragment, seed, index, sub_fragments=subs, nodes_per_mb=nodes_per_mb
        )
    tree = FragmentedTree(fragments, "F0")
    placement = Placement({fid: f"S{i}" for i, fid in enumerate(ids)})
    return Cluster(tree, placement)


#: FT3's shape: fragment id -> direct sub-fragments.
FT3_SHAPE: dict[str, tuple[str, ...]] = {
    "F0": ("F1", "F2", "F3"),
    "F1": ("F4", "F5"),
    "F2": ("F6",),
    "F3": ("F7",),
    "F4": (),
    "F5": (),
    "F6": (),
    "F7": (),
}


def ft3_sizes(iteration: int) -> dict[str, float]:
    """Per-fragment scaled-MB sizes for Experiment 3's iteration 0..9.

    Follows the paper's ranges: F0 fixed at ~10 MB; F1 grows 10->50 MB in
    5 MB steps; F2 grows 3.5->15 MB in ~1.28 MB steps; F7 grows
    0.7->3.7 MB; the remaining fragments share the rest so the totals
    sweep ~45->160 MB.
    """
    if not 0 <= iteration <= 9:
        raise ValueError("iteration must be in 0..9")
    step = iteration / 9.0
    sizes = {
        "F0": 10.0,
        "F1": 10.0 + 40.0 * step,
        "F2": 3.5 + 11.5 * step,
        "F7": 0.7 + 3.0 * step,
    }
    totals = 45.0 + 115.0 * step
    rest = totals - sum(sizes.values())
    for fragment_id in ("F3", "F4", "F5", "F6"):
        sizes[fragment_id] = rest / 4.0
    return sizes


def bushy_ft3(
    iteration: int,
    seed: int = 0,
    nodes_per_mb: Optional[int] = None,
) -> Cluster:
    """FT3 at the given Experiment 3 iteration, one fragment per site."""
    sizes = ft3_sizes(iteration)
    fragments: dict[str, Fragment] = {}
    for index, (fragment_id, subs) in enumerate(FT3_SHAPE.items()):
        fragments[fragment_id] = _xmark_fragment(
            fragment_id, sizes[fragment_id], seed, index,
            sub_fragments=subs, nodes_per_mb=nodes_per_mb,
        )
    tree = FragmentedTree(fragments, "F0")
    placement = Placement({fid: f"S{i}" for i, fid in enumerate(FT3_SHAPE)})
    return Cluster(tree, placement)


def co_located(
    n_fragments: int,
    total_mb: float,
    seed: int = 0,
    nodes_per_mb: Optional[int] = None,
) -> Cluster:
    """Experiment 4: FT1 shape with every fragment on the single site S0."""
    return star_ft1(
        n_fragments, total_mb, seed=seed, nodes_per_mb=nodes_per_mb, one_site_each=False
    )


__all__ = ["star_ft1", "chain_ft2", "bushy_ft3", "co_located", "FT3_SHAPE", "ft3_sizes"]
