"""Skewed fragment-update streams for the continuous-query experiments.

A dissemination system sees a trickle of edits against a large standing
document: most updates land in a few *hot* fragments (the active
auctions), a long tail touches the rest, and every so often an operator
re-partitions (``splitFragments`` / ``mergeFragments``).
:func:`update_stream` generates that shape deterministically as batches
of typed :class:`~repro.stream.updates.UpdateOp` values.

The generator draws targets from the **live** cluster state, so each
yielded batch must be applied (``maintainer.apply(batch)`` or
:func:`~repro.stream.updates.apply_updates`) before the next batch is
drawn -- exactly how a maintenance loop consumes it.  Ops address nodes
by their stable ``node_id``; deletions only ever target non-virtual
*leaves*, so no op can orphan a sub-fragment or invalidate another op
of the same batch.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.distsim.cluster import Cluster
from repro.fragments.fragmenter import fresh_fragment_id
from repro.stream.updates import (
    DelNode,
    InsNode,
    MergeFragment,
    Relabel,
    SplitFragment,
    UpdateOp,
)

#: Labels/texts drawn for inserted and relabelled nodes.  Deliberately
#: overlaps the XMark vocabulary of :mod:`repro.workloads.pubsub`, so a
#: generated stream actually flips standing subscriptions now and then.
_LABELS = ("bidder", "item", "note", "probe")
_TEXTS = ("on", "off", "3", "7", "lagos", None)


def update_stream(
    cluster: Cluster,
    rounds: int,
    ops_per_round: int = 4,
    seed: int = 0,
    hot_fragments: int = 1,
    hot_weight: float = 0.8,
    structural_every: int = 0,
) -> Iterator[list[UpdateOp]]:
    """Yield ``rounds`` batches of ``ops_per_round`` skewed updates.

    ``hot_fragments`` fragments (the first non-root ones in source-tree
    pre-order) receive ``hot_weight`` of the update probability mass;
    the rest share the remainder.  When ``structural_every`` is
    positive, every that-many-th batch leads with a structural op --
    alternating a split of a hot fragment and a merge of a previously
    split-off child.

    Determinism: same ``(cluster state, arguments)`` -> same stream.
    Apply each batch before drawing the next.
    """
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    if ops_per_round < 1:
        raise ValueError("ops_per_round must be >= 1")
    if not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_weight must be in [0, 1]")
    rng = random.Random(seed)
    split_children: list[tuple[str, str]] = []  # (parent, child) we split off

    for round_index in range(rounds):
        fragment_ids = cluster.source_tree().fragment_ids()
        hot = _hot_set(fragment_ids, hot_fragments)
        ops: list[UpdateOp] = []
        touched: set[int] = set()  # node ids already targeted this batch
        off_limits: set[str] = set()  # fragments a merge in this batch retires

        if structural_every and (round_index + 1) % structural_every == 0:
            structural = _structural_op(
                cluster, rng, hot, split_children, touched, off_limits
            )
            if structural is not None:
                ops.append(structural)

        # A small document can run out of untouched target nodes before
        # the batch fills; cap the draw attempts so the batch comes up
        # short instead of spinning forever.
        attempts_left = 20 * ops_per_round
        while len(ops) < ops_per_round and attempts_left > 0:
            attempts_left -= 1
            fragment_id = _pick_fragment(rng, fragment_ids, hot, hot_weight)
            if fragment_id in off_limits:
                continue  # a merge earlier in this batch retires it
            op = _content_op(cluster, rng, fragment_id, touched)
            if op is not None:
                ops.append(op)
        yield ops


def _hot_set(fragment_ids: list[str], hot_fragments: int) -> list[str]:
    """The hot fragments: prefer non-root ones (leaf edits dominate)."""
    non_root = fragment_ids[1:] or fragment_ids
    return non_root[: max(1, hot_fragments)]


def _pick_fragment(
    rng: random.Random,
    fragment_ids: list[str],
    hot: list[str],
    hot_weight: float,
) -> str:
    cold = [fid for fid in fragment_ids if fid not in hot]
    if cold and rng.random() >= hot_weight:
        return rng.choice(cold)
    return rng.choice(hot)


def _content_op(
    cluster: Cluster,
    rng: random.Random,
    fragment_id: str,
    touched: set[int],
) -> Optional[UpdateOp]:
    """One insert / relabel / delete inside ``fragment_id``.

    ``touched`` keeps ops of the same batch off each other's nodes (a
    delete would otherwise invalidate a later relabel's target).
    """
    fragment = cluster.fragment(fragment_id)
    kind = rng.random()
    if kind < 0.2:
        # Delete a non-virtual leaf: never the fragment root, never a
        # subtree holding virtual nodes -- always safe to detach.
        leaves = [
            node
            for node in fragment.root.iter_subtree()
            if not node.is_virtual
            and not node.children
            and node is not fragment.root
            and node.node_id not in touched
        ]
        if leaves:
            target = rng.choice(leaves)
            touched.add(target.node_id)
            return DelNode(fragment_id, target.node_id)
        kind = 1.0  # nothing deletable: fall through to an insert
    candidates = [
        node
        for node in fragment.root.iter_subtree()
        if not node.is_virtual and node.node_id not in touched
    ]
    if not candidates:
        return None
    target = rng.choice(candidates)
    touched.add(target.node_id)
    if kind < 0.5:
        return Relabel(
            fragment_id,
            target.node_id,
            text=rng.choice([text for text in _TEXTS if text is not None]),
        )
    return InsNode(
        fragment_id,
        target.node_id,
        label=rng.choice(_LABELS),
        text=rng.choice(_TEXTS),
    )


def _structural_op(
    cluster: Cluster,
    rng: random.Random,
    hot: list[str],
    split_children: list[tuple[str, str]],
    touched: set[int],
    off_limits: set[str],
) -> Optional[UpdateOp]:
    """Alternate splitting a hot fragment and merging a child back.

    Marks the moved nodes/fragments so the batch's content ops never
    address a node the structural op relocates before they apply.
    """
    if split_children:
        parent_id, child_id = split_children.pop(0)
        if (
            parent_id in cluster.fragmented_tree.fragments
            and child_id in cluster.fragment(parent_id).sub_fragment_ids()
        ):
            off_limits.add(child_id)
            return MergeFragment(parent_id, child_id)
    for fragment_id in hot:
        if fragment_id not in cluster.fragmented_tree.fragments:
            continue
        fragment = cluster.fragment(fragment_id)
        candidates = [
            node
            for node in fragment.root.iter_subtree()
            if node is not fragment.root
            and not node.is_virtual
            and len(node.children) > 0
        ]
        if not candidates:
            continue
        node = rng.choice(candidates)
        touched.update(sub.node_id for sub in node.iter_subtree())
        # Pin the new fragment's id so the follow-up merge is correct
        # by construction (no guessing what the fragmenter would pick).
        new_id = fresh_fragment_id(cluster.fragmented_tree.fragments)
        split_children.append((fragment_id, new_id))
        return SplitFragment(fragment_id, node.node_id, new_fragment_id=new_id)
    return None


__all__ = ["update_stream"]
