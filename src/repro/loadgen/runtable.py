"""The declarative factorial run table behind ``repro loadtest``.

Modeled on muBench-style replication packages: an experiment is *declared*
up front as a cartesian product of factors (topology family x fragment
count x engine x executor x coordinator pool size x batch size x
arrival rate) with explicit
repetitions, then executed run by run.  Each run gets a **stable,
human-readable run id** that encodes every factor level, and a **seed
derived deterministically from that id** -- two executions of the same
run id therefore plan byte-identical arrival schedules and query mixes
(timing aside), which is what makes per-run artifacts comparable across
machines and the ``bytes_on_wire`` column exactly reproducible.

The table is engine-agnostic by construction: a run spec names its
engine and topology family by string, and :func:`build_cluster` resolves
the family through :data:`TOPOLOGY_BUILDERS` -- a future query class
(e.g. graph reachability) adds a builder and new factor levels, not a
new harness.

Factor semantics over the serving tier:

* ``executor`` selects how site work *really* executes behind the
  gateway: ``"inline"`` (asyncio site servers on the serving loop
  thread) or ``"process"`` (one real child process per site).  The
  serial/threads/process executors of the in-process engines do not
  apply here -- the coordinator always dispatches sites through its
  ``RemoteSiteExecutor``.
* ``coordinators`` sizes the gateway's coordinator pool (scale-out
  serving): requests hash-route across the pool, so pool size 2 splits
  standing queries over two warm plan caches and two sets of site
  links.  On a single-core host the two pools time-share one CPU --
  the factor then measures routing overhead, not parallel speedup.
* ``arrival_rate`` is the *open-loop* target (requests/second scheduled
  by target time), never a closed-loop RPS knob; see
  :mod:`repro.loadgen.client`.

Two presets: :func:`quick_table` (a few runs; the CI regression gate)
and :func:`default_table` (the full factorial; minutes, run locally).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields
from typing import Callable, Dict, Iterator, Tuple

from repro.distsim.cluster import Cluster
from repro.workloads.topologies import chain_ft2, star_ft1

#: Topology family name -> builder ``(fragments, total_mb, seed=, nodes_per_mb=)``.
TOPOLOGY_BUILDERS: Dict[str, Callable[..., Cluster]] = {
    "star": star_ft1,
    "chain": chain_ft2,
}

#: Site-execution modes a run spec may name (``ServingCluster`` site modes).
EXECUTOR_MODES = ("inline", "process")

#: Arrival processes :func:`repro.loadgen.client.plan_arrivals` implements.
ARRIVAL_MODES = ("poisson", "fixed")


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined run: every factor level plus the scale knobs."""

    run_id: str
    scale: str
    topology: str
    fragments: int
    engine: str
    executor: str
    batch_size: int
    arrival_rate: float
    arrival: str
    requests: int
    repetition: int
    seed: int
    total_mb: float
    nodes_per_mb: int
    coordinators: int = 1

    def factor_levels(self) -> Dict[str, object]:
        """The factor columns, as they appear in ``run_table.csv``."""
        return {
            "topology": self.topology,
            "fragments": self.fragments,
            "engine": self.engine,
            "executor": self.executor,
            "coordinators": self.coordinators,
            "batch_size": self.batch_size,
            "arrival_rate": self.arrival_rate,
            "arrival": self.arrival,
        }


def derive_seed(run_id: str, base_seed: int) -> int:
    """A stable per-run seed: CRC32 of the run id folded with the base.

    ``zlib.crc32`` is specified byte-for-byte by the zlib format, so the
    derivation is identical across Python versions and machines -- the
    property the determinism tests pin down.
    """
    return (zlib.crc32(run_id.encode("utf-8")) ^ (base_seed & 0xFFFFFFFF)) & 0x7FFFFFFF


def make_run_id(
    topology: str,
    fragments: int,
    engine: str,
    executor: str,
    batch_size: int,
    arrival_rate: float,
    arrival: str,
    repetition: int,
    coordinators: int = 1,
) -> str:
    """The canonical run id: every factor level, readable and greppable."""
    return (
        f"{topology}-f{fragments}-{engine}-{executor}-c{coordinators}"
        f"-b{batch_size}-r{arrival_rate:g}-{arrival}-rep{repetition}"
    )


@dataclass(frozen=True)
class RunTable:
    """A declared factorial experiment over the serving tier.

    ``specs()`` expands the cartesian product of the factor tuples x
    ``repetitions`` into :class:`RunSpec` rows, in a stable order
    (factors vary slowest-to-fastest in declaration order, repetitions
    innermost).  The table itself carries the scalar knobs every run
    shares: requests per run, document scale, base seed.
    """

    scale: str = "custom"
    topologies: Tuple[str, ...] = ("star",)
    fragments: Tuple[int, ...] = (3,)
    engines: Tuple[str, ...] = ("parbox",)
    executors: Tuple[str, ...] = ("inline",)
    coordinators: Tuple[int, ...] = (1,)
    batch_sizes: Tuple[int, ...] = (2,)
    arrival_rates: Tuple[float, ...] = (30.0,)
    arrival: str = "poisson"
    requests: int = 10
    repetitions: int = 1
    total_mb: float = 0.05
    nodes_per_mb: int = 24
    base_seed: int = 7
    #: Gateway admission control for every run (generous by default so
    #: the quick gate measures latency, not shedding).
    max_inflight: int = 8
    max_queue: int = 16

    def __post_init__(self) -> None:
        for topology in self.topologies:
            if topology not in TOPOLOGY_BUILDERS:
                raise ValueError(
                    f"unknown topology family {topology!r}; "
                    f"choose from {sorted(TOPOLOGY_BUILDERS)}"
                )
        for executor in self.executors:
            if executor not in EXECUTOR_MODES:
                raise ValueError(
                    f"unknown executor mode {executor!r}; choose from {EXECUTOR_MODES}"
                )
        if self.arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; choose from {ARRIVAL_MODES}"
            )
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if any(rate <= 0 for rate in self.arrival_rates):
            raise ValueError("arrival rates must be > 0")
        if any(batch < 1 for batch in self.batch_sizes):
            raise ValueError("batch sizes must be >= 1")
        if any(pool < 1 for pool in self.coordinators):
            raise ValueError("coordinator pool sizes must be >= 1")

    def __len__(self) -> int:
        return (
            len(self.topologies)
            * len(self.fragments)
            * len(self.engines)
            * len(self.executors)
            * len(self.coordinators)
            * len(self.batch_sizes)
            * len(self.arrival_rates)
            * self.repetitions
        )

    def specs(self) -> Iterator[RunSpec]:
        for topology in self.topologies:
            for fragments in self.fragments:
                for engine in self.engines:
                    for executor in self.executors:
                        for pool in self.coordinators:
                            for batch_size in self.batch_sizes:
                                for rate in self.arrival_rates:
                                    for rep in range(self.repetitions):
                                        run_id = make_run_id(
                                            topology,
                                            fragments,
                                            engine,
                                            executor,
                                            batch_size,
                                            rate,
                                            self.arrival,
                                            rep,
                                            coordinators=pool,
                                        )
                                        yield RunSpec(
                                            run_id=run_id,
                                            scale=self.scale,
                                            topology=topology,
                                            fragments=fragments,
                                            engine=engine,
                                            executor=executor,
                                            batch_size=batch_size,
                                            arrival_rate=rate,
                                            arrival=self.arrival,
                                            requests=self.requests,
                                            repetition=rep,
                                            seed=derive_seed(run_id, self.base_seed),
                                            total_mb=self.total_mb,
                                            nodes_per_mb=self.nodes_per_mb,
                                            coordinators=pool,
                                        )

    def run_ids(self) -> Tuple[str, ...]:
        return tuple(spec.run_id for spec in self.specs())

    def describe(self) -> str:
        parts = [
            f"{len(self)} runs @ {self.scale} scale "
            f"({self.requests} requests each, {self.arrival} arrivals)",
            f"  topology x {list(self.topologies)}",
            f"  fragments x {list(self.fragments)}",
            f"  engine x {list(self.engines)}",
            f"  executor x {list(self.executors)}",
            f"  coordinators x {list(self.coordinators)}",
            f"  batch_size x {list(self.batch_sizes)}",
            f"  arrival_rate x {list(self.arrival_rates)}",
            f"  repetitions x {self.repetitions}",
        ]
        return "\n".join(parts)


def build_cluster(spec: RunSpec) -> Cluster:
    """The simulated cluster a run spec declares (deterministic per seed)."""
    builder = TOPOLOGY_BUILDERS[spec.topology]
    return builder(
        spec.fragments,
        spec.total_mb,
        seed=spec.seed % 10_000,
        nodes_per_mb=spec.nodes_per_mb,
    )


def quick_table(**overrides) -> RunTable:
    """The CI-budget preset: 4 runs, inline sites, one engine.

    Small enough that the whole table (boot + load + scrape per run)
    finishes in about a minute, yet still factorial -- topology family,
    coordinator pool size and arrival rate all vary, so ``analyze`` has
    per-factor deltas to compute and the regression gate covers two
    load levels and both pool sizes.
    """
    params = dict(
        scale="quick",
        topologies=("star", "chain"),
        fragments=(3,),
        engines=("parbox",),
        executors=("inline",),
        coordinators=(1, 2),
        batch_sizes=(2,),
        arrival_rates=(30.0, 60.0),
        arrival="poisson",
        requests=10,
        repetitions=1,
        total_mb=0.05,
        nodes_per_mb=24,
        base_seed=7,
    )
    params.update(overrides)
    return RunTable(**params)


def default_table(**overrides) -> RunTable:
    """The full factorial: 64 runs across every axis (minutes, local)."""
    params = dict(
        scale="default",
        topologies=("star", "chain"),
        fragments=(3, 6),
        engines=("parbox", "fulldist"),
        executors=("inline", "process"),
        coordinators=(1, 2),
        batch_sizes=(2, 8),
        arrival_rates=(40.0,),
        arrival="poisson",
        requests=24,
        repetitions=1,
        total_mb=0.2,
        nodes_per_mb=40,
        base_seed=7,
    )
    params.update(overrides)
    return RunTable(**params)


def table_for_scale(scale: str, **overrides) -> RunTable:
    if scale == "quick":
        return quick_table(**overrides)
    if scale == "default":
        return default_table(**overrides)
    raise ValueError(f"unknown scale {scale!r}; choose quick or default")


_SPEC_FIELDS = tuple(f.name for f in fields(RunSpec))


def spec_from_row(row: Dict[str, object]) -> RunSpec:
    """Rebuild a :class:`RunSpec` from a ``run_table.csv`` row dict."""
    kwargs = {}
    for name in _SPEC_FIELDS:
        if name not in row:
            raise ValueError(f"row is missing spec field {name!r}")
        kwargs[name] = row[name]
    ints = (
        "fragments",
        "batch_size",
        "requests",
        "repetition",
        "seed",
        "nodes_per_mb",
        "coordinators",
    )
    floats = ("arrival_rate", "total_mb")
    for name in ints:
        kwargs[name] = int(kwargs[name])
    for name in floats:
        kwargs[name] = float(kwargs[name])
    return RunSpec(**kwargs)


__all__ = [
    "ARRIVAL_MODES",
    "EXECUTOR_MODES",
    "TOPOLOGY_BUILDERS",
    "RunSpec",
    "RunTable",
    "build_cluster",
    "default_table",
    "derive_seed",
    "make_run_id",
    "quick_table",
    "spec_from_row",
    "table_for_scale",
]
