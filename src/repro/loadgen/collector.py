"""Execute a run table and collect its artifacts.

Per run (``OUT/<run_id>/``):

* ``requests.jsonl`` -- one JSON line per request: schedule vs actual
  send time, latency, typed outcome, answers, ledger bytes.
* ``metrics_before.json`` / ``metrics_after.json`` -- the gateway's
  metrics-registry snapshots scraped over the wire immediately before
  and after the load (their delta is the server's own account of the
  run: requests, sheds, latency histogram).
* ``spans.json`` -- a span-tree sample (every ``trace_every``-th
  request is traced through gateway -> coordinator -> sites).

Aggregate (``OUT/run_table.csv``): one row per run with the factor
levels plus throughput, p50/p95/p99 latency, shed rate and
bytes-on-wire.  Latency percentiles are computed by feeding the served
requests' latencies through a :mod:`repro.obs.metrics` histogram and
reading :func:`~repro.obs.metrics.histogram_percentiles` -- the same
estimator the serving tier itself reports, so client-side and
server-side numbers are comparable by construction.  ``bytes_on_wire``
is the deterministic simulated ledger's ``bytes_total`` summed over
served requests: the paper's data-shipped measure, exactly reproducible
for a given run id (the analysis step gates on it bitwise).

Shed/unavailable/error requests are **excluded** from latency
percentiles and throughput -- a rejection in microseconds must not be
allowed to "improve" the latency columns.
"""

from __future__ import annotations

import csv
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, histogram_percentiles
from repro.obs.trace import SpanStore
from repro.serving.cluster import ServingCluster

from repro.loadgen.client import OpenLoopClient, RequestRecord, SERVED, plan_for_spec
from repro.loadgen.runtable import RunSpec, RunTable, build_cluster

#: The aggregate CSV's columns, in order (the format the analysis step
#: and the baseline gate both key on).
RUN_TABLE_COLUMNS = (
    "run_id",
    "scale",
    "topology",
    "fragments",
    "engine",
    "executor",
    "coordinators",
    "batch_size",
    "arrival_rate",
    "arrival",
    "repetition",
    "seed",
    "total_mb",
    "nodes_per_mb",
    "requests",
    "ok",
    "retried",
    "shed",
    "unavailable",
    "errors",
    "duration_s",
    "throughput_rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "shed_rate",
    "bytes_on_wire",
    "max_lag_s",
    "coordinator_requests",
    "coordinator_rps",
    "coordinator_shed",
)

#: Latency buckets for the percentile estimate: finer than the serving
#: default at the microsecond end because loopback quick runs live there.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def latency_percentiles_ms(
    latencies_s: Sequence[float], quantiles: Sequence[float] = (0.5, 0.95, 0.99)
) -> Dict[float, Optional[float]]:
    """Histogram-estimated percentiles (ms) of served-request latencies.

    Deliberately routed through ``repro.obs``'s fixed-bucket histogram
    rather than ``statistics.quantiles`` so the load harness reports
    latency with exactly the estimator the gateway's own
    ``gateway_request_seconds`` scrape uses.
    """
    if not latencies_s:
        return {q: None for q in quantiles}
    registry = MetricsRegistry("loadgen")
    histogram = registry.histogram(
        "loadgen_request_seconds", "Open-loop client latency", buckets=LATENCY_BUCKETS
    )
    for latency in latencies_s:
        histogram.observe(latency)
    snapshot_value = registry.snapshot()["loadgen_request_seconds"]["values"][""]
    estimates = histogram_percentiles(snapshot_value, quantiles)
    return {
        q: (None if seconds is None else round(seconds * 1000, 3))
        for q, seconds in estimates.items()
    }


def _join_counts(counts: Dict[str, float], fmt: str = "{:g}") -> str:
    """``c0=5;c1=5`` -- per-coordinator counts as one stable CSV cell."""
    return ";".join(
        f"{name}={fmt.format(counts[name])}" for name in sorted(counts)
    )


def coordinator_deltas(
    before: Dict[str, object], after: Dict[str, object]
) -> tuple[Dict[str, float], Dict[str, float]]:
    """Per-coordinator ``(served, rejected)`` reply deltas between scrapes.

    Reads the gateway's ``gateway_coordinator_replies_total`` series.
    ``served`` counts ``status=ok`` replies; ``rejected`` counts every
    post-admission rejection the coordinator returned (bad requests,
    overload, unavailability).  Gateway-level sheds happen *before*
    routing, so they never appear here -- they live in the aggregate
    ``shed`` column only.
    """

    def flat(snapshot: Dict[str, object]) -> Dict[str, float]:
        entry = snapshot.get("gateway_coordinator_replies_total", {})
        return dict(entry.get("values", {}))

    prior = flat(before)
    served: Dict[str, float] = {}
    rejected: Dict[str, float] = {}
    for label, value in flat(after).items():
        delta = value - prior.get(label, 0.0)
        if delta <= 0:
            continue
        labels = dict(item.split("=", 1) for item in label.split(",") if "=" in item)
        name = labels.get("coordinator", "?")
        bucket = served if labels.get("status") == "ok" else rejected
        bucket[name] = bucket.get(name, 0.0) + delta
    return served, rejected


def summarize_run(
    spec: RunSpec,
    records: Sequence[RequestRecord],
    coordinator_replies: Optional[tuple] = None,
) -> Dict[str, object]:
    """One ``run_table.csv`` row from a run's request records.

    ``coordinator_replies`` is the optional ``(served, rejected)`` pair
    from :func:`coordinator_deltas`; when given, the per-coordinator
    throughput/shed columns are filled from the server's own account of
    the run.
    """
    served = [record for record in records if record.status in SERVED]
    sheds = sum(1 for record in records if record.status == "shed")
    unavailable = sum(1 for record in records if record.status == "unavailable")
    errors = sum(1 for record in records if record.status == "error")
    if records:
        duration = max(record.done_s for record in records) - min(
            record.sent_s for record in records
        )
    else:
        duration = 0.0
    duration = max(duration, 1e-9)
    percentiles = latency_percentiles_ms([record.latency_s for record in served])
    row: Dict[str, object] = {
        "run_id": spec.run_id,
        "scale": spec.scale,
        **spec.factor_levels(),
        "repetition": spec.repetition,
        "seed": spec.seed,
        "total_mb": spec.total_mb,
        "nodes_per_mb": spec.nodes_per_mb,
        "requests": len(records),
        "ok": sum(1 for record in records if record.status == "ok"),
        "retried": sum(1 for record in records if record.status == "retried"),
        "shed": sheds,
        "unavailable": unavailable,
        "errors": errors,
        "duration_s": round(duration, 6),
        "throughput_rps": round(len(served) / duration, 3) if served else 0.0,
        "p50_ms": percentiles[0.5],
        "p95_ms": percentiles[0.95],
        "p99_ms": percentiles[0.99],
        "shed_rate": round(sheds / len(records), 4) if records else 0.0,
        "bytes_on_wire": sum(record.ledger_bytes for record in served),
        "max_lag_s": round(max((record.lag_s for record in records), default=0.0), 6),
        "coordinator_requests": "",
        "coordinator_rps": "",
        "coordinator_shed": "",
    }
    if coordinator_replies is not None:
        served_by, rejected_by = coordinator_replies
        totals = dict(rejected_by)
        for name, count in served_by.items():
            totals[name] = totals.get(name, 0.0) + count
        row["coordinator_requests"] = _join_counts(totals)
        row["coordinator_rps"] = _join_counts(
            {name: count / duration for name, count in served_by.items()},
            fmt="{:.3f}",
        )
        row["coordinator_shed"] = _join_counts(rejected_by)
    return row


def _scrape(tier: ServingCluster) -> Dict[str, object]:
    with tier.client(timeout=10.0) as client:
        return client.metrics().snapshot


def _write_json(path: Path, obj: object) -> None:
    path.write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")


def execute_run(
    spec: RunSpec,
    out_dir: Path,
    *,
    max_inflight: int = 8,
    max_queue: int = 16,
    trace_every: int = 5,
    site_delay: float = 0.0,
) -> Dict[str, object]:
    """Boot the spec's serving tier, run the load, write the artifacts.

    ``site_delay`` is the harness hook for overload studies: every
    inline site server sleeps that long per request, so arrival rates
    beyond the admission limit deterministically shed.
    """
    run_dir = Path(out_dir) / spec.run_id
    run_dir.mkdir(parents=True, exist_ok=True)
    schedule, batches = plan_for_spec(spec)
    cluster = build_cluster(spec)
    site_mode = "process" if spec.executor == "process" else "inline"
    tier = ServingCluster(
        cluster,
        site_mode=site_mode,
        default_engine=spec.engine,
        max_inflight=max_inflight,
        max_queue=max_queue,
        coordinators=spec.coordinators,
    )
    with tier:
        if site_delay:
            tier.set_site_delay(site_delay)
        metrics_before = _scrape(tier)
        _write_json(run_dir / "metrics_before.json", metrics_before)
        with OpenLoopClient(
            tier.gateway.host,
            tier.gateway.port,
            engine=spec.engine,
            trace_every=trace_every,
        ) as load:
            records = load.run(schedule, batches)
            spans = list(load.spans)
        metrics_after = _scrape(tier)
        _write_json(run_dir / "metrics_after.json", metrics_after)
    with (run_dir / "requests.jsonl").open("w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_obj(), sort_keys=True) + "\n")
    store = SpanStore()
    store.ingest_wire(spans)
    (run_dir / "spans.json").write_text(store.export_json(indent=2))
    return summarize_run(
        spec, records, coordinator_replies=coordinator_deltas(metrics_before, metrics_after)
    )


def write_run_table(rows: Sequence[Dict[str, object]], path: Path) -> Path:
    """The aggregate CSV, with the stable column order."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=RUN_TABLE_COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in RUN_TABLE_COLUMNS})
    return path


def execute_table(
    table: RunTable,
    out_dir: Path,
    *,
    progress: Optional[Callable[[str], None]] = None,
    trace_every: int = 5,
) -> List[Dict[str, object]]:
    """Run every spec in the table; write per-run artifacts + the CSV."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    rows: List[Dict[str, object]] = []
    for index, spec in enumerate(table.specs()):
        started = time.perf_counter()
        row = execute_run(
            spec,
            out_dir,
            max_inflight=table.max_inflight,
            max_queue=table.max_queue,
            trace_every=trace_every,
        )
        rows.append(row)
        if progress is not None:
            progress(
                f"[{index + 1}/{len(table)}] {spec.run_id}: "
                f"{row['throughput_rps']} req/s, p95={row['p95_ms']}ms, "
                f"shed={row['shed']}/{row['requests']} "
                f"({time.perf_counter() - started:.1f}s)"
            )
    write_run_table(rows, out_dir / "run_table.csv")
    return rows


__all__ = [
    "LATENCY_BUCKETS",
    "RUN_TABLE_COLUMNS",
    "coordinator_deltas",
    "execute_run",
    "execute_table",
    "latency_percentiles_ms",
    "summarize_run",
    "write_run_table",
]
